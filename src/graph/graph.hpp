// Weighted undirected graph modeling the sensor network (Section 2.1 of
// the paper): nodes are sensors, edges connect sensors whose detection
// ranges are adjacent, edge weights are inter-sensor distances normalized
// so the shortest edge has weight 1.
//
// Storage is CSR (compressed sparse row): cache-friendly for the
// Dijkstra/BFS sweeps that dominate experiment time on a single core.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace mot {

using NodeId = std::uint32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Weight kInfiniteDistance =
    std::numeric_limits<Weight>::infinity();

struct Edge {
  NodeId to = kInvalidNode;
  Weight weight = 0.0;
};

// Optional 2D embedding (set by generators that have one, e.g. grids and
// random geometric graphs). Zone-based baselines (Z-DAT) require it.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return edges_.size() / 2; }  // undirected

  std::span<const Edge> neighbors(NodeId node) const;
  std::size_t degree(NodeId node) const;

  bool has_positions() const { return !positions_.empty(); }
  const Position& position(NodeId node) const;
  std::span<const Position> positions() const { return positions_; }

  // Weight of the direct edge (u, v); kInfiniteDistance if absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  // True if every pair of nodes is joined by some path.
  bool is_connected() const;

  // Minimum and maximum edge weights (0 for an edgeless graph).
  Weight min_edge_weight() const;
  Weight max_edge_weight() const;

  // Human-readable one-line summary for logs.
  std::string summary() const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size num_nodes + 1
  std::vector<Edge> edges_;           // both directions of every edge
  std::vector<Position> positions_;   // empty or size num_nodes
};

// Accumulates edges, then produces a CSR graph. Duplicate edges are
// rejected; weights must be positive. normalize() rescales all weights so
// the minimum edge weight is exactly 1 (the paper's normalization, which
// makes all bounds scale-free).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  // Adds the undirected edge (u, v). Returns false and ignores the call if
  // the edge already exists or is a self-loop.
  bool add_edge(NodeId u, NodeId v, Weight weight = 1.0);

  bool has_edge(NodeId u, NodeId v) const;

  void set_position(NodeId node, Position pos);

  std::size_t num_nodes() const { return adjacency_.size(); }

  // Rescales weights so min weight == 1. No-op on an edgeless graph.
  void normalize();

  Graph build() &&;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<Position> positions_;
  bool has_positions_ = false;
};

}  // namespace mot
