#include "graph/distance_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"

namespace mot {

namespace {

// One-entry per-thread memo of the last row fetched. Oracles get
// process-unique ids, so a stale entry can never alias a new oracle
// that reuses a freed address.
struct RowMemo {
  std::uint64_t oracle_id = 0;
  NodeId source = kInvalidNode;
  const std::vector<Weight>* row = nullptr;
};
thread_local RowMemo t_row_memo;

std::atomic<std::uint64_t> g_next_oracle_id{1};

}  // namespace

CachedDistanceOracle::CachedDistanceOracle(const Graph& graph)
    : graph_(&graph),
      unit_weights_(has_unit_weights(graph)),
      oracle_id_(g_next_oracle_id.fetch_add(1, std::memory_order_relaxed)),
      rows_(graph.num_nodes(), nullptr) {}

const std::vector<Weight>* CachedDistanceOracle::try_row(
    NodeId source) const {
  const Shard& shard = shards_[shard_of(source)];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return rows_[source];
}

const std::vector<Weight>* CachedDistanceOracle::row(NodeId source) const {
  Shard& shard = shards_[shard_of(source)];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (rows_[source] != nullptr) return rows_[source];  // lost the race
  ShortestPathTree tree = unit_weights_ ? bfs_unit(*graph_, source)
                                        : dijkstra(*graph_, source);
  shard.owned.push_back(std::make_unique<const std::vector<Weight>>(
      std::move(tree.distance)));
  rows_[source] = shard.owned.back().get();
  cached_count_.fetch_add(1, std::memory_order_relaxed);
  return rows_[source];
}

Weight CachedDistanceOracle::distance(NodeId u, NodeId v) const {
  MOT_EXPECTS(u < graph_->num_nodes() && v < graph_->num_nodes());
  if (u == v) return 0.0;
  RowMemo& memo = t_row_memo;
  if (memo.oracle_id == oracle_id_) {
    if (memo.source == u) return (*memo.row)[v];
    if (memo.source == v) return (*memo.row)[u];
  }
  const std::vector<Weight>* row_ptr = try_row(u);
  if (row_ptr == nullptr) {
    // Prefer an already-cached endpoint as the source (distances are
    // symmetric), falling back to materializing u's row.
    const std::vector<Weight>* other = try_row(v);
    if (other != nullptr) {
      memo = {oracle_id_, v, other};
      return (*other)[u];
    }
    row_ptr = row(u);
  }
  memo = {oracle_id_, u, row_ptr};
  return (*row_ptr)[v];
}

GridDistanceOracle::GridDistanceOracle(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  MOT_EXPECTS(rows >= 1 && cols >= 1);
}

Weight GridDistanceOracle::distance(NodeId u, NodeId v) const {
  MOT_EXPECTS(u < num_nodes() && v < num_nodes());
  const auto ur = u / cols_;
  const auto uc = u % cols_;
  const auto vr = v / cols_;
  const auto vc = v % cols_;
  const auto dr = ur > vr ? ur - vr : vr - ur;
  const auto dc = uc > vc ? uc - vc : vc - uc;
  return static_cast<Weight>(dr + dc);
}

std::optional<GridShape> detect_grid(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  if (n == 0 || !has_unit_weights(graph)) return std::nullopt;
  // Infer cols from node 0's smallest "vertical" neighbor: in the
  // canonical numbering node 0 connects to node 1 (if cols > 1) and node
  // `cols` (if rows > 1).
  for (std::size_t cols = 1; cols <= n; ++cols) {
    if (n % cols != 0) continue;
    const std::size_t rows = n / cols;
    // Verify the full edge set matches a rows x cols 4-grid.
    std::size_t expected_edges =
        rows * (cols - 1) + cols * (rows - 1);
    if (graph.num_edges() != expected_edges) continue;
    bool ok = true;
    for (NodeId u = 0; u < n && ok; ++u) {
      const std::size_t r = u / cols;
      const std::size_t c = u % cols;
      std::size_t expected_degree = 0;
      auto expect = [&](std::size_t rr, std::size_t cc) {
        ++expected_degree;
        const auto v = static_cast<NodeId>(rr * cols + cc);
        if (graph.edge_weight(u, v) != 1.0) ok = false;
      };
      if (c + 1 < cols) expect(r, c + 1);
      if (c > 0) expect(r, c - 1);
      if (r + 1 < rows) expect(r + 1, c);
      if (r > 0) expect(r - 1, c);
      if (graph.degree(u) != expected_degree) ok = false;
    }
    if (ok) return GridShape{rows, cols};
  }
  return std::nullopt;
}

std::unique_ptr<DistanceOracle> make_distance_oracle(const Graph& graph) {
  if (const auto shape = detect_grid(graph)) {
    return std::make_unique<GridDistanceOracle>(shape->rows, shape->cols);
  }
  return std::make_unique<CachedDistanceOracle>(graph);
}

namespace {

// Greedy cover of B(center, radius) by radius/2 balls; the greedy cover
// size upper-bounds the optimal one, so it never over-reports dimension
// by more than the greedy factor.
std::size_t half_ball_cover_size(const Graph& graph, NodeId center,
                                 Weight radius) {
  const ShortestPathTree ball = dijkstra_bounded(graph, center, radius);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (ball.distance[v] != kInfiniteDistance) members.push_back(v);
  }
  std::vector<bool> covered(graph.num_nodes(), false);
  std::size_t cover_size = 0;
  for (const NodeId v : members) {
    if (covered[v]) continue;
    ++cover_size;
    const ShortestPathTree half = dijkstra_bounded(graph, v, radius / 2.0);
    for (const NodeId w : members) {
      if (half.distance[w] != kInfiniteDistance) covered[w] = true;
    }
  }
  return cover_size;
}

}  // namespace

double estimate_doubling_dimension(const Graph& graph, Rng& rng,
                                   std::size_t sample_count) {
  MOT_EXPECTS(graph.num_nodes() >= 2 && sample_count >= 1);
  const Weight diameter = approx_diameter(graph);

  // Centers: the highest-degree node (hubs betray high dimension) plus a
  // random sample. Radii: powers of two up to the diameter — the scale at
  // which a hub ball cannot be halved is easy to miss with random radii.
  std::vector<NodeId> centers;
  NodeId hub = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.degree(v) > graph.degree(hub)) hub = v;
  }
  centers.push_back(hub);
  for (std::size_t s = 0; s + 1 < sample_count; ++s) {
    centers.push_back(static_cast<NodeId>(rng.below(graph.num_nodes())));
  }

  std::size_t worst_cover = 1;
  for (const NodeId center : centers) {
    for (Weight radius = 1.0; radius <= std::max(1.0, diameter);
         radius *= 2.0) {
      worst_cover =
          std::max(worst_cover, half_ball_cover_size(graph, center, radius));
    }
  }
  return std::log2(static_cast<double>(worst_cover));
}

}  // namespace mot
