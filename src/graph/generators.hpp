// Network topology generators. Grids are the paper's evaluation substrate
// (Section 8, 10–1024 nodes); rings exercise the O(D) worst case of the
// spanning-tree baselines (Section 1.3); random geometric graphs are the
// standard constant-doubling sensor deployment model; the remaining
// families feed tests and the general-graph benches (Section 6).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mot {

// rows x cols 4-connected grid with unit edge weights and integer
// positions. Node id = row * cols + col.
Graph make_grid(std::size_t rows, std::size_t cols);

// 8-connected grid: diagonal edges weigh sqrt(2).
Graph make_grid8(std::size_t rows, std::size_t cols);

// Torus: grid with wrap-around edges (vertex-transitive; no boundary).
Graph make_torus(std::size_t rows, std::size_t cols);

// Cycle of n nodes, unit weights.
Graph make_ring(std::size_t n);

// Path of n nodes, unit weights.
Graph make_path(std::size_t n);

// Star: node 0 joined to all others.
Graph make_star(std::size_t n);

// Complete graph with unit weights.
Graph make_complete(std::size_t n);

// Balanced tree with the given branching factor.
Graph make_balanced_tree(std::size_t n, std::size_t branching);

// Uniform random spanning tree over n nodes (random attachment).
Graph make_random_tree(std::size_t n, Rng& rng);

// Random geometric graph: n points uniform in [0, side]^2, edge when
// distance <= radius, weight = Euclidean distance. Retries until connected
// (caller should choose radius comfortably above the connectivity
// threshold ~ sqrt(log n / n) * side). A positive min_separation rejects
// points closer than that to an existing one (Poisson-disk-style), which
// models real deployments and keeps the normalized diameter reasonable —
// without it, one near-coincident pair rescales every other weight up.
Graph make_random_geometric(std::size_t n, double side, double radius,
                            Rng& rng, int max_attempts = 64,
                            double min_separation = 0.0);

// Connected Erdos-Renyi-style graph: a random spanning tree plus extra
// random edges until ~average_degree. Weights uniform in [1, max_weight].
Graph make_connected_random(std::size_t n, double average_degree,
                            double max_weight, Rng& rng);

// "Lollipop": a clique of clique_size nodes with a path of tail_length
// hanging off it — a standard non-doubling stress topology for the
// general-graph hierarchy.
Graph make_lollipop(std::size_t clique_size, std::size_t tail_length);

}  // namespace mot
