// Distance oracles: the experiment harness issues millions of pairwise
// distance queries (every move's optimal cost is dist_G(old, new)). The
// oracle interface lets callers pick the cheapest exact backend:
//
//   * GridDistanceOracle — O(1) closed form (Manhattan) on 4-connected
//     unit grids, the paper's evaluation topology;
//   * CachedDistanceOracle — lazy per-source Dijkstra, memoized; exact on
//     any graph, memory O(sources_touched * n);
//   * make_distance_oracle — picks the grid fast path automatically.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mot {

class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  // Exact shortest-path distance between u and v.
  virtual Weight distance(NodeId u, NodeId v) const = 0;

  virtual std::size_t num_nodes() const = 0;
};

// Lazy exact oracle over any connected graph.
class CachedDistanceOracle final : public DistanceOracle {
 public:
  explicit CachedDistanceOracle(const Graph& graph);

  Weight distance(NodeId u, NodeId v) const override;
  std::size_t num_nodes() const override { return graph_->num_nodes(); }

  // Number of distinct sources whose SSSP tree has been materialized.
  std::size_t cached_sources() const { return cache_.size(); }

 private:
  const std::vector<Weight>& row(NodeId source) const;

  const Graph* graph_;
  bool unit_weights_;
  mutable std::unordered_map<NodeId, std::vector<Weight>> cache_;
};

// Closed-form oracle for rows x cols 4-connected unit grids.
class GridDistanceOracle final : public DistanceOracle {
 public:
  GridDistanceOracle(std::size_t rows, std::size_t cols);

  Weight distance(NodeId u, NodeId v) const override;
  std::size_t num_nodes() const override { return rows_ * cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

struct GridShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
};

// If `graph` is structurally a rows x cols 4-connected unit grid with the
// canonical node numbering, returns its shape.
std::optional<GridShape> detect_grid(const Graph& graph);

// Best exact oracle for `graph`: GridDistanceOracle when the graph is a
// canonical grid, CachedDistanceOracle otherwise. The oracle keeps a
// pointer to `graph`, which must outlive it.
std::unique_ptr<DistanceOracle> make_distance_oracle(const Graph& graph);

// Empirical doubling-dimension estimate: samples balls B(v, r) and counts
// how many radius r/2 balls are needed to cover each (greedy). Returns
// log2 of the worst cover size found. Used by tests to confirm grids and
// geometric graphs are constant-doubling while stars/lollipops are not.
double estimate_doubling_dimension(const Graph& graph, Rng& rng,
                                   std::size_t sample_count = 16);

}  // namespace mot
