// Distance oracles: the experiment harness issues millions of pairwise
// distance queries (every move's optimal cost is dist_G(old, new)). The
// oracle interface lets callers pick the cheapest exact backend:
//
//   * GridDistanceOracle — O(1) closed form (Manhattan) on 4-connected
//     unit grids, the paper's evaluation topology;
//   * CachedDistanceOracle — lazy per-source Dijkstra, memoized; exact on
//     any graph, memory O(sources_touched * n);
//   * make_distance_oracle — picks the grid fast path automatically.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mot {

class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  // Exact shortest-path distance between u and v.
  virtual Weight distance(NodeId u, NodeId v) const = 0;

  virtual std::size_t num_nodes() const = 0;
};

// Lazy exact oracle over any connected graph, safe for concurrent reads
// from the parallel sweep engine.
//
// Hot-path layout: rows_ is a flat vector indexed directly by the source
// NodeId (no hashing on lookup); each slot points at an immutable
// distance row once materialized. Slots are grouped into lock-striped
// shards, each guarded by a shared_mutex: lookups take a shared lock on
// the source's shard, the first thread to need a row takes the exclusive
// lock, runs the SSSP (BFS on unit-weight graphs) and publishes the row.
// Published rows are never evicted or mutated, so a pointer obtained
// under the shared lock stays valid for the oracle's lifetime.
//
// On top of the stripes each thread keeps a one-entry memo of the last
// (oracle, source) row it touched — the common access pattern is a burst
// of distances from one source, which then costs no lock at all.
class CachedDistanceOracle final : public DistanceOracle {
 public:
  explicit CachedDistanceOracle(const Graph& graph);

  Weight distance(NodeId u, NodeId v) const override;
  std::size_t num_nodes() const override { return graph_->num_nodes(); }

  // Number of distinct sources whose SSSP tree has been materialized.
  std::size_t cached_sources() const {
    return cached_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::shared_mutex mutex;
    // Row storage, appended under the exclusive lock. Indirection keeps
    // row addresses stable across appends.
    std::vector<std::unique_ptr<const std::vector<Weight>>> owned;
  };

  std::size_t shard_of(NodeId source) const { return source % kShards; }
  // Row pointer if already materialized (shared lock), else nullptr.
  const std::vector<Weight>* try_row(NodeId source) const;
  // Materializes (or finds) the row for `source` (exclusive lock).
  const std::vector<Weight>* row(NodeId source) const;

  const Graph* graph_;
  bool unit_weights_;
  std::uint64_t oracle_id_;  // process-unique, keys the per-thread memo
  // Indexed by source NodeId; written under the owning shard's exclusive
  // lock, read under its shared lock.
  mutable std::vector<const std::vector<Weight>*> rows_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::size_t> cached_count_{0};
};

// Closed-form oracle for rows x cols 4-connected unit grids.
class GridDistanceOracle final : public DistanceOracle {
 public:
  GridDistanceOracle(std::size_t rows, std::size_t cols);

  Weight distance(NodeId u, NodeId v) const override;
  std::size_t num_nodes() const override { return rows_ * cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

struct GridShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
};

// If `graph` is structurally a rows x cols 4-connected unit grid with the
// canonical node numbering, returns its shape.
std::optional<GridShape> detect_grid(const Graph& graph);

// Best exact oracle for `graph`: GridDistanceOracle when the graph is a
// canonical grid, CachedDistanceOracle otherwise. The oracle keeps a
// pointer to `graph`, which must outlive it.
std::unique_ptr<DistanceOracle> make_distance_oracle(const Graph& graph);

// Empirical doubling-dimension estimate: samples balls B(v, r) and counts
// how many radius r/2 balls are needed to cover each (greedy). Returns
// log2 of the worst cover size found. Used by tests to confirm grids and
// geometric graphs are constant-doubling while stars/lollipops are not.
double estimate_doubling_dimension(const Graph& graph, Rng& rng,
                                   std::size_t sample_count = 16);

}  // namespace mot
