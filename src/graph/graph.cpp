#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace mot {

std::span<const Edge> Graph::neighbors(NodeId node) const {
  MOT_EXPECTS(node < num_nodes());
  return {edges_.data() + offsets_[node],
          offsets_[node + 1] - offsets_[node]};
}

std::size_t Graph::degree(NodeId node) const {
  MOT_EXPECTS(node < num_nodes());
  return offsets_[node + 1] - offsets_[node];
}

const Position& Graph::position(NodeId node) const {
  MOT_EXPECTS(has_positions() && node < positions_.size());
  return positions_[node];
}

Weight Graph::edge_weight(NodeId u, NodeId v) const {
  for (const Edge& e : neighbors(u)) {
    if (e.to == v) return e.weight;
  }
  return kInfiniteDistance;
}

bool Graph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Edge& e : neighbors(u)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == n;
}

Weight Graph::min_edge_weight() const {
  Weight best = kInfiniteDistance;
  for (const Edge& e : edges_) best = std::min(best, e.weight);
  return edges_.empty() ? 0.0 : best;
}

Weight Graph::max_edge_weight() const {
  Weight best = 0.0;
  for (const Edge& e : edges_) best = std::max(best, e.weight);
  return best;
}

std::string Graph::summary() const {
  std::ostringstream out;
  out << "Graph(n=" << num_nodes() << ", m=" << num_edges()
      << ", weights=[" << min_edge_weight() << ", " << max_edge_weight()
      << "]" << (has_positions() ? ", embedded" : "") << ")";
  return out.str();
}

GraphBuilder::GraphBuilder(std::size_t num_nodes)
    : adjacency_(num_nodes), positions_(num_nodes) {}

bool GraphBuilder::add_edge(NodeId u, NodeId v, Weight weight) {
  MOT_EXPECTS(u < adjacency_.size() && v < adjacency_.size());
  MOT_EXPECTS(weight > 0.0);
  if (u == v || has_edge(u, v)) return false;
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  return true;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  MOT_EXPECTS(u < adjacency_.size() && v < adjacency_.size());
  // Scan the smaller adjacency list.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::any_of(list.begin(), list.end(),
                     [target](const Edge& e) { return e.to == target; });
}

void GraphBuilder::set_position(NodeId node, Position pos) {
  MOT_EXPECTS(node < positions_.size());
  positions_[node] = pos;
  has_positions_ = true;
}

void GraphBuilder::normalize() {
  Weight min_weight = kInfiniteDistance;
  for (const auto& list : adjacency_) {
    for (const Edge& e : list) min_weight = std::min(min_weight, e.weight);
  }
  if (min_weight == kInfiniteDistance || min_weight == 1.0) return;
  MOT_CHECK(min_weight > 0.0);
  for (auto& list : adjacency_) {
    for (Edge& e : list) e.weight /= min_weight;
  }
}

Graph GraphBuilder::build() && {
  Graph graph;
  graph.offsets_.resize(adjacency_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    graph.offsets_[i] = total;
    total += adjacency_[i].size();
  }
  graph.offsets_[adjacency_.size()] = total;
  graph.edges_.reserve(total);
  for (auto& list : adjacency_) {
    // Sorted adjacency gives deterministic iteration order everywhere.
    std::sort(list.begin(), list.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
    graph.edges_.insert(graph.edges_.end(), list.begin(), list.end());
  }
  if (has_positions_) graph.positions_ = std::move(positions_);
  return graph;
}

}  // namespace mot
