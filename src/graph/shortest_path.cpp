#include "graph/shortest_path.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "par/thread_pool.hpp"
#include "util/check.hpp"

namespace mot {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  MOT_EXPECTS(target < distance.size());
  if (distance[target] == kInfiniteDistance) return {};
  std::vector<NodeId> path;
  for (NodeId at = target; at != kInvalidNode; at = parent[at]) {
    path.push_back(at);
    if (at == source) break;
  }
  std::reverse(path.begin(), path.end());
  MOT_ENSURES(!path.empty() && path.front() == source);
  return path;
}

namespace {

struct QueueEntry {
  Weight distance;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    return distance > other.distance;
  }
};

ShortestPathTree run_dijkstra(const Graph& graph, NodeId source,
                              Weight radius) {
  MOT_EXPECTS(source < graph.num_nodes());
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(graph.num_nodes(), kInfiniteDistance);
  tree.parent.assign(graph.num_nodes(), kInvalidNode);
  tree.distance[source] = 0.0;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [dist, node] = queue.top();
    queue.pop();
    if (dist > tree.distance[node]) continue;  // stale entry
    for (const Edge& e : graph.neighbors(node)) {
      const Weight candidate = dist + e.weight;
      if (candidate > radius) continue;
      if (candidate < tree.distance[e.to]) {
        tree.distance[e.to] = candidate;
        tree.parent[e.to] = node;
        queue.push({candidate, e.to});
      }
    }
  }
  return tree;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& graph, NodeId source) {
  return run_dijkstra(graph, source, kInfiniteDistance);
}

ShortestPathTree dijkstra_bounded(const Graph& graph, NodeId source,
                                  Weight radius) {
  MOT_EXPECTS(radius >= 0.0);
  return run_dijkstra(graph, source, radius);
}

ShortestPathTree bfs_unit(const Graph& graph, NodeId source) {
  MOT_EXPECTS(source < graph.num_nodes());
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(graph.num_nodes(), kInfiniteDistance);
  tree.parent.assign(graph.num_nodes(), kInvalidNode);
  tree.distance[source] = 0.0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const Edge& e : graph.neighbors(node)) {
      MOT_EXPECTS(e.weight == 1.0);
      if (tree.distance[e.to] == kInfiniteDistance) {
        tree.distance[e.to] = tree.distance[node] + 1.0;
        tree.parent[e.to] = node;
        queue.push_back(e.to);
      }
    }
  }
  return tree;
}

bool has_unit_weights(const Graph& graph) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const Edge& e : graph.neighbors(u)) {
      if (e.weight != 1.0) return false;
    }
  }
  return true;
}

namespace {

Weight eccentricity_of_tree(const ShortestPathTree& tree) {
  Weight ecc = 0.0;
  for (const Weight d : tree.distance) {
    MOT_CHECK(d != kInfiniteDistance);  // callers require connectivity
    ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace

Weight eccentricity(const Graph& graph, NodeId source) {
  return eccentricity_of_tree(dijkstra(graph, source));
}

Weight exact_diameter(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  if (n == 0) return 0.0;
  // One SSSP per node: independent, so fan the sources across the pool.
  // Unit-weight graphs (grids, rings — the common experiment topologies)
  // take the BFS fast path instead of paying Dijkstra's heap.
  const bool unit = has_unit_weights(graph);
  std::vector<Weight> ecc(n, 0.0);
  par::parallel_for_each(n, [&](std::size_t u) {
    const auto source = static_cast<NodeId>(u);
    ecc[u] = eccentricity_of_tree(unit ? bfs_unit(graph, source)
                                       : dijkstra(graph, source));
  });
  return *std::max_element(ecc.begin(), ecc.end());
}

Weight approx_diameter(const Graph& graph) {
  if (graph.num_nodes() <= 1) return 0.0;
  const ShortestPathTree first = dijkstra(graph, 0);
  NodeId farthest = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    MOT_CHECK(first.distance[u] != kInfiniteDistance);
    if (first.distance[u] > first.distance[farthest]) farthest = u;
  }
  return eccentricity(graph, farthest);
}

}  // namespace mot
