#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

namespace {

NodeId grid_id(std::size_t row, std::size_t col, std::size_t cols) {
  return static_cast<NodeId>(row * cols + col);
}

void add_grid_positions(GraphBuilder& builder, std::size_t rows,
                        std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      builder.set_position(grid_id(r, c, cols),
                           {static_cast<double>(c), static_cast<double>(r)});
    }
  }
}

}  // namespace

Graph make_grid(std::size_t rows, std::size_t cols) {
  MOT_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder builder(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      }
      if (r + 1 < rows) {
        builder.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
      }
    }
  }
  add_grid_positions(builder, rows, cols);
  return std::move(builder).build();
}

Graph make_grid8(std::size_t rows, std::size_t cols) {
  MOT_EXPECTS(rows >= 1 && cols >= 1);
  const double diagonal = std::sqrt(2.0);
  GraphBuilder builder(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      }
      if (r + 1 < rows) {
        builder.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
        if (c + 1 < cols) {
          builder.add_edge(grid_id(r, c, cols), grid_id(r + 1, c + 1, cols),
                           diagonal);
        }
        if (c > 0) {
          builder.add_edge(grid_id(r, c, cols), grid_id(r + 1, c - 1, cols),
                           diagonal);
        }
      }
    }
  }
  add_grid_positions(builder, rows, cols);
  return std::move(builder).build();
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  MOT_EXPECTS(rows >= 3 && cols >= 3);
  GraphBuilder builder(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      builder.add_edge(grid_id(r, c, cols),
                       grid_id(r, (c + 1) % cols, cols));
      builder.add_edge(grid_id(r, c, cols),
                       grid_id((r + 1) % rows, c, cols));
    }
  }
  add_grid_positions(builder, rows, cols);
  return std::move(builder).build();
}

Graph make_ring(std::size_t n) {
  MOT_EXPECTS(n >= 3);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_edge(static_cast<NodeId>(i),
                     static_cast<NodeId>((i + 1) % n));
  }
  // Embed on a circle so zone-based baselines can run on rings too.
  const double radius = static_cast<double>(n) / (2.0 * M_PI);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n);
    builder.set_position(static_cast<NodeId>(i),
                         {radius * std::cos(angle), radius * std::sin(angle)});
  }
  return std::move(builder).build();
}

Graph make_path(std::size_t n) {
  MOT_EXPECTS(n >= 1);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  for (std::size_t i = 0; i < n; ++i) {
    builder.set_position(static_cast<NodeId>(i),
                         {static_cast<double>(i), 0.0});
  }
  return std::move(builder).build();
}

Graph make_star(std::size_t n) {
  MOT_EXPECTS(n >= 2);
  GraphBuilder builder(n);
  for (std::size_t i = 1; i < n; ++i) {
    builder.add_edge(0, static_cast<NodeId>(i));
  }
  return std::move(builder).build();
}

Graph make_complete(std::size_t n) {
  MOT_EXPECTS(n >= 2);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return std::move(builder).build();
}

Graph make_balanced_tree(std::size_t n, std::size_t branching) {
  MOT_EXPECTS(n >= 1 && branching >= 1);
  GraphBuilder builder(n);
  for (std::size_t child = 1; child < n; ++child) {
    const std::size_t parent = (child - 1) / branching;
    builder.add_edge(static_cast<NodeId>(parent), static_cast<NodeId>(child));
  }
  return std::move(builder).build();
}

Graph make_random_tree(std::size_t n, Rng& rng) {
  MOT_EXPECTS(n >= 1);
  GraphBuilder builder(n);
  for (std::size_t child = 1; child < n; ++child) {
    const auto parent = static_cast<NodeId>(rng.below(child));
    builder.add_edge(parent, static_cast<NodeId>(child));
  }
  return std::move(builder).build();
}

Graph make_random_geometric(std::size_t n, double side, double radius,
                            Rng& rng, int max_attempts,
                            double min_separation) {
  MOT_EXPECTS(n >= 2 && side > 0.0 && radius > 0.0 && max_attempts >= 1);
  MOT_EXPECTS(min_separation >= 0.0 && min_separation < radius);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder builder(n);
    std::vector<Position> points(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Rejection-sample until the point clears min_separation (bounded
      // tries so dense parameterizations degrade instead of hanging).
      for (int tries = 0; tries < 256; ++tries) {
        points[i] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
        if (min_separation == 0.0) break;
        bool clear = true;
        for (std::size_t j = 0; j < i && clear; ++j) {
          const double dx = points[i].x - points[j].x;
          const double dy = points[i].y - points[j].y;
          if (dx * dx + dy * dy < min_separation * min_separation) {
            clear = false;
          }
        }
        if (clear) break;
      }
      builder.set_position(static_cast<NodeId>(i), points[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = points[i].x - points[j].x;
        const double dy = points[i].y - points[j].y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist <= radius && dist > 0.0) {
          builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                           dist);
        }
      }
    }
    builder.normalize();
    Graph graph = std::move(builder).build();
    if (graph.is_connected()) return graph;
  }
  MOT_LOG_WARN(
      "random geometric graph (n=%zu, r=%.3f) not connected after %d "
      "attempts; increase radius",
      n, radius, max_attempts);
  MOT_CHECK(false && "make_random_geometric: could not produce a connected graph");
  return Graph{};
}

Graph make_connected_random(std::size_t n, double average_degree,
                            double max_weight, Rng& rng) {
  MOT_EXPECTS(n >= 2 && average_degree >= 2.0 && max_weight >= 1.0);
  GraphBuilder builder(n);
  // Spine: random spanning tree guarantees connectivity.
  for (std::size_t child = 1; child < n; ++child) {
    const auto parent = static_cast<NodeId>(rng.below(child));
    builder.add_edge(parent, static_cast<NodeId>(child),
                     rng.uniform(1.0, max_weight));
  }
  const auto target_edges =
      static_cast<std::size_t>(average_degree * static_cast<double>(n) / 2.0);
  std::size_t edges = n - 1;
  std::size_t stale = 0;
  while (edges < target_edges && stale < 16 * n) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (builder.add_edge(u, v, rng.uniform(1.0, max_weight))) {
      ++edges;
      stale = 0;
    } else {
      ++stale;
    }
  }
  builder.normalize();
  return std::move(builder).build();
}

Graph make_lollipop(std::size_t clique_size, std::size_t tail_length) {
  MOT_EXPECTS(clique_size >= 2);
  const std::size_t n = clique_size + tail_length;
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < clique_size; ++i) {
    for (std::size_t j = i + 1; j < clique_size; ++j) {
      builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  for (std::size_t i = 0; i < tail_length; ++i) {
    const std::size_t from = (i == 0) ? clique_size - 1 : clique_size + i - 1;
    builder.add_edge(static_cast<NodeId>(from),
                     static_cast<NodeId>(clique_size + i));
  }
  return std::move(builder).build();
}

}  // namespace mot
