// Single-source shortest paths (Dijkstra, with a BFS fast path for
// unit-weight graphs) and path extraction. All tracking-cost accounting
// reduces to distances computed here.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mot {

struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Weight> distance;   // kInfiniteDistance if unreachable
  std::vector<NodeId> parent;     // kInvalidNode for source/unreachable

  // Nodes on the shortest path source -> target, inclusive of both ends.
  // Empty if target is unreachable.
  std::vector<NodeId> path_to(NodeId target) const;
};

// Full Dijkstra from `source`.
ShortestPathTree dijkstra(const Graph& graph, NodeId source);

// Dijkstra truncated at `radius`: nodes farther than radius keep
// kInfiniteDistance. Used for cluster construction, where only a bounded
// neighborhood matters. Cost is proportional to the ball size, not n.
ShortestPathTree dijkstra_bounded(const Graph& graph, NodeId source,
                                  Weight radius);

// BFS distances for graphs whose edges all weigh exactly 1 (grids, rings).
// Falls back on a contract failure if the graph is weighted.
ShortestPathTree bfs_unit(const Graph& graph, NodeId source);

// True when every edge weight equals 1 (enables the BFS fast path).
bool has_unit_weights(const Graph& graph);

// Exact eccentricity of `source` (max distance to any node).
Weight eccentricity(const Graph& graph, NodeId source);

// Exact diameter by running SSSP from every node. O(n * SSSP); fine for
// the experiment sizes (<= a few thousand nodes).
Weight exact_diameter(const Graph& graph);

// Two-sweep lower bound on the diameter (exact on trees, excellent on
// grids): eccentricity of the farthest node from an arbitrary start.
Weight approx_diameter(const Graph& graph);

}  // namespace mot
