#include "netio/transport.hpp"

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "wire/frames.hpp"

namespace mot::netio {

SocketTransport::SocketTransport() {
  Listener listener;
  if (!listener.open()) return;
  Socket client = connect_loopback(listener.port());
  if (!client.valid()) return;
  Socket server = listener.accept();
  if (!server.valid()) return;
  out_ = FrameStream(std::move(client));
  in_ = FrameStream(std::move(server));
}

void SocketTransport::transmit(Simulator& sim, NodeId from, NodeId to,
                               Weight distance,
                               std::function<void()> deliver) {
  MOT_CHECK(ok());
  const std::uint64_t seq = next_seq_++;
  pending_.emplace(seq, std::move(deliver));
  const std::vector<std::uint8_t> frame =
      wire::encode_loopback({.seq = seq});
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kWireEncode,
               .t = sim.now(),
               .from = from,
               .to = to,
               .dist = distance,
               .aux = frame.size(),
               .label = "loopback"});
  }
  MOT_CHECK(out_.send(frame));
  sim.schedule(distance, [this, seq] { fire(seq); });
}

void SocketTransport::fire(std::uint64_t seq) {
  // The frame was written before this anchor was scheduled, so blocking
  // until it surfaces always terminates. Frames for other (longer) hops
  // may surface first; park them for their own anchors.
  while (received_.count(seq) == 0) {
    std::vector<std::uint8_t> payload;
    const wire::DecodeError err = in_.recv(&payload, /*block=*/true);
    MOT_CHECK(err == wire::DecodeError::kNone);
    wire::LoopbackFrame frame;
    MOT_CHECK(wire::decode_loopback(payload, &frame) ==
              wire::DecodeError::kNone);
    ++stats_.frames_received;
    stats_.bytes_received += payload.size() + 4;  // + length prefix
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kWireDecode,
                 .aux = payload.size() + 4,
                 .label = "loopback"});
    }
    received_.insert(frame.seq);
  }
  received_.erase(seq);
  const auto it = pending_.find(seq);
  MOT_CHECK(it != pending_.end());
  std::function<void()> deliver = std::move(it->second);
  pending_.erase(it);
  deliver();
}

}  // namespace mot::netio
