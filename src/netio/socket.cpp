#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace mot::netio {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Listener::open(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return false;
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) return false;
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(sock);
  return true;
}

Socket Listener::accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno != EINTR) return Socket();
  }
}

Socket connect_loopback(std::uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) return Socket();
    sockaddr_in addr = loopback_addr(port);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_nodelay(sock.fd());
      return sock;
    }
    if (std::chrono::steady_clock::now() >= deadline) return Socket();
    // The peer's listener may not be up yet during bootstrap.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::vector<std::size_t> poll_readable(std::span<const int> fds,
                                       int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back({fd, POLLIN, 0});
  while (true) {
    const int rc = ::poll(pfds.data(),
                          static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    std::vector<std::size_t> ready;
    if (rc <= 0) return ready;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) ready.push_back(i);
    }
    return ready;
  }
}

bool FrameStream::send(std::span<const std::uint8_t> frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(socket_.fd(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      closed_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  bytes_sent_ += frame.size();
  return true;
}

void FrameStream::queue(std::span<const std::uint8_t> frame) {
  out_buffer_.insert(out_buffer_.end(), frame.begin(), frame.end());
}

bool FrameStream::flush() {
  if (out_buffer_.empty()) return true;
  const bool ok = send(out_buffer_);
  out_buffer_.clear();
  return ok;
}

bool FrameStream::frame_buffered() const {
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  const std::span<const std::uint8_t> view{buffer_.data() + buffer_pos_,
                                           buffer_.size() - buffer_pos_};
  return wire::split_frame(view, &payload, &consumed) ==
         wire::DecodeError::kNone;
}

bool FrameStream::fill(bool block) {
  std::uint8_t chunk[16384];
  while (true) {
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk),
                             block ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      bytes_received_ += static_cast<std::uint64_t>(n);
      return true;
    }
    if (n == 0) {
      closed_ = true;
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // no data
    closed_ = true;
    return false;
  }
}

wire::DecodeError FrameStream::recv(std::vector<std::uint8_t>* payload,
                                    bool block) {
  while (true) {
    std::span<const std::uint8_t> view{buffer_.data() + buffer_pos_,
                                       buffer_.size() - buffer_pos_};
    std::span<const std::uint8_t> frame;
    std::size_t consumed = 0;
    const wire::DecodeError err =
        wire::split_frame(view, &frame, &consumed);
    if (err == wire::DecodeError::kNone) {
      payload->assign(frame.begin(), frame.end());
      buffer_pos_ += consumed;
      // Compact once the consumed prefix dominates the buffer.
      if (buffer_pos_ > 65536 && buffer_pos_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(
                                            buffer_pos_));
        buffer_pos_ = 0;
      }
      return wire::DecodeError::kNone;
    }
    if (err != wire::DecodeError::kShortRead) return err;  // corrupt
    if (closed_) return wire::DecodeError::kShortRead;
    const std::size_t before = buffer_.size();
    if (!fill(block)) return wire::DecodeError::kShortRead;
    if (!block && buffer_.size() == before) {
      return wire::DecodeError::kShortRead;  // nothing new without blocking
    }
  }
}

}  // namespace mot::netio
