// Multi-process cluster runtime: one DistributedMot shard per OS
// process, cross-shard walker messages over a loopback-TCP full mesh,
// and a star-topology control plane to a coordinator that injects
// operations one at a time and detects global quiescence.
//
// Bootstrap (per worker): connect to the coordinator, send Hello (shard
// id, mesh listener port, supported wire versions, world fingerprint);
// the coordinator verifies every shard built the same world, negotiates
// the highest wire version all peers speak, and answers HelloAck with
// the full port map. Workers then wire the mesh (shard i dials every
// j < i, accepts every j > i) and enter the pump loop.
//
// Execution: the coordinator broadcasts the object's position before
// each operation (so sentinel checks hold on every shard), injects the
// operation at its owner shard, waits for the Complete frame, then runs
// Mattern-style four-counter probe waves until two consecutive waves
// return identical counters with sum(forwarded) == sum(injected) —
// trailing SDL traffic is then provably drained.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netio/socket.hpp"
#include "netio/transport.hpp"
#include "proto/cluster_link.hpp"
#include "proto/distributed_mot.hpp"
#include "wire/frames.hpp"

namespace mot::netio {

// Node -> shard map shared by workers and coordinator: round-robin, so
// every shard owns roles at every overlay level.
inline std::uint32_t shard_of(NodeId node, std::uint32_t num_shards) {
  return static_cast<std::uint32_t>(node % num_shards);
}

// Deterministic world fingerprint (FNV-1a over the node count and a
// sample of upward sequences): shards built from different seeds or
// configs disagree, and the coordinator aborts the bootstrap instead of
// letting them exchange node-addressed messages.
std::uint64_t world_fingerprint(const PathProvider& provider);

struct WorkerConfig {
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 1;
  std::uint16_t coordinator_port = 0;
  // Version this worker ENCODES at (decoding accepts anything >= the
  // floor). The mixed-version interop test runs one worker at
  // kWireVersionFuture: a "build from the future" whose extra fields
  // every current peer must skip.
  std::uint8_t encode_version = wire::kWireVersion;
  // Observability: when non-empty, run() streams this shard's trace
  // events to <trace_dir>/shard-<i>.jsonl behind a flight-recorder ring
  // that dumps the last `flight_capacity` events to
  // <trace_dir>/flight-<i>.jsonl on abnormal exit (DESIGN.md §12).
  std::string trace_dir;
  std::size_t flight_capacity = 4096;
};

// One shard of the cluster. Owns the control + mesh sockets; the
// DistributedMot, simulator, and provider belong to the embedder (built
// deterministically from the same seed in every process). Attaches
// itself via use_cluster().
class ShardWorker final : public proto::ClusterLink {
 public:
  ShardWorker(const WorkerConfig& config, const PathProvider& provider,
              Simulator& sim, proto::DistributedMot& mot);

  // Full lifecycle: bootstrap, pump until Shutdown. Returns 0 on clean
  // shutdown, nonzero on a protocol/socket failure.
  int run();

  // proto::ClusterLink
  bool owns(NodeId node) const override;
  void forward(const proto::Message& message, NodeId from) override;
  void complete_publish(ObjectId object) override;
  void complete_move(ObjectId object, const MoveResult& result) override;
  void complete_query(std::uint64_t query_id,
                      const QueryResult& result) override;

  std::uint8_t negotiated_version() const { return version_; }
  const WireStats& wire_stats() const { return stats_; }

 private:
  bool bootstrap();
  bool wire_mesh(const wire::HelloAckFrame& ack);
  bool pump();
  bool handle_control(std::span<const std::uint8_t> payload);
  bool handle_peer(std::uint32_t shard,
                   std::span<const std::uint8_t> payload);
  void send_complete(const wire::CompleteFrame& frame);
  void maybe_answer_probe();
  // Snapshot of this shard's observable state (cost meter, protocol
  // stats, netio frame/byte counters) as one TelemetryReport frame.
  wire::TelemetryReportFrame telemetry_snapshot() const;

  WorkerConfig config_;
  const PathProvider* provider_;
  Simulator* sim_;
  proto::DistributedMot* mot_;
  Listener mesh_listener_;
  FrameStream control_;
  std::vector<FrameStream> peers_;  // indexed by shard; self unused
  std::uint8_t version_ = wire::kWireVersion;
  bool done_ = false;
  std::optional<std::uint64_t> probe_pending_;
  std::uint64_t forwarded_ = 0;  // kMessage frames shipped to peers
  std::uint64_t injected_ = 0;   // kMessage frames accepted from peers
  WireStats stats_;
};

// Per-operation outcome as reported over the control plane.
struct ClusterQueryOutcome {
  bool found = false;
  NodeId proxy = kInvalidNode;
  Weight cost = 0.0;
  int found_level = 0;
  bool degraded = false;
  Weight staleness = 0.0;
};

struct ClusterMoveOutcome {
  Weight cost = 0.0;
  int peak_level = 0;
};

// The control-plane side: accepts worker Hellos, negotiates the wire
// version, injects operations, and aggregates results. Lives in the
// parent process (bench/cluster_runner) or a test thread.
class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(std::uint32_t num_shards);

  // Opens the control listener; workers dial port().
  bool open();
  std::uint16_t port() const { return listener_.port(); }

  // Accepts all workers, verifies their fingerprints agree, negotiates
  // the version, and releases them into the pump loop. False on any
  // mismatch (the cluster must not run on divergent worlds).
  bool bootstrap();
  std::uint8_t negotiated_version() const { return version_; }

  // Operations: broadcast the position, inject at the owner shard, wait
  // for completion, then drain the mesh via probe waves.
  bool publish(ObjectId object, NodeId proxy);
  std::optional<ClusterMoveOutcome> move(ObjectId object, NodeId new_proxy);
  std::optional<ClusterQueryOutcome> query(NodeId origin, ObjectId object);

  // Elementwise sum of every shard's per-node storage load; the meter
  // total accumulates each shard's charged distance.
  std::vector<std::uint64_t> collect_loads(double* meter_total);

  // Pulls every worker's metrics snapshot and merges it into `out`,
  // each shard's instruments labeled {"shard", "<i>"}. False on a
  // control-plane failure (out may then hold a partial merge).
  bool collect_telemetry(obs::MetricsRegistry* out);

  void shutdown();

 private:
  bool broadcast(const std::vector<std::uint8_t>& frame);
  // Blocks until one frame arrives from `shard` (any shard when
  // kAnyShard); returns the payload, empty on socket failure.
  static constexpr std::uint32_t kAnyShard = ~0u;
  std::vector<std::uint8_t> next_frame(std::uint32_t* shard);
  bool note_position(ObjectId object, NodeId node);
  bool await_quiescence();

  std::uint32_t num_shards_;
  Listener listener_;
  std::vector<FrameStream> workers_;  // indexed by shard
  std::uint8_t version_ = 0;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t next_probe_token_ = 1;
};

}  // namespace mot::netio
