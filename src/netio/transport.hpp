// SocketTransport: the sim::Channel interface realized over loopback
// TCP. Every transmit() serializes a wire frame, pushes it through the
// kernel's loopback stack, and the delivery fires only after the bytes
// came back off the socket — so a "message hop" is physically a socket
// round trip, not just a callback.
//
// Timing model: the delivery callback cannot travel through the socket
// (it is process state), so it is keyed by a sequence number and the
// frame carries the key. An anchor event scheduled at the hop's distance
// keeps simulator timing bit-identical to ReliableChannel: when the
// anchor fires it blocks until the frame has physically arrived, then
// invokes the callback. Writes precede their anchors, so the wait always
// terminates; out-of-order anchor firing (shorter hops overtaking longer
// ones on the wire) is absorbed by a received-set.
//
// Composes under faults::UnreliableChannel::set_inner(): the fault model
// decides each copy's fate, this transport moves the survivors.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "netio/socket.hpp"
#include "sim/channel.hpp"

namespace mot::netio {

struct WireStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  // Writev-style peer flushes that carried at least one frame; with
  // frame batching, frames_sent / frame_flushes is the coalescing rate.
  std::uint64_t frame_flushes = 0;
};

class SocketTransport final : public Channel {
 public:
  // Opens a loopback listener, connects to it, and keeps both ends: one
  // to write transmit notifications into, one to read them back from.
  SocketTransport();

  // False if the loopback plumbing failed (no sockets available); a
  // failed transport must not be used.
  bool ok() const { return out_.valid() && in_.valid(); }

  void transmit(Simulator& sim, NodeId from, NodeId to, Weight distance,
                std::function<void()> deliver) override;

  // Deliveries whose frame or anchor is still outstanding.
  std::size_t pending() const { return pending_.size(); }

  const WireStats& stats() const { return stats_; }

 private:
  void fire(std::uint64_t seq);

  FrameStream out_;  // write end (connected client)
  FrameStream in_;   // read end (accepted server side)
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, std::function<void()>> pending_;
  std::unordered_set<std::uint64_t> received_;  // arrived before anchor
  WireStats stats_;
};

}  // namespace mot::netio
