#include "netio/cluster.hpp"

#include <algorithm>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sim/cost_meter.hpp"
#include "util/check.hpp"

namespace mot::netio {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t world_fingerprint(const PathProvider& provider) {
  std::uint64_t hash = kFnvOffset;
  const std::size_t n = provider.num_nodes();
  fnv_mix(hash, n);
  // Sample up to 64 upward sequences: enough to distinguish worlds built
  // from different seeds/configs without hashing the whole hierarchy.
  const std::size_t stride = std::max<std::size_t>(1, n / 64);
  for (std::size_t u = 0; u < n; u += stride) {
    const auto sequence = provider.upward_sequence(static_cast<NodeId>(u));
    fnv_mix(hash, sequence.size());
    for (const PathStop& stop : sequence) {
      fnv_mix(hash, stop.node.node);
      fnv_mix(hash, static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(stop.node.level)));
    }
  }
  return hash;
}

// ---------------------------------------------------------------------------
// ShardWorker
// ---------------------------------------------------------------------------

ShardWorker::ShardWorker(const WorkerConfig& config,
                         const PathProvider& provider, Simulator& sim,
                         proto::DistributedMot& mot)
    : config_(config), provider_(&provider), sim_(&sim), mot_(&mot) {
  mot_->use_cluster(this);
}

bool ShardWorker::owns(NodeId node) const {
  return shard_of(node, config_.num_shards) == config_.shard;
}

int ShardWorker::run() {
  // With a trace dir, every event this shard emits flows through a
  // flight-recorder ring into the live per-shard JSONL stream; an
  // abnormal exit preserves the ring's tail as flight-<shard>.jsonl.
  std::unique_ptr<obs::JsonlFileSink> live;
  std::unique_ptr<obs::FlightRecorder> recorder;
  obs::TraceSink* previous_sink = nullptr;
  obs::FlightRecorder* previous_recorder = nullptr;
  if (!config_.trace_dir.empty()) {
    const std::string base = config_.trace_dir + "/";
    const std::string tag = std::to_string(config_.shard);
    live = std::make_unique<obs::JsonlFileSink>(base + "shard-" + tag +
                                                ".jsonl");
    recorder = std::make_unique<obs::FlightRecorder>(
        config_.flight_capacity, base + "flight-" + tag + ".jsonl");
    recorder->set_chain(live.get());
    previous_sink = obs::install_trace_sink(recorder.get());
    previous_recorder = obs::install_flight_recorder(recorder.get());
  }
  int rc = 0;
  if (!bootstrap()) {
    rc = 1;
  } else if (!pump()) {
    rc = 2;
  }
  if (recorder != nullptr) {
    if (rc != 0) {
      recorder->dump(rc == 1 ? "bootstrap-failure" : "pump-failure");
    }
    obs::install_flight_recorder(previous_recorder);
    obs::install_trace_sink(previous_sink);
    recorder->flush();
  }
  return rc;
}

bool ShardWorker::bootstrap() {
  if (!mesh_listener_.open()) return false;
  control_ = FrameStream(connect_loopback(config_.coordinator_port));
  if (!control_.valid()) return false;

  wire::HelloFrame hello;
  hello.shard = config_.shard;
  hello.num_shards = config_.num_shards;
  hello.listen_port = mesh_listener_.port();
  hello.node_map_hash = world_fingerprint(*provider_);
  hello.num_nodes = provider_->num_nodes();
  if (!control_.send(wire::encode_hello(hello))) return false;

  std::vector<std::uint8_t> payload;
  if (control_.recv(&payload, /*block=*/true) != wire::DecodeError::kNone) {
    return false;
  }
  wire::HelloAckFrame ack;
  if (wire::decode_hello_ack(payload, &ack) != wire::DecodeError::kNone) {
    return false;
  }
  version_ = ack.version;
  // The walker-context fields (op_cost / op_peak) entered in version 2;
  // a cluster negotiated below that could not move contexts between
  // shards.
  if (version_ < 2) return false;
  return wire_mesh(ack);
}

bool ShardWorker::wire_mesh(const wire::HelloAckFrame& ack) {
  if (ack.peer_ports.size() != config_.num_shards) return false;
  peers_.resize(config_.num_shards);
  // Dial every lower shard; its listener already queues the connection
  // even if it has not reached accept() yet.
  for (std::uint32_t j = 0; j < config_.shard; ++j) {
    Socket sock = connect_loopback(
        static_cast<std::uint16_t>(ack.peer_ports[j]));
    if (!sock.valid()) return false;
    peers_[j] = FrameStream(std::move(sock));
    wire::HelloFrame id;
    id.shard = config_.shard;
    id.num_shards = config_.num_shards;
    if (!peers_[j].send(wire::encode_hello(id))) return false;
  }
  // Accept every higher shard; the first frame identifies the dialer.
  for (std::uint32_t j = config_.shard + 1; j < config_.num_shards; ++j) {
    Socket sock = mesh_listener_.accept();
    if (!sock.valid()) return false;
    FrameStream stream(std::move(sock));
    std::vector<std::uint8_t> payload;
    if (stream.recv(&payload, /*block=*/true) != wire::DecodeError::kNone) {
      return false;
    }
    wire::HelloFrame id;
    if (wire::decode_hello(payload, &id) != wire::DecodeError::kNone) {
      return false;
    }
    if (id.shard <= config_.shard || id.shard >= config_.num_shards) {
      return false;
    }
    peers_[id.shard] = std::move(stream);
  }
  return true;
}

bool ShardWorker::pump() {
  while (!done_) {
    sim_->run();
    // Drain everything already readable before considering idleness —
    // every buffered control and peer frame, not one per wakeup, so a
    // burst of cross-shard traffic is absorbed in one iteration.
    bool progressed = false;
    std::vector<std::uint8_t> payload;
    while (!done_ && control_.recv(&payload, /*block=*/false) ==
                         wire::DecodeError::kNone) {
      if (!handle_control(payload)) return false;
      progressed = true;
    }
    if (control_.closed()) return false;  // coordinator went away
    for (std::uint32_t j = 0; j < peers_.size() && !done_; ++j) {
      if (!peers_[j].valid()) continue;
      while (peers_[j].recv(&payload, /*block=*/false) ==
             wire::DecodeError::kNone) {
        if (!handle_peer(j, payload)) return false;
        progressed = true;
      }
    }
    if (progressed) continue;
    // Idle: everything forward() staged this iteration goes out now, one
    // write per peer, before any probe reply claims the counters final.
    if (!flush_peers()) return false;
    maybe_answer_probe();
    if (done_) break;
    std::vector<int> fds;
    fds.push_back(control_.fd());
    for (FrameStream& peer : peers_) {
      if (peer.valid()) fds.push_back(peer.fd());
    }
    poll_readable(fds, 200);
  }
  return flush_peers();
}

bool ShardWorker::flush_peers() {
  for (FrameStream& peer : peers_) {
    if (!peer.valid() || peer.queued_bytes() == 0) continue;
    ++stats_.frame_flushes;
    if (!peer.flush()) return false;
  }
  return true;
}

void ShardWorker::maybe_answer_probe() {
  if (!probe_pending_ || !sim_->empty()) return;
  wire::ProbeReplyFrame reply;
  reply.token = *probe_pending_;
  reply.forwarded = forwarded_;
  reply.injected = injected_;
  probe_pending_.reset();
  control_.send(wire::encode_probe_reply(reply, version_));
}

bool ShardWorker::handle_control(std::span<const std::uint8_t> payload) {
  wire::ByteReader reader(payload);
  wire::FrameHeader header;
  if (wire::read_frame_header(reader, &header) != wire::DecodeError::kNone) {
    return false;
  }
  switch (header.kind) {
    case wire::FrameKind::kControl: {
      wire::ControlFrame control;
      if (wire::decode_control(payload, &control) !=
          wire::DecodeError::kNone) {
        return false;
      }
      switch (control.op) {
        case wire::ClusterOp::kNotePosition:
          mot_->cluster_note_position(control.object, control.node);
          send_complete({.op = wire::ClusterOp::kNotePosition,
                         .object = control.object});
          break;
        case wire::ClusterOp::kPublish:
          mot_->cluster_publish(control.object, control.node);
          break;
        case wire::ClusterOp::kMove:
          mot_->cluster_move(control.object, control.node);
          break;
        case wire::ClusterOp::kQuery:
          mot_->cluster_query(control.node, control.object,
                              control.query_id);
          break;
        case wire::ClusterOp::kReportLoad: {
          wire::LoadReportFrame report;
          for (const std::size_t load : mot_->load_per_node()) {
            report.loads.push_back(load);
          }
          report.meter_total = mot_->meter().total_distance();
          control_.send(wire::encode_load_report(report, version_));
          break;
        }
        case wire::ClusterOp::kReportTelemetry:
          control_.send(
              wire::encode_telemetry_report(telemetry_snapshot(), version_));
          break;
      }
      return true;
    }
    case wire::FrameKind::kProbe: {
      wire::ProbeFrame probe;
      if (wire::decode_probe(payload, &probe) != wire::DecodeError::kNone) {
        return false;
      }
      probe_pending_ = probe.token;
      return true;
    }
    case wire::FrameKind::kShutdown:
      done_ = true;
      return true;
    default:
      return false;
  }
}

bool ShardWorker::handle_peer(std::uint32_t shard,
                              std::span<const std::uint8_t> payload) {
  wire::MessageFrame frame;
  if (wire::decode_message_frame(payload, &frame) !=
      wire::DecodeError::kNone) {
    if (obs::FlightRecorder* recorder = obs::flight_recorder()) {
      recorder->dump("decode-error");
    }
    return false;
  }
  ++stats_.frames_received;
  stats_.bytes_received += payload.size() + 4;
  ++injected_;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kWireDecode,
               .t = sim_->now(),
               .object = frame.message.object,
               .from = frame.from,
               .to = frame.message.role.node,
               .aux = payload.size() + 4,
               .trace = frame.message.trace_id,
               .label = proto::msg_type_name(frame.message.type)});
  }
  (void)shard;
  mot_->cluster_inject(frame.message, frame.from);
  return true;
}

void ShardWorker::forward(const proto::Message& message, NodeId from) {
  const std::uint32_t to_shard =
      shard_of(message.role.node, config_.num_shards);
  MOT_CHECK(to_shard != config_.shard);
  MOT_CHECK(peers_[to_shard].valid());
  const std::uint8_t version = std::max(version_, config_.encode_version);
  const std::vector<std::uint8_t> frame =
      wire::encode_message_frame({.message = message, .from = from},
                                 version);
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  ++forwarded_;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kWireEncode,
               .t = sim_->now(),
               .object = message.object,
               .from = from,
               .to = message.role.node,
               .aux = frame.size(),
               .trace = message.trace_id,
               .label = proto::msg_type_name(message.type)});
  }
  // Staged, not sent: pump() flushes every peer's queue in one write
  // when the shard goes idle. forwarded_ counts at staging time, which
  // is safe because the probe reply is only sent after flush_peers().
  peers_[to_shard].queue(frame);
}

void ShardWorker::send_complete(const wire::CompleteFrame& frame) {
  control_.send(wire::encode_complete(frame, version_));
}

void ShardWorker::complete_publish(ObjectId object) {
  send_complete({.op = wire::ClusterOp::kPublish, .object = object});
}

void ShardWorker::complete_move(ObjectId object, const MoveResult& result) {
  wire::CompleteFrame frame;
  frame.op = wire::ClusterOp::kMove;
  frame.object = object;
  frame.cost = result.cost;
  frame.level = result.peak_level;
  send_complete(frame);
}

void ShardWorker::complete_query(std::uint64_t query_id,
                                 const QueryResult& result) {
  wire::CompleteFrame frame;
  frame.op = wire::ClusterOp::kQuery;
  frame.query_id = query_id;
  frame.found = result.found;
  frame.proxy = result.proxy;
  frame.cost = result.cost;
  frame.level = result.found_level;
  frame.degraded = result.degraded;
  frame.staleness = result.staleness_bound;
  send_complete(frame);
}

wire::TelemetryReportFrame ShardWorker::telemetry_snapshot() const {
  // Project every inline tally this shard keeps — the cost meter, the
  // protocol's stat block (which carries the overload ledger), and the
  // netio frame/byte counters — into one registry, then ship its
  // value-typed snapshot. The registry is rebuilt per request, so a
  // snapshot is always a consistent point-in-time view.
  obs::MetricsRegistry registry;
  export_cost_meter(mot_->meter(), registry);
  proto::export_protocol_stats(mot_->stats(), registry);
  registry.counter("mot_wire_frames_sent_total")
      .increment(stats_.frames_sent);
  registry.counter("mot_wire_frames_received_total")
      .increment(stats_.frames_received);
  registry.counter("mot_wire_bytes_sent_total")
      .increment(stats_.bytes_sent);
  registry.counter("mot_wire_bytes_received_total")
      .increment(stats_.bytes_received);
  registry.counter("mot_wire_messages_forwarded_total")
      .increment(forwarded_);
  registry.counter("mot_wire_messages_injected_total")
      .increment(injected_);
  wire::TelemetryReportFrame frame;
  frame.shard = config_.shard;
  frame.metrics = registry.snapshot();
  return frame;
}

// ---------------------------------------------------------------------------
// ClusterCoordinator
// ---------------------------------------------------------------------------

ClusterCoordinator::ClusterCoordinator(std::uint32_t num_shards)
    : num_shards_(num_shards), workers_(num_shards) {}

bool ClusterCoordinator::open() { return listener_.open(); }

bool ClusterCoordinator::bootstrap() {
  std::vector<wire::HelloFrame> hellos(num_shards_);
  for (std::uint32_t i = 0; i < num_shards_; ++i) {
    Socket sock = listener_.accept();
    if (!sock.valid()) return false;
    FrameStream stream(std::move(sock));
    std::vector<std::uint8_t> payload;
    if (stream.recv(&payload, /*block=*/true) != wire::DecodeError::kNone) {
      return false;
    }
    wire::HelloFrame hello;
    if (wire::decode_hello(payload, &hello) != wire::DecodeError::kNone) {
      return false;
    }
    if (hello.shard >= num_shards_ || hello.num_shards != num_shards_ ||
        workers_[hello.shard].valid()) {
      return false;
    }
    workers_[hello.shard] = std::move(stream);
    hellos[hello.shard] = hello;
  }
  // Every shard must have built the same world: node-addressed messages
  // are meaningless across divergent hierarchies.
  std::uint8_t floor = 0;
  std::uint8_t ceiling = 255;
  for (const wire::HelloFrame& hello : hellos) {
    if (hello.node_map_hash != hellos[0].node_map_hash ||
        hello.num_nodes != hellos[0].num_nodes) {
      return false;
    }
    floor = std::max(floor, hello.wire_min);
    ceiling = std::min(ceiling, hello.wire_max);
  }
  if (ceiling < floor || ceiling < 2) return false;
  version_ = ceiling;  // highest version every peer speaks

  wire::HelloAckFrame ack;
  ack.version = version_;
  for (const wire::HelloFrame& hello : hellos) {
    ack.peer_ports.push_back(hello.listen_port);
  }
  return broadcast(wire::encode_hello_ack(ack, version_));
}

bool ClusterCoordinator::broadcast(const std::vector<std::uint8_t>& frame) {
  for (FrameStream& worker : workers_) {
    if (!worker.send(frame)) return false;
  }
  return true;
}

std::vector<std::uint8_t> ClusterCoordinator::next_frame(
    std::uint32_t* shard) {
  while (true) {
    for (std::uint32_t i = 0; i < num_shards_; ++i) {
      if (*shard != kAnyShard && i != *shard) continue;
      std::vector<std::uint8_t> payload;
      if (workers_[i].recv(&payload, /*block=*/false) ==
          wire::DecodeError::kNone) {
        *shard = i;
        return payload;
      }
      if (workers_[i].closed()) return {};
    }
    std::vector<int> fds;
    for (FrameStream& worker : workers_) fds.push_back(worker.fd());
    poll_readable(fds, 1000);
  }
}

bool ClusterCoordinator::note_position(ObjectId object, NodeId node) {
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kNotePosition;
  control.object = object;
  control.node = node;
  if (!broadcast(wire::encode_control(control, version_))) return false;
  for (std::uint32_t acks = 0; acks < num_shards_; ++acks) {
    std::uint32_t shard = kAnyShard;
    const std::vector<std::uint8_t> payload = next_frame(&shard);
    wire::CompleteFrame complete;
    if (wire::decode_complete(payload, &complete) !=
            wire::DecodeError::kNone ||
        complete.op != wire::ClusterOp::kNotePosition) {
      return false;
    }
  }
  return true;
}

bool ClusterCoordinator::publish(ObjectId object, NodeId proxy) {
  if (!note_position(object, proxy)) return false;
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kPublish;
  control.object = object;
  control.node = proxy;
  if (!workers_[shard_of(proxy, num_shards_)].send(
          wire::encode_control(control, version_))) {
    return false;
  }
  std::uint32_t shard = kAnyShard;
  const std::vector<std::uint8_t> payload = next_frame(&shard);
  wire::CompleteFrame complete;
  if (wire::decode_complete(payload, &complete) !=
          wire::DecodeError::kNone ||
      complete.op != wire::ClusterOp::kPublish ||
      complete.object != object) {
    return false;
  }
  return await_quiescence();
}

std::optional<ClusterMoveOutcome> ClusterCoordinator::move(
    ObjectId object, NodeId new_proxy) {
  if (!note_position(object, new_proxy)) return std::nullopt;
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kMove;
  control.object = object;
  control.node = new_proxy;
  if (!workers_[shard_of(new_proxy, num_shards_)].send(
          wire::encode_control(control, version_))) {
    return std::nullopt;
  }
  std::uint32_t shard = kAnyShard;
  const std::vector<std::uint8_t> payload = next_frame(&shard);
  wire::CompleteFrame complete;
  if (wire::decode_complete(payload, &complete) !=
          wire::DecodeError::kNone ||
      complete.op != wire::ClusterOp::kMove || complete.object != object) {
    return std::nullopt;
  }
  if (!await_quiescence()) return std::nullopt;
  return ClusterMoveOutcome{.cost = complete.cost,
                            .peak_level = complete.level};
}

std::optional<ClusterQueryOutcome> ClusterCoordinator::query(
    NodeId origin, ObjectId object) {
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kQuery;
  control.object = object;
  control.node = origin;
  control.query_id = next_query_id_++;
  if (!workers_[shard_of(origin, num_shards_)].send(
          wire::encode_control(control, version_))) {
    return std::nullopt;
  }
  std::uint32_t shard = kAnyShard;
  const std::vector<std::uint8_t> payload = next_frame(&shard);
  wire::CompleteFrame complete;
  if (wire::decode_complete(payload, &complete) !=
          wire::DecodeError::kNone ||
      complete.op != wire::ClusterOp::kQuery ||
      complete.query_id != control.query_id) {
    return std::nullopt;
  }
  if (!await_quiescence()) return std::nullopt;
  return ClusterQueryOutcome{.found = complete.found,
                             .proxy = complete.proxy,
                             .cost = complete.cost,
                             .found_level = complete.level,
                             .degraded = complete.degraded,
                             .staleness = complete.staleness};
}

bool ClusterCoordinator::await_quiescence() {
  // Mattern's four-counter method: two consecutive probe waves with
  // identical per-shard counters and a globally balanced forwarded ==
  // injected sum prove no kMessage frame is still in flight.
  // Compare counters only: the token is fresh per wave by design (it
  // pairs replies with their probe), so it must not enter the equality.
  using Wave = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  Wave previous;
  while (true) {
    wire::ProbeFrame probe;
    probe.token = next_probe_token_++;
    if (!broadcast(wire::encode_probe(probe, version_))) return false;
    Wave wave(num_shards_);
    for (std::uint32_t got = 0; got < num_shards_; ++got) {
      std::uint32_t shard = kAnyShard;
      const std::vector<std::uint8_t> payload = next_frame(&shard);
      wire::ProbeReplyFrame reply;
      if (wire::decode_probe_reply(payload, &reply) !=
              wire::DecodeError::kNone ||
          reply.token != probe.token) {
        return false;
      }
      wave[shard] = {reply.forwarded, reply.injected};
    }
    std::uint64_t forwarded = 0;
    std::uint64_t injected = 0;
    for (const auto& [f, i] : wave) {
      forwarded += f;
      injected += i;
    }
    if (forwarded == injected && !previous.empty() && wave == previous) {
      return true;
    }
    previous = std::move(wave);
  }
}

std::vector<std::uint64_t> ClusterCoordinator::collect_loads(
    double* meter_total) {
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kReportLoad;
  if (!broadcast(wire::encode_control(control, version_))) return {};
  std::vector<std::uint64_t> totals;
  for (std::uint32_t got = 0; got < num_shards_; ++got) {
    std::uint32_t shard = kAnyShard;
    const std::vector<std::uint8_t> payload = next_frame(&shard);
    wire::LoadReportFrame report;
    if (wire::decode_load_report(payload, &report) !=
        wire::DecodeError::kNone) {
      return {};
    }
    totals.resize(std::max(totals.size(), report.loads.size()), 0);
    for (std::size_t i = 0; i < report.loads.size(); ++i) {
      totals[i] += report.loads[i];
    }
    if (meter_total != nullptr) *meter_total += report.meter_total;
  }
  return totals;
}

bool ClusterCoordinator::collect_telemetry(obs::MetricsRegistry* out) {
  wire::ControlFrame control;
  control.op = wire::ClusterOp::kReportTelemetry;
  if (!broadcast(wire::encode_control(control, version_))) return false;
  for (std::uint32_t got = 0; got < num_shards_; ++got) {
    std::uint32_t shard = kAnyShard;
    const std::vector<std::uint8_t> payload = next_frame(&shard);
    wire::TelemetryReportFrame report;
    if (wire::decode_telemetry_report(payload, &report) !=
        wire::DecodeError::kNone) {
      return false;
    }
    const obs::Labels extra = {{"shard", std::to_string(report.shard)}};
    for (const obs::MetricSnapshot& metric : report.metrics) {
      out->absorb(metric, extra);
    }
  }
  return true;
}

void ClusterCoordinator::shutdown() {
  // Best-effort, per worker: a shard that already died (e.g. the chaos
  // harness or the kill-shard smoke took it down) must not keep its
  // surviving peers from receiving the Shutdown frame.
  const std::vector<std::uint8_t> frame = wire::encode_shutdown(version_);
  for (FrameStream& worker : workers_) {
    if (worker.valid()) worker.send(frame);
  }
}

}  // namespace mot::netio
