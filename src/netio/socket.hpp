// Thin RAII wrappers over loopback TCP for the cluster runner: a
// listener bound to 127.0.0.1 on an ephemeral port, a blocking connect
// with retry (workers race the coordinator's accept loop at bootstrap),
// and a frame-buffered stream that speaks the length-prefixed wire
// framing of src/wire/ — bytes accumulate in a receive buffer until
// split_frame() can carve off a whole payload.
//
// Everything here is deliberately blocking-with-poll: the cluster runner
// is a single-threaded event loop per process, and poll_readable() is
// its only wait primitive.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "wire/message_codec.hpp"

namespace mot::netio {

// Owned POSIX socket descriptor; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

// Listening socket on 127.0.0.1; port 0 picks an ephemeral port, the
// bound port is readable afterwards.
class Listener {
 public:
  // Returns false (with errno intact) if bind/listen failed.
  bool open(std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }
  bool valid() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }

  // Blocking accept; invalid Socket on failure.
  Socket accept();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

// Blocking connect to 127.0.0.1:port, retrying for up to `timeout_ms`
// while the peer's listener is not up yet.
Socket connect_loopback(std::uint16_t port, int timeout_ms = 5000);

// Waits until at least one fd in `fds` is readable; returns the indices
// of the readable ones (empty on timeout). timeout_ms < 0 blocks.
std::vector<std::size_t> poll_readable(std::span<const int> fds,
                                       int timeout_ms);

// A connected stream carrying wire frames. Writes are blocking-complete
// (the loopback kernel buffer absorbs them); reads drain whatever the
// socket has into an internal buffer and carve complete frames off it.
class FrameStream {
 public:
  FrameStream() = default;
  explicit FrameStream(Socket socket) : socket_(std::move(socket)) {}

  bool valid() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }
  void close() { socket_.close(); }

  // Sends one encoded frame (length prefix included). Returns false if
  // the peer is gone.
  bool send(std::span<const std::uint8_t> frame);

  // Stages one encoded frame in the outgoing buffer without touching the
  // socket. Frames are length-prefixed, so the concatenation flush()
  // writes is exactly what back-to-back send() calls would have put on
  // the wire — the receiver cannot tell the difference.
  void queue(std::span<const std::uint8_t> frame);

  // Writes every queued frame in one blocking-complete send. True when
  // nothing was queued or the write completed; false if the peer is
  // gone. Counts toward bytes_sent() only here, once the bytes actually
  // leave the process.
  bool flush();

  std::size_t queued_bytes() const { return out_buffer_.size(); }

  // True when a whole frame is already buffered (no syscall).
  bool frame_buffered() const;

  // Pulls available bytes off the socket (non-blocking if `block` is
  // false) and, if a complete frame is buffered, copies its payload
  // (version + kind + body) into *payload. Outcomes:
  //   kNone       — one frame delivered
  //   kShortRead  — no complete frame yet (peer still writing / no data)
  //   kBadLength  — stream corrupt (desynced length prefix); fatal
  // Peer hangup with an empty buffer reports kShortRead and flips
  // closed().
  wire::DecodeError recv(std::vector<std::uint8_t>* payload, bool block);

  bool closed() const { return closed_; }

  // Total frame bytes through this stream, for the wire stats.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  // Appends up to one read()'s worth of bytes; returns false on EOF.
  bool fill(bool block);

  Socket socket_;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint8_t> out_buffer_;  // queued frames awaiting flush()
  std::size_t buffer_pos_ = 0;  // consumed prefix (compacted lazily)
  bool closed_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace mot::netio
