#include "adapt/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics_registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot::adapt {

namespace {

// One bounded step of `at` toward `goal`; lands exactly on the goal so
// idle decay terminates instead of dithering around it.
double move_toward(double at, double goal, double step) {
  if (at < goal) return std::min(goal, at + step);
  if (at > goal) return std::max(goal, at - step);
  return at;
}

}  // namespace

AdaptiveController::AdaptiveController(const AdaptiveConfig& config)
    : config_(config) {
  MOT_EXPECTS(config_.min_window >= 1);
  MOT_EXPECTS(config_.epoch_acks >= 1);
  MOT_EXPECTS(config_.decrease > 0.0 && config_.decrease < 1.0);
  MOT_EXPECTS(config_.step > 0.0);
  MOT_EXPECTS(config_.tighten_boost >= 1.0);
  MOT_EXPECTS(config_.admit_min > 0.0);
  MOT_EXPECTS(config_.red_min > 0.0);
  MOT_EXPECTS(config_.deadband >= 0.0);
  MOT_EXPECTS(config_.freeze_after_flips >= 1);
  MOT_EXPECTS(config_.freeze_steps >= 1);
  MOT_EXPECTS(config_.retire_after >= 1);
}

std::size_t AdaptiveController::window_cap(std::uint32_t to,
                                           std::size_t max_window) const {
  if (!config_.aimd) return max_window;
  const auto it = links_.find(to);
  if (it == links_.end()) return max_window;
  return std::min(it->second.cap, max_window);
}

bool AdaptiveController::on_clean_ack(std::uint32_t to,
                                      std::size_t max_window) {
  if (!config_.aimd) return false;
  auto [it, inserted] = links_.try_emplace(to, LinkState{max_window, 0});
  LinkState& link = it->second;
  if (++link.clean_acks < config_.epoch_acks) return false;
  link.clean_acks = 0;
  if (link.cap >= max_window) {
    link.cap = max_window;  // already at the ceiling: the epoch still resets
    return false;
  }
  link.cap = std::min(link.cap + config_.increase, max_window);
  ++stats_.window_raises;
  return true;
}

bool AdaptiveController::on_link_loss(std::uint32_t to,
                                      std::size_t max_window) {
  if (!config_.aimd) return false;
  auto [it, inserted] = links_.try_emplace(to, LinkState{max_window, 0});
  LinkState& link = it->second;
  link.clean_acks = 0;  // a loss ends the clean epoch
  link.cap = std::min(link.cap, max_window);
  const auto shrunk = static_cast<std::size_t>(
      std::floor(static_cast<double>(link.cap) * config_.decrease));
  const std::size_t next = std::max(config_.min_window, shrunk);
  if (next >= link.cap) return false;
  link.cap = next;
  ++stats_.window_shrinks;
  return true;
}

double AdaptiveController::target_delay_for(
    const overload::OverloadConfig& base) const {
  if (config_.target_delay > 0.0) return config_.target_delay;
  // Queueing past the degrade watermark turns full-fidelity answers into
  // degraded ones, so that onset is the natural goodput-preserving
  // target; a configured query-class deadline budget tightens it.
  double target =
      static_cast<double>(base.high_watermark()) / base.service_rate;
  const double budget = base.delay_budget[static_cast<std::size_t>(
      overload::Priority::kQuery)];
  if (budget > 0.0) target = std::min(target, budget);
  return target;
}

double AdaptiveController::admit_ceiling_for(
    const overload::OverloadConfig& base) const {
  if (config_.admit_max > 0.0) return config_.admit_max;
  // Cap at the maintenance-class fraction so the tuned query fraction
  // never breaks the class ladder's monotonicity.
  return base.admit_fraction[static_cast<std::size_t>(
      overload::Priority::kMaintenance)];
}

std::vector<TuneAction> AdaptiveController::tune(
    const std::vector<NodeSignal>& signals,
    const overload::OverloadConfig& base) {
  std::vector<TuneAction> actions;
  if (!config_.tune_admission) return actions;
  const double target = target_delay_for(base);
  const double ceiling = admit_ceiling_for(base);
  const double base_admit =
      base.admit_fraction[static_cast<std::size_t>(overload::Priority::kQuery)];
  const double base_red = base.red_fraction;
  // The goodput-delta gate is global: an admitted query descends a chain
  // of nodes, so the degradation it causes often lands downstream of the
  // node that opened. Any degraded answer anywhere this epoch means the
  // system is at the degrade edge, and no node may open into it.
  std::uint64_t total_degrades = 0;
  for (const NodeSignal& sig : signals) total_degrades += sig.degrades;
  for (const NodeSignal& sig : signals) {
    const bool idle =
        sig.delay_samples == 0 && sig.sheds == 0 && sig.degrades == 0;
    auto it = nodes_.find(sig.node);
    if (idle) {
      // Hotspot moved away: decay one step back toward the static
      // operating point, and forget the node once it arrives.
      if (it == nodes_.end()) continue;
      NodeState& st = it->second;
      if (st.frozen_for > 0) {
        --st.frozen_for;
        continue;
      }
      st.admit = move_toward(st.admit, base_admit, config_.step);
      st.red = move_toward(st.red, base_red, config_.step);
      st.last_dir = 0;
      st.flips = 0;
      ++stats_.tuner_reverts;
      actions.push_back({sig.node, st.admit, st.red});
      if (st.admit == base_admit && st.red == base_red) nodes_.erase(it);
      continue;
    }
    int dir = 0;
    if (sig.degrades > 0 ||
        (sig.delay_samples > 0 &&
         sig.mean_delay > (1.0 + config_.deadband) * target)) {
      // Queues deep enough to degrade answers (or to blow the delay
      // target): tighten admission so excess load is shed early — a
      // shed query retries at full fidelity, a degraded answer is
      // goodput already lost.
      dir = -1;
    } else if (total_degrades == 0 && sig.sheds > 0 &&
               sig.depth_ewma <
                   static_cast<double>(base.high_watermark()) &&
               sig.delay_samples > 0 &&
               sig.mean_delay < (1.0 - config_.deadband) * target) {
      // Shedding with depth headroom below the degrade watermark and
      // delay under target: open admission. Without the headroom check
      // the tuner would trade sheds for degraded answers.
      dir = +1;
    }
    if (dir == 0) continue;  // inside the deadband: hysteresis holds fire
    NodeState& st =
        (it != nodes_.end())
            ? it->second
            : nodes_.emplace(sig.node, NodeState{base_admit, base_red, 0, 0, 0})
                  .first->second;
    if (st.frozen_for > 0) {
      --st.frozen_for;
      continue;
    }
    if (st.last_dir != 0 && dir != st.last_dir) {
      if (++st.flips >= config_.freeze_after_flips) {
        // The gradient keeps reversing around the target: no stable
        // improvement exists here, so snap the node back to the static
        // operating point and freeze it there. Freezing at the point
        // the oscillation happened to land on would pin in whatever
        // half-wrong thresholds the last flip left behind.
        st.admit = base_admit;
        st.red = base_red;
        st.frozen_for = config_.freeze_steps;
        st.flips = 0;
        st.last_dir = 0;
        ++stats_.tuner_freezes;
        actions.push_back({sig.node, st.admit, st.red});
        continue;
      }
    } else {
      st.flips = 0;
    }
    st.last_dir = dir;
    const double delta =
        static_cast<double>(dir) * config_.step *
        (dir < 0 ? config_.tighten_boost : 1.0);
    st.admit = std::clamp(st.admit + delta, config_.admit_min, ceiling);
    st.red = std::clamp(st.red + delta, config_.red_min, ceiling);
    ++stats_.tuner_steps;
    if (dir > 0) {
      ++stats_.tuner_raises;
    } else {
      ++stats_.tuner_tightens;
    }
    actions.push_back({sig.node, st.admit, st.red});
  }
  return actions;
}

bool AdaptiveController::frozen(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.frozen_for > 0;
}

PlacementPlan AdaptiveController::plan_placements(
    const std::vector<LoadGauge>& gauges) {
  PlacementPlan plan;
  if (!config_.place_replicas) return plan;
  struct Candidate {
    double score;
    std::uint64_t tie;
    std::uint32_t node;
  };
  std::vector<Candidate> hot;
  std::set<std::uint32_t> alive;
  for (const LoadGauge& gauge : gauges) {
    alive.insert(gauge.node);
    const double score = static_cast<double>(gauge.diverts) +
                         0.25 * static_cast<double>(gauge.sheds) +
                         gauge.depth_ewma;
    const auto it = placed_.find(gauge.node);
    if (it != placed_.end()) {
      if (score < 0.5 * config_.hot_score) {
        if (++it->second.cold_streak >= config_.retire_after) {
          plan.retire.push_back(gauge.node);
        }
      } else {
        it->second.cold_streak = 0;
      }
    } else if (score >= config_.hot_score) {
      std::uint64_t mix = config_.seed ^ gauge.node;
      hot.push_back({score, splitmix64(mix), gauge.node});
    }
  }
  // A placed owner absent from the gauges no longer exists as a
  // candidate (it died); its replicas are already gone, drop the claim.
  for (const auto& [node, state] : placed_) {
    if (alive.find(node) == alive.end()) plan.retire.push_back(node);
  }
  std::sort(plan.retire.begin(), plan.retire.end());
  // Hottest first; the seeded mix breaks score ties without biasing
  // toward low node ids.
  std::sort(hot.begin(), hot.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.node < b.node;
  });
  const std::size_t keeping = placed_.size() - plan.retire.size();
  std::size_t budget =
      config_.max_replicas > keeping ? config_.max_replicas - keeping : 0;
  for (const Candidate& cand : hot) {
    if (budget == 0) break;
    plan.place.push_back(cand.node);
    --budget;
  }
  for (const std::uint32_t node : plan.retire) {
    placed_.erase(node);
    ++stats_.replicas_retired;
  }
  for (const std::uint32_t node : plan.place) {
    placed_.emplace(node, PlacedState{0});
    ++stats_.replicas_placed;
  }
  rebuild_placed_sorted();
  return plan;
}

void AdaptiveController::rebuild_placed_sorted() {
  placed_sorted_.clear();
  placed_sorted_.reserve(placed_.size());
  for (const auto& [node, state] : placed_) placed_sorted_.push_back(node);
}

std::vector<std::string> AdaptiveController::violations(
    const overload::OverloadConfig& base) const {
  std::vector<std::string> found;
  const double ceiling = admit_ceiling_for(base);
  constexpr double kEps = 1e-9;
  for (const auto& [node, st] : nodes_) {
    const std::string tag = "node " + std::to_string(node);
    if (st.admit < config_.admit_min - kEps || st.admit > ceiling + kEps) {
      found.push_back(tag + ": tuned admit fraction " +
                      std::to_string(st.admit) + " escaped its clamps");
    }
    if (st.red < config_.red_min - kEps || st.red > ceiling + kEps) {
      found.push_back(tag + ": tuned red fraction " + std::to_string(st.red) +
                      " escaped its clamps");
    }
    if (st.frozen_for > config_.freeze_steps) {
      found.push_back(tag + ": freeze counter " +
                      std::to_string(st.frozen_for) + " exceeds freeze_steps");
    }
  }
  if (placed_.size() > config_.max_replicas) {
    found.push_back("placed replica set " + std::to_string(placed_.size()) +
                    " exceeds budget " + std::to_string(config_.max_replicas));
  }
  for (std::size_t i = 0; i + 1 < placed_sorted_.size(); ++i) {
    if (placed_sorted_[i] >= placed_sorted_[i + 1]) {
      found.push_back("placed owner list is not strictly sorted");
      break;
    }
  }
  return found;
}

void AdaptiveController::export_metrics(obs::MetricsRegistry& registry,
                                        std::size_t max_window) const {
  for (const auto& [to, link] : links_) {
    registry.gauge("mot_adapt_credit_window", {{"link", std::to_string(to)}})
        .set(static_cast<double>(std::min(link.cap, max_window)));
  }
  for (const auto& [node, st] : nodes_) {
    const obs::Labels labels = {{"node", std::to_string(node)}};
    registry.gauge("mot_adapt_admit_fraction", labels).set(st.admit);
    registry.gauge("mot_adapt_red_fraction", labels).set(st.red);
  }
  registry.gauge("mot_adapt_replica_count")
      .set(static_cast<double>(placed_.size()));
  auto set_counter = [&registry](const char* name, std::uint64_t value) {
    auto& counter = registry.counter(name);
    counter.reset();
    counter.increment(value);
  };
  set_counter("mot_adapt_window_raises_total", stats_.window_raises);
  set_counter("mot_adapt_window_shrinks_total", stats_.window_shrinks);
  set_counter("mot_adapt_tuner_steps_total", stats_.tuner_steps);
  set_counter("mot_adapt_tuner_freezes_total", stats_.tuner_freezes);
  set_counter("mot_adapt_replicas_placed_total", stats_.replicas_placed);
  set_counter("mot_adapt_replicas_retired_total", stats_.replicas_retired);
}

}  // namespace mot::adapt
