// Self-tuning overload control plane.
//
// PR 5's defenses — credit windows, RED thresholds, class admit
// fractions, sibling replicas — are static configuration: one operating
// point chosen before the run. This layer drives them from signals the
// system already measures, with three deterministic controllers:
//
//   1. AIMD credit-window caps per destination link: additive increase
//      after every epoch of clean acks, multiplicative decrease on
//      breaker/timeout feedback, clamped to [min_window, max_window].
//      The reliable link layer consults `window_cap()` wherever it used
//      to clamp grants to the static `max_window`.
//   2. Gradient steps on per-node RED thresholds and query admit
//      fractions, from observed queueing delay vs. a delay target and
//      from shed counts. A deadband plus a direction-flip freeze give
//      hysteresis: the tuner cannot oscillate around the target.
//   3. Load-aware replica placement: detection-list replicas are placed
//      on owners whose divert/shed gauges run hot and retired after
//      consecutive cold epochs, reusing the sibling-redirect machinery.
//
// Determinism: the controller holds no clock and draws no randomness of
// its own (the only "random" bits are a splitmix64 tie-break keyed by
// the configured seed). Tuner and placement state advance only when the
// host explicitly steps them at quiescence points; AIMD advances on
// ack/loss events inside the already-deterministic simulator loop. Runs
// are therefore bit-identical across reruns and worker counts, and with
// no controller attached the data path is byte-identical to the static
// configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "overload/overload.hpp"

namespace mot::obs {
class MetricsRegistry;
}

namespace mot::adapt {

struct AdaptiveConfig {
  // --- AIMD credit-window caps --------------------------------------
  bool aimd = true;
  std::size_t min_window = 1;    // multiplicative decrease floor
  std::size_t epoch_acks = 8;    // clean acks per additive-increase epoch
  std::size_t increase = 1;      // window gain per clean epoch
  double decrease = 0.5;         // window factor on loss/breaker feedback

  // --- RED / admission gradient tuner -------------------------------
  bool tune_admission = true;
  // Mean queueing-delay target per node; 0 picks the delay at which
  // query degradation begins (high_watermark / service_rate), capped by
  // the query-class delay budget when one is configured — admission
  // opens only while answers stay full-fidelity and inside the budget.
  double target_delay = 0.0;
  double deadband = 0.25;   // relative no-op band around the target
  double step = 0.05;       // gradient step applied to both fractions
  // Tighten steps are this multiple of `step`: a degraded answer is
  // goodput already lost, a missed opening is merely goodput deferred,
  // so the controller backs off faster than it opens up.
  double tighten_boost = 2.0;
  double admit_min = 0.25;  // query admit fraction floor
  double red_min = 0.05;    // RED onset fraction floor
  // Ceiling for both fractions; 0 picks the base maintenance-class
  // fraction so the class ladder stays monotone under tuning.
  double admit_max = 0.0;
  // Hysteresis guard: this many direction flips in a row freeze the
  // node's tuner for freeze_steps quiescence epochs.
  int freeze_after_flips = 3;
  int freeze_steps = 4;

  // --- load-aware replica placement ----------------------------------
  bool place_replicas = true;
  double hot_score = 4.0;        // gauge score at/above which to place
  std::size_t max_replicas = 8;  // placement budget across the run
  int retire_after = 2;          // consecutive cold epochs before retire
  std::uint64_t seed = 0;        // placement tie-break substream key
};

// One node's epoch-aggregated load signal, collected at a quiescence
// point (mean queueing delay over the epoch plus admission sheds).
struct NodeSignal {
  std::uint32_t node = 0;
  double mean_delay = 0.0;
  std::uint64_t delay_samples = 0;
  std::uint64_t sheds = 0;
  // Queue-depth EWMA: admission only opens while this sits below the
  // degrade watermark, so sheds are never traded for degraded answers.
  double depth_ewma = 0.0;
  // Degraded answers the node issued this epoch — the goodput-delta
  // feedback. Any degradation tightens; opening requires none.
  std::uint64_t degrades = 0;
};

// The tuned per-node operating point the host must apply.
struct TuneAction {
  std::uint32_t node = 0;
  double admit_fraction = 0.0;  // query-class admit fraction
  double red_fraction = 0.0;    // RED onset fraction
};

// One candidate owner's placement gauge for an epoch. `diverts` counts
// query descents that found the owner overloaded — the demand the
// replica would absorb.
struct LoadGauge {
  std::uint32_t node = 0;
  std::uint64_t diverts = 0;
  std::uint64_t sheds = 0;
  double depth_ewma = 0.0;
};

struct PlacementPlan {
  std::vector<std::uint32_t> place;
  std::vector<std::uint32_t> retire;
};

struct ControllerStats {
  std::uint64_t window_raises = 0;
  std::uint64_t window_shrinks = 0;
  std::uint64_t tuner_steps = 0;
  std::uint64_t tuner_raises = 0;    // opened admission (underload + sheds)
  std::uint64_t tuner_tightens = 0;  // lowered thresholds (delay over target)
  std::uint64_t tuner_reverts = 0;   // idle nodes decayed toward base
  std::uint64_t tuner_freezes = 0;   // hysteresis guard firings
  std::uint64_t replicas_placed = 0;
  std::uint64_t replicas_retired = 0;

  bool operator==(const ControllerStats&) const = default;
};

class AdaptiveController {
 public:
  explicit AdaptiveController(const AdaptiveConfig& config);

  const AdaptiveConfig& config() const { return config_; }

  // --- AIMD -----------------------------------------------------------
  // Current window cap for `to`; an untracked link sits at max_window.
  std::size_t window_cap(std::uint32_t to, std::size_t max_window) const;
  // A clean (non-retransmitted credit) ack on the link; returns true
  // when a full epoch completed and the cap rose.
  bool on_clean_ack(std::uint32_t to, std::size_t max_window);
  // Timeout/breaker feedback; returns true when the cap shrank. A fresh
  // link starts its cap at max_window, so the very first loss halves it.
  bool on_link_loss(std::uint32_t to, std::size_t max_window);

  // --- gradient tuner -------------------------------------------------
  // One quiescence-point step over per-node signals against the static
  // base config. Returns the operating points the host must apply;
  // internal direction/freeze state advances here and nowhere else.
  std::vector<TuneAction> tune(const std::vector<NodeSignal>& signals,
                               const overload::OverloadConfig& base);
  bool frozen(std::uint32_t node) const;
  double target_delay_for(const overload::OverloadConfig& base) const;
  double admit_ceiling_for(const overload::OverloadConfig& base) const;

  // --- replica placement ----------------------------------------------
  // One quiescence-point placement step. Gauges must cover exactly the
  // live candidate owners: a placed owner missing from the gauges (it
  // died) is retired. Returns owners to place/retire; the internal
  // placed set advances here.
  PlacementPlan plan_placements(const std::vector<LoadGauge>& gauges);
  // Currently placed owners, sorted ascending.
  const std::vector<std::uint32_t>& placed_owners() const {
    return placed_sorted_;
  }

  const ControllerStats& stats() const { return stats_; }

  // Self-audit for the chaos oracle: every tuned operating point must
  // sit inside the configured clamps (and under the class-monotonicity
  // ceiling), every frozen node must thaw, and the placed set must fit
  // the budget. Returns human-readable violations; empty when sound.
  std::vector<std::string> violations(
      const overload::OverloadConfig& base) const;

  // Labeled gauges for the operating point: credit_window{link=...},
  // admit/red fractions per tuned node, replica_count, and the
  // controller counters.
  void export_metrics(obs::MetricsRegistry& registry,
                      std::size_t max_window) const;

 private:
  struct LinkState {
    std::size_t cap = 0;
    std::uint64_t clean_acks = 0;
  };
  struct NodeState {
    double admit = 0.0;
    double red = 0.0;
    int last_dir = 0;
    int flips = 0;
    int frozen_for = 0;
  };
  struct PlacedState {
    int cold_streak = 0;
  };

  void rebuild_placed_sorted();

  AdaptiveConfig config_;
  // Ordered maps so exports and audits iterate deterministically.
  std::map<std::uint32_t, LinkState> links_;
  std::map<std::uint32_t, NodeState> nodes_;
  std::map<std::uint32_t, PlacedState> placed_;
  std::vector<std::uint32_t> placed_sorted_;
  ControllerStats stats_;
};

}  // namespace mot::adapt
