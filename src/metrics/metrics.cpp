#include "metrics/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot {

void CostRatioAccumulator::add(Weight measured, Weight optimal) {
  MOT_EXPECTS(measured >= 0.0 && optimal >= 0.0);
  if (optimal == 0.0) {
    ++zero_optimal_;
    return;
  }
  ++count_;
  total_measured_ += measured;
  total_optimal_ += optimal;
  per_op_.add(measured / optimal);
}

double CostRatioAccumulator::aggregate_ratio() const {
  if (total_optimal_ == 0.0) return 0.0;
  return total_measured_ / total_optimal_;
}

LoadSummary summarize_load(const std::vector<std::size_t>& load_per_node,
                           std::size_t threshold) {
  LoadSummary summary;
  summary.num_nodes = load_per_node.size();
  summary.threshold = threshold;
  if (load_per_node.empty()) return summary;

  SampleSet samples;
  for (const std::size_t load : load_per_node) {
    summary.total_entries += load;
    summary.max = std::max(summary.max, load);
    if (load > threshold) ++summary.nodes_above_threshold;
    samples.add(static_cast<double>(load));
  }
  summary.mean = static_cast<double>(summary.total_entries) /
                 static_cast<double>(summary.num_nodes);
  summary.p99 = samples.quantile(0.99);
  summary.imbalance =
      summary.mean > 0.0 ? static_cast<double>(summary.max) / summary.mean
                         : 0.0;
  return summary;
}

ReliabilitySummary summarize_reliability(const ReliabilityInputs& in) {
  ReliabilitySummary summary;
  if (in.data_sent > 0) {
    summary.retransmission_rate =
        static_cast<double>(in.retransmissions) /
        static_cast<double>(in.data_sent);
  }
  const std::uint64_t received = in.acks_sent;  // one ack per reception
  if (received > 0) {
    summary.duplicate_rate =
        static_cast<double>(in.duplicates_suppressed) /
        static_cast<double>(received);
  }
  if (in.ack_rtt_count > 0) {
    summary.mean_ack_rtt =
        in.ack_rtt_sum / static_cast<double>(in.ack_rtt_count);
  }
  if (in.useful_distance > 0.0) {
    summary.transport_overhead = in.transport_distance / in.useful_distance;
    summary.recovery_overhead = in.recovery_distance / in.useful_distance;
  }
  return summary;
}

std::string load_histogram(const std::vector<std::size_t>& load_per_node) {
  Histogram histogram;
  for (const std::size_t load : load_per_node) histogram.add(load);
  return histogram.to_string();
}

}  // namespace mot
