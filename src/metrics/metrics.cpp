#include "metrics/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot {

void CostRatioAccumulator::add(Weight measured, Weight optimal) {
  MOT_EXPECTS(measured >= 0.0 && optimal >= 0.0);
  if (optimal == 0.0) {
    ++zero_optimal_;
    return;
  }
  ++count_;
  total_measured_ += measured;
  total_optimal_ += optimal;
  per_op_.add(measured / optimal);
}

double CostRatioAccumulator::aggregate_ratio() const {
  if (total_optimal_ == 0.0) return 0.0;
  return total_measured_ / total_optimal_;
}

LoadSummary summarize_load(const std::vector<std::size_t>& load_per_node,
                           std::size_t threshold) {
  LoadSummary summary;
  summary.num_nodes = load_per_node.size();
  summary.threshold = threshold;
  if (load_per_node.empty()) return summary;

  SampleSet samples;
  for (const std::size_t load : load_per_node) {
    summary.total_entries += load;
    summary.max = std::max(summary.max, load);
    if (load > threshold) ++summary.nodes_above_threshold;
    samples.add(static_cast<double>(load));
  }
  summary.mean = static_cast<double>(summary.total_entries) /
                 static_cast<double>(summary.num_nodes);
  summary.p99 = samples.quantile(0.99);
  summary.imbalance =
      summary.mean > 0.0 ? static_cast<double>(summary.max) / summary.mean
                         : 0.0;
  return summary;
}

std::string load_histogram(const std::vector<std::size_t>& load_per_node) {
  Histogram histogram;
  for (const std::size_t load : load_per_node) histogram.add(load);
  return histogram.to_string();
}

}  // namespace mot
