#include "metrics/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot {

void CostRatioAccumulator::add(Weight measured, Weight optimal) {
  MOT_EXPECTS(measured >= 0.0 && optimal >= 0.0);
  if (optimal == 0.0) {
    ++zero_optimal_;
    return;
  }
  ++count_;
  total_measured_ += measured;
  total_optimal_ += optimal;
  per_op_.add(measured / optimal);
}

double CostRatioAccumulator::aggregate_ratio() const {
  if (total_optimal_ == 0.0) return 0.0;
  return total_measured_ / total_optimal_;
}

LoadSummary summarize_load(const std::vector<std::size_t>& load_per_node,
                           std::size_t threshold) {
  LoadSummary summary;
  summary.num_nodes = load_per_node.size();
  summary.threshold = threshold;
  if (load_per_node.empty()) return summary;

  SampleSet samples;
  for (const std::size_t load : load_per_node) {
    summary.total_entries += load;
    summary.max = std::max(summary.max, load);
    if (load > threshold) ++summary.nodes_above_threshold;
    samples.add(static_cast<double>(load));
  }
  summary.mean = static_cast<double>(summary.total_entries) /
                 static_cast<double>(summary.num_nodes);
  summary.p99 = samples.quantile(0.99);
  summary.imbalance =
      summary.mean > 0.0 ? static_cast<double>(summary.max) / summary.mean
                         : 0.0;
  return summary;
}

ReliabilitySummary summarize_reliability(const ReliabilityInputs& in) {
  ReliabilitySummary summary;
  if (in.data_sent > 0) {
    summary.retransmission_rate =
        static_cast<double>(in.retransmissions) /
        static_cast<double>(in.data_sent);
  }
  const std::uint64_t received = in.acks_sent;  // one ack per reception
  if (received > 0) {
    summary.duplicate_rate =
        static_cast<double>(in.duplicates_suppressed) /
        static_cast<double>(received);
  }
  if (in.ack_rtt_count > 0) {
    summary.mean_ack_rtt =
        in.ack_rtt_sum / static_cast<double>(in.ack_rtt_count);
  }
  if (in.useful_distance > 0.0) {
    summary.transport_overhead = in.transport_distance / in.useful_distance;
    summary.recovery_overhead = in.recovery_distance / in.useful_distance;
  }
  if (in.channel_copies_created > 0) {
    summary.channel_delivery_rate =
        static_cast<double>(in.channel_delivered) /
        static_cast<double>(in.channel_copies_created);
  }
  summary.channel_conserved =
      in.channel_copies_created == in.channel_delivered + in.channel_dropped +
                                       in.channel_lost_other +
                                       in.channel_in_flight;
  return summary;
}

OverloadSummary summarize_overload(const OverloadInputs& in) {
  MOT_EXPECTS(in.queries_degraded <= in.queries_answered);
  MOT_EXPECTS(in.admitted + in.shed <= in.arrivals);
  OverloadSummary summary;
  if (in.queries_issued > 0) {
    summary.goodput =
        static_cast<double>(in.queries_answered - in.queries_degraded) /
        static_cast<double>(in.queries_issued);
  }
  if (in.arrivals > 0) {
    summary.shed_rate =
        static_cast<double>(in.shed) / static_cast<double>(in.arrivals);
  }
  if (in.queries_answered > 0) {
    summary.degraded_fraction =
        static_cast<double>(in.queries_degraded) /
        static_cast<double>(in.queries_answered);
  }
  if (in.queue_delays.count() > 0) {
    summary.mean_queue_delay = in.queue_delays.mean();
    summary.p99_queue_delay = in.queue_delays.quantile(0.99);
  }
  return summary;
}

std::string load_histogram(const std::vector<std::size_t>& load_per_node) {
  Histogram histogram;
  for (const std::size_t load : load_per_node) histogram.add(load);
  return histogram.to_string();
}

namespace {

void set_counter(obs::MetricsRegistry& registry, const std::string& name,
                 const obs::Labels& labels, std::uint64_t value) {
  obs::Counter& counter = registry.counter(name, labels);
  counter.reset();
  counter.increment(value);
}

}  // namespace

void export_load(const std::vector<std::size_t>& load_per_node,
                 obs::MetricsRegistry& registry, const obs::Labels& labels,
                 std::size_t threshold) {
  const LoadSummary summary = summarize_load(load_per_node, threshold);
  registry.gauge("mot_load_mean", labels).set(summary.mean);
  registry.gauge("mot_load_max", labels)
      .set(static_cast<double>(summary.max));
  registry.gauge("mot_load_p99", labels).set(summary.p99);
  registry.gauge("mot_load_imbalance", labels).set(summary.imbalance);
  set_counter(registry, "mot_load_entries_total", labels,
              summary.total_entries);
  set_counter(registry, "mot_load_nodes_above_threshold", labels,
              summary.nodes_above_threshold);
  // Histograms accumulate, so only the first export fills the
  // distribution; callers wanting per-run series should add a
  // distinguishing label.
  static const std::vector<double> kBounds = {0.0,  1.0,  2.0,  5.0,
                                              10.0, 20.0, 50.0, 100.0};
  obs::FixedHistogram& histogram =
      registry.histogram("mot_load_per_node", kBounds, labels);
  if (histogram.count() == 0) {
    for (const std::size_t load : load_per_node) {
      histogram.observe(static_cast<double>(load));
    }
  }
}

void export_reliability(const ReliabilityInputs& in,
                        obs::MetricsRegistry& registry,
                        const obs::Labels& labels) {
  set_counter(registry, "mot_data_sent_total", labels, in.data_sent);
  set_counter(registry, "mot_retransmissions_total", labels,
              in.retransmissions);
  set_counter(registry, "mot_acks_sent_total", labels, in.acks_sent);
  set_counter(registry, "mot_duplicates_suppressed_total", labels,
              in.duplicates_suppressed);
  registry.gauge("mot_useful_distance", labels).set(in.useful_distance);
  registry.gauge("mot_transport_distance", labels)
      .set(in.transport_distance);
  registry.gauge("mot_recovery_distance", labels).set(in.recovery_distance);
  set_counter(registry, "mot_channel_copies_total", labels,
              in.channel_copies_created);
  set_counter(registry, "mot_channel_delivered_total", labels,
              in.channel_delivered);
  set_counter(registry, "mot_channel_dropped_total", labels,
              in.channel_dropped);
  set_counter(registry, "mot_channel_lost_other_total", labels,
              in.channel_lost_other);
  const ReliabilitySummary summary = summarize_reliability(in);
  registry.gauge("mot_retransmission_rate", labels)
      .set(summary.retransmission_rate);
  registry.gauge("mot_duplicate_rate", labels).set(summary.duplicate_rate);
  registry.gauge("mot_mean_ack_rtt", labels).set(summary.mean_ack_rtt);
  registry.gauge("mot_transport_overhead", labels)
      .set(summary.transport_overhead);
  registry.gauge("mot_recovery_overhead", labels)
      .set(summary.recovery_overhead);
  registry.gauge("mot_channel_delivery_rate", labels)
      .set(summary.channel_delivery_rate);
  registry.gauge("mot_channel_conserved", labels)
      .set(summary.channel_conserved ? 1.0 : 0.0);
}

void export_overload(const OverloadInputs& in,
                     obs::MetricsRegistry& registry,
                     const obs::Labels& labels) {
  set_counter(registry, "mot_overload_queries_issued_total", labels,
              in.queries_issued);
  set_counter(registry, "mot_overload_queries_answered_total", labels,
              in.queries_answered);
  set_counter(registry, "mot_overload_queries_degraded_total", labels,
              in.queries_degraded);
  set_counter(registry, "mot_overload_arrivals_total", labels, in.arrivals);
  set_counter(registry, "mot_overload_admitted_total", labels, in.admitted);
  set_counter(registry, "mot_overload_shed_total", labels, in.shed);
  set_counter(registry, "mot_overload_breaker_trips_total", labels,
              in.breaker_trips);
  set_counter(registry, "mot_overload_credit_stalls_total", labels,
              in.credit_stalls);
  registry.gauge("mot_overload_max_queue_depth", labels)
      .set(static_cast<double>(in.max_queue_depth));
  const OverloadSummary summary = summarize_overload(in);
  registry.gauge("mot_overload_goodput", labels).set(summary.goodput);
  registry.gauge("mot_overload_shed_rate", labels).set(summary.shed_rate);
  registry.gauge("mot_overload_degraded_fraction", labels)
      .set(summary.degraded_fraction);
  registry.gauge("mot_overload_mean_queue_delay", labels)
      .set(summary.mean_queue_delay);
  registry.gauge("mot_overload_p99_queue_delay", labels)
      .set(summary.p99_queue_delay);
}

}  // namespace mot
