// Experiment metrics: cost-ratio accumulation and per-node load summaries,
// matching how the paper reports results.
//
// Maintenance cost ratio (Section 1.1): total tracker cost over a set of
// operations divided by the total optimal cost (sum of dist_G(from, to)).
// Query cost ratio: same aggregate, plus the per-operation distribution
// (each query is individually near-optimal — Theorem 4.11).
// Load (Section 5 / Figs. 8-11): objects + bookkeeping entries stored per
// physical node.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics_registry.hpp"
#include "util/stats.hpp"

namespace mot {

class CostRatioAccumulator {
 public:
  // Records one operation. Operations with zero optimal cost (query for a
  // co-located object) are tracked separately and excluded from ratios.
  void add(Weight measured, Weight optimal);

  std::size_t count() const { return count_; }
  std::size_t zero_optimal_count() const { return zero_optimal_; }
  Weight total_measured() const { return total_measured_; }
  Weight total_optimal() const { return total_optimal_; }

  // Aggregate ratio: sum(measured) / sum(optimal).
  double aggregate_ratio() const;

  // Distribution of per-operation ratios.
  const SampleSet& per_op_ratios() const { return per_op_; }

 private:
  std::size_t count_ = 0;
  std::size_t zero_optimal_ = 0;
  Weight total_measured_ = 0.0;
  Weight total_optimal_ = 0.0;
  SampleSet per_op_;
};

struct LoadSummary {
  std::size_t num_nodes = 0;
  std::size_t total_entries = 0;
  double mean = 0.0;
  std::size_t max = 0;
  double p99 = 0.0;
  // The paper's headline figure: nodes storing more than `threshold`
  // entries (threshold 10 in Figs. 8-11).
  std::size_t nodes_above_threshold = 0;
  std::size_t threshold = 10;
  // Imbalance: max / mean (1.0 = perfectly even).
  double imbalance = 0.0;
};

LoadSummary summarize_load(const std::vector<std::size_t>& load_per_node,
                           std::size_t threshold = 10);

// Full histogram string (bin = load value, count = number of nodes).
std::string load_histogram(const std::vector<std::size_t>& load_per_node);

// Reliable-transport accounting (src/faults + the proto link layer).
// Takes plain counters rather than a ProtocolStats so metrics stays
// independent of the protocol layer.
struct ReliabilityInputs {
  std::uint64_t data_sent = 0;              // logical inter-node frames
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
  double ack_rtt_sum = 0.0;
  std::uint64_t ack_rtt_count = 0;
  Weight useful_distance = 0.0;    // distance charged to operations
  Weight transport_distance = 0.0;  // retransmit + ack distance
  Weight recovery_distance = 0.0;   // crash-repair distance
  // Channel-side copy ledger (faults::ChannelStats). The channel mints
  // one copy per accepted transmission plus one per duplication; every
  // copy resolves exactly once (delivered, dropped, lost to a crash or
  // partition, or still in flight). Keeping creations and resolutions as
  // separate counters is what makes duplicated-then-dropped copies
  // impossible to double-count.
  std::uint64_t channel_copies_created = 0;
  std::uint64_t channel_delivered = 0;
  std::uint64_t channel_dropped = 0;
  std::uint64_t channel_lost_other = 0;  // dead-on-arrival + severed
  std::uint64_t channel_in_flight = 0;
};

struct ReliabilitySummary {
  // Fraction of DATA frames that needed at least the first resend:
  // retransmissions / data_sent (> 1.0 possible under heavy loss).
  double retransmission_rate = 0.0;
  // Fraction of received frames discarded by dedup.
  double duplicate_rate = 0.0;
  double mean_ack_rtt = 0.0;
  // Distance overhead of reliability relative to useful protocol work.
  double transport_overhead = 0.0;
  double recovery_overhead = 0.0;
  // Fraction of channel copies that reached their receiver.
  double channel_delivery_rate = 0.0;
  // The conservation identity: created == delivered + dropped +
  // lost_other + in_flight. Vacuously true with no channel traffic;
  // false means the channel (or the caller's bookkeeping) leaked or
  // double-counted a copy.
  bool channel_conserved = true;
};

ReliabilitySummary summarize_reliability(const ReliabilityInputs& in);

// Overload-resilience accounting (src/overload + the per-node service
// model). Plain counters again so metrics stays independent of the
// protocol and sim layers; queue delays arrive as raw samples so callers
// choose the quantiles.
struct OverloadInputs {
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_answered = 0;   // terminated with found == true
  std::uint64_t queries_degraded = 0;   // subset of answered
  std::uint64_t arrivals = 0;           // messages offered to service queues
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;               // all shed reasons combined
  std::uint64_t breaker_trips = 0;
  std::uint64_t credit_stalls = 0;
  std::size_t max_queue_depth = 0;
  SampleSet queue_delays;               // admission -> service start
};

struct OverloadSummary {
  // Fraction of issued queries answered at full fidelity (found and not
  // degraded). The resilience headline: stays near 1.0 at 1x capacity
  // and degrades gracefully - not to zero - at 4x and 8x.
  double goodput = 0.0;
  // Fraction of offered messages refused admission.
  double shed_rate = 0.0;
  // Fraction of answered queries that came back degraded.
  double degraded_fraction = 0.0;
  double mean_queue_delay = 0.0;
  double p99_queue_delay = 0.0;
};

OverloadSummary summarize_overload(const OverloadInputs& in);

// Registry bridges (see obs/metrics_registry.hpp): project a snapshot of
// the plain structs above into named instruments. Idempotent — counters
// are reset before being set, so re-exporting does not double-count.
void export_load(const std::vector<std::size_t>& load_per_node,
                 obs::MetricsRegistry& registry,
                 const obs::Labels& labels = {}, std::size_t threshold = 10);

void export_reliability(const ReliabilityInputs& in,
                        obs::MetricsRegistry& registry,
                        const obs::Labels& labels = {});

void export_overload(const OverloadInputs& in,
                     obs::MetricsRegistry& registry,
                     const obs::Labels& labels = {});

}  // namespace mot
