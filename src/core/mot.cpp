#include "core/mot.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot {

MotPathProvider::MotPathProvider(const Hierarchy& hierarchy,
                                 const MotOptions& options)
    : hierarchy_(&hierarchy), options_(options) {
  MOT_EXPECTS(options.special_parent_offset >= 1 ||
              !options.use_special_parents);
}

std::span<const PathStop> MotPathProvider::upward_sequence(NodeId u) const {
  MOT_EXPECTS(u < num_nodes());
  auto it = sequence_cache_.find(u);
  if (it == sequence_cache_.end()) {
    std::vector<PathStop> sequence;
    sequence.push_back({{0, u}, 0});
    for (int level = 1; level <= hierarchy_->height(); ++level) {
      if (options_.use_parent_sets) {
        const auto group = hierarchy_->group(u, level);
        for (std::uint32_t rank = 0; rank < group.size(); ++rank) {
          sequence.push_back({{level, group[rank]}, rank});
        }
      } else {
        sequence.push_back({{level, hierarchy_->primary(u, level)}, 0});
      }
    }
    it = sequence_cache_.emplace(u, std::move(sequence)).first;
  }
  return it->second;
}

std::optional<OverlayNode> MotPathProvider::special_parent(
    NodeId u, std::size_t index) const {
  if (!options_.use_special_parents) return std::nullopt;
  const auto sequence = upward_sequence(u);
  MOT_EXPECTS(index < sequence.size());
  const PathStop& stop = sequence[index];
  const int sp_level = stop.node.level + options_.special_parent_offset;
  if (sp_level > hierarchy_->height()) return std::nullopt;
  if (options_.use_parent_sets) {
    const auto group = hierarchy_->group(u, sp_level);
    return OverlayNode{sp_level,
                       group[stop.rank % static_cast<std::uint32_t>(
                                             group.size())]};
  }
  return OverlayNode{sp_level, hierarchy_->primary(u, sp_level)};
}

const ClusterEmbedding& MotPathProvider::embedding(OverlayNode owner) const {
  auto it = embedding_cache_.find(owner);
  if (it == embedding_cache_.end()) {
    const auto members = hierarchy_->cluster(owner.level, owner.node);
    MOT_CHECK(!members.empty());
    const SeedTree seeds(options_.seed);
    const std::uint64_t salt = seeds.seed_for(
        "cluster-hash",
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner.level))
         << 32) |
            owner.node);
    it = embedding_cache_
             .emplace(owner, ClusterEmbedding(
                                 std::vector<NodeId>(members.begin(),
                                                     members.end()),
                                 salt))
             .first;
  }
  return it->second;
}

PathProvider::DelegateAccess MotPathProvider::delegate(
    OverlayNode owner, ObjectId object) const {
  if (!options_.load_balance || owner.level == 0) {
    return {owner.node, 0.0};
  }
  const ClusterEmbedding& cluster = embedding(owner);
  const std::uint32_t target = cluster.label_for_key(object);
  const NodeId storage = cluster.host(target);
  if (storage == owner.node) return {storage, 0.0};

  const DistanceOracle& dist = hierarchy_->oracle();
  if (!options_.charge_debruijn_routing) {
    return {storage, dist.distance(owner.node, storage)};
  }
  // The route (and its summed oracle cost) depends only on the owner and
  // the target label, so compute it once and replay from the cache on
  // every later access to this delegate.
  std::vector<CachedRoute>& slots = route_cache_[owner];
  if (slots.empty()) slots.resize(cluster.size());
  CachedRoute& slot = slots[target];
  if (!slot.filled) {
    const std::int64_t from = cluster.label_of(owner.node);
    MOT_CHECK(from >= 0);  // the center is always a member of its cluster
    slot.hops = cluster.route_hops(static_cast<std::uint32_t>(from), target);
    slot.cost = 0.0;
    for (std::size_t i = 1; i < slot.hops.size(); ++i) {
      slot.cost += dist.distance(slot.hops[i - 1], slot.hops[i]);
    }
    slot.storage = storage;
    slot.filled = true;
  }
  if (obs::tracing()) {
    // Cached and fresh lookups must trace identically: re-emit the
    // per-hop kRouteHop events and the summary here rather than inside
    // ClusterEmbedding::route.
    for (std::size_t i = 1; i < slot.hops.size(); ++i) {
      obs::emit({.type = obs::Ev::kRouteHop,
                 .from = slot.hops[i - 1],
                 .to = slot.hops[i],
                 .aux = i});
    }
    obs::emit({.type = obs::Ev::kRouteComputed,
               .object = object,
               .from = owner.node,
               .to = storage,
               .level = owner.level,
               .dist = slot.cost,
               .aux = slot.hops.empty() ? 0 : slot.hops.size() - 1});
  }
  return {storage, slot.cost};
}

OverlayNode MotPathProvider::root_stop() const {
  return {hierarchy_->height(), hierarchy_->root()};
}

ChainOptions make_mot_chain_options(const MotOptions& options) {
  ChainOptions chain;
  chain.use_special_lists = options.use_special_parents;
  chain.shortcut_descent = false;
  chain.charge_delegate_routing = true;
  chain.charge_special_updates = options.charge_special_updates;
  return chain;
}

std::string make_mot_name(const MotOptions& options) {
  std::string name = "MOT";
  if (options.load_balance) name += "-LB";
  if (!options.use_parent_sets) name += "(no-psets)";
  if (!options.use_special_parents) name += "(no-sp)";
  return name;
}

MotTracker::MotTracker(const Hierarchy& hierarchy, const MotOptions& options)
    : provider_(hierarchy, options),
      chain_(make_mot_name(options), provider_,
             make_mot_chain_options(options)) {}

}  // namespace mot
