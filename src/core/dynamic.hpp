// Section 7: adapting MOT's load-balancing clusters to nodes joining and
// leaving the network.
//
// Each internal node of the hierarchy carries a cluster with an embedded
// de Bruijn graph (Section 5). When a sensor joins or leaves, every
// cluster containing it relabels per the Section 7 scheme: O(1) member
// updates per event, except when the member count crosses a power of two
// and the de Bruijn dimension changes, which touches the whole cluster —
// amortized O(1) per cluster over any event sequence. A leaving leader
// hands leadership to another member, which is announced cluster-wide.
//
// DynamicClusterSet applies event sequences and reports the adaptability
// (nodes updated), plus the rebuild-threshold bookkeeping the paper
// sketches (rebuild when a cluster drifts too far from its nominal size).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "debruijn/debruijn.hpp"
#include "hier/hierarchy.hpp"

namespace mot {

struct AdaptabilityReport {
  std::size_t clusters_affected = 0;
  std::size_t nodes_updated = 0;      // de Bruijn relabeling updates
  std::size_t leader_handoffs = 0;    // leaving node led a cluster
  std::size_t handoff_broadcasts = 0; // members informed of new leaders
  // Crash-stop only: survivors notified of an unannounced failure.
  std::size_t failure_notifications = 0;
};

class DynamicClusterSet {
 public:
  struct Params {
    std::uint64_t seed = 1;
    // Rebuild a cluster's embedding when its size drifts beyond this
    // factor of the size it was built with (the paper's threshold).
    double rebuild_factor = 2.0;
  };

  // Materializes the cluster embeddings of every internal node at levels
  // 1..height of `hierarchy`.
  DynamicClusterSet(const Hierarchy& hierarchy, const Params& params);

  AdaptabilityReport node_joins(NodeId node);
  AdaptabilityReport node_leaves(NodeId node);

  // Crash-stop departure: structurally a leave, but nothing is announced
  // by the node itself — each affected cluster's survivors must be told
  // of the failure first (counted as failure_notifications).
  AdaptabilityReport node_crashes(NodeId node);

  std::size_t num_clusters() const { return clusters_.size(); }
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t crash_events() const { return crashes_; }

  // Mean nodes updated per event so far (the amortized adaptability).
  double amortized_updates() const;

  // Mean nodes updated per affected cluster — the Section 7 O(1) bound.
  double amortized_updates_per_cluster() const;

  // True if `node` currently belongs to the cluster of `center`.
  bool cluster_contains(OverlayNode center, NodeId node) const;

  // Non-aborting audit of the membership index against the embeddings:
  // every embedded member must be indexed and every indexed entry must
  // be valid. Returns one line per violation (empty = consistent). The
  // chaos churn driver runs this after every join/leave/crash burst.
  std::vector<std::string> validate_membership() const;

 private:
  struct ManagedCluster {
    OverlayNode center;
    ClusterEmbedding embedding;
    NodeId leader;
    std::size_t nominal_size;
  };

  void maybe_rebuild(ManagedCluster& cluster);

  Params params_;
  std::vector<ManagedCluster> clusters_;
  // node -> indices of clusters containing it
  std::unordered_map<NodeId, std::vector<std::size_t>> membership_;
  std::size_t events_ = 0;
  std::size_t total_updates_ = 0;
  std::size_t total_cluster_events_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t crashes_ = 0;
};

}  // namespace mot
