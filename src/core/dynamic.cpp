#include "core/dynamic.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot {

DynamicClusterSet::DynamicClusterSet(const Hierarchy& hierarchy,
                                     const Params& params)
    : params_(params) {
  const SeedTree seeds(params.seed);
  for (int level = 1; level <= hierarchy.height(); ++level) {
    for (const NodeId center : hierarchy.members(level)) {
      const auto members = hierarchy.cluster(level, center);
      const std::uint64_t salt = seeds.seed_for(
          "dyn-cluster",
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level))
           << 32) |
              center);
      const std::size_t index = clusters_.size();
      clusters_.push_back(
          {{level, center},
           ClusterEmbedding(std::vector<NodeId>(members.begin(),
                                                members.end()),
                            salt),
           center,
           members.size()});
      for (const NodeId member : members) {
        membership_[member].push_back(index);
      }
    }
  }
}

void DynamicClusterSet::maybe_rebuild(ManagedCluster& cluster) {
  const double size = static_cast<double>(cluster.embedding.size());
  const double nominal = static_cast<double>(cluster.nominal_size);
  if (size > nominal * params_.rebuild_factor ||
      size < nominal / params_.rebuild_factor) {
    // Past the drift threshold the paper suggests rebuilding from
    // scratch: re-embed with the current membership as the new nominal.
    cluster.nominal_size = cluster.embedding.size();
    ++rebuilds_;
  }
}

AdaptabilityReport DynamicClusterSet::node_joins(NodeId node) {
  AdaptabilityReport report;
  ++events_;
  // A joining sensor enters the clusters it is covered by; without a live
  // hierarchy rebuild we attach it to the clusters of its position —
  // here, every cluster it previously left or (for fresh nodes) none.
  auto& indices = membership_[node];
  for (const std::size_t index : indices) {
    ManagedCluster& cluster = clusters_[index];
    if (cluster.embedding.label_of(node) >= 0) continue;  // already present
    ++report.clusters_affected;
    report.nodes_updated += cluster.embedding.add_member(node);
    maybe_rebuild(cluster);
  }
  total_updates_ += report.nodes_updated;
  total_cluster_events_ += report.clusters_affected;
  return report;
}

AdaptabilityReport DynamicClusterSet::node_leaves(NodeId node) {
  AdaptabilityReport report;
  ++events_;
  const auto it = membership_.find(node);
  if (it == membership_.end()) return report;
  for (const std::size_t index : it->second) {
    ManagedCluster& cluster = clusters_[index];
    if (cluster.embedding.label_of(node) < 0) continue;  // already gone
    if (cluster.embedding.size() <= 1) continue;  // last member stays put
    ++report.clusters_affected;
    report.nodes_updated += cluster.embedding.remove_member(node);
    if (cluster.leader == node) {
      // Leadership passes to the lowest-labeled surviving member and is
      // announced to the whole cluster (Section 7).
      cluster.leader = cluster.embedding.members().front();
      ++report.leader_handoffs;
      report.handoff_broadcasts += cluster.embedding.size();
    }
    maybe_rebuild(cluster);
  }
  total_updates_ += report.nodes_updated;
  total_cluster_events_ += report.clusters_affected;
  return report;
}

AdaptabilityReport DynamicClusterSet::node_crashes(NodeId node) {
  // Survivors must learn of the unannounced failure before relabeling:
  // count one notification per remaining member of each affected cluster.
  std::size_t notifications = 0;
  const auto it = membership_.find(node);
  if (it != membership_.end()) {
    for (const std::size_t index : it->second) {
      const ManagedCluster& cluster = clusters_[index];
      if (cluster.embedding.label_of(node) < 0) continue;
      if (cluster.embedding.size() <= 1) continue;
      notifications += cluster.embedding.size() - 1;
    }
  }
  AdaptabilityReport report = node_leaves(node);
  report.failure_notifications = notifications;
  ++crashes_;
  return report;
}

double DynamicClusterSet::amortized_updates() const {
  if (events_ == 0) return 0.0;
  return static_cast<double>(total_updates_) /
         static_cast<double>(events_);
}

double DynamicClusterSet::amortized_updates_per_cluster() const {
  if (total_cluster_events_ == 0) return 0.0;
  return static_cast<double>(total_updates_) /
         static_cast<double>(total_cluster_events_);
}

std::vector<std::string> DynamicClusterSet::validate_membership() const {
  std::vector<std::string> out;
  for (std::size_t index = 0; index < clusters_.size(); ++index) {
    for (const NodeId member : clusters_[index].embedding.members()) {
      const auto it = membership_.find(member);
      const bool indexed =
          it != membership_.end() &&
          std::find(it->second.begin(), it->second.end(), index) !=
              it->second.end();
      if (!indexed) {
        out.push_back("node " + std::to_string(member) +
                      " embedded in cluster " + std::to_string(index) +
                      " but missing from the membership index");
      }
    }
    const ManagedCluster& cluster = clusters_[index];
    if (cluster.embedding.size() > 0 &&
        cluster.embedding.label_of(cluster.leader) < 0) {
      out.push_back("cluster " + std::to_string(index) +
                    " led by node " + std::to_string(cluster.leader) +
                    " which is not a member");
    }
  }
  for (const auto& [node, indices] : membership_) {
    for (const std::size_t index : indices) {
      if (index >= clusters_.size()) {
        out.push_back("node " + std::to_string(node) +
                      " indexed into nonexistent cluster " +
                      std::to_string(index));
      }
    }
    if (std::unordered_set<std::size_t>(indices.begin(), indices.end())
            .size() != indices.size()) {
      out.push_back("node " + std::to_string(node) +
                    " has duplicate membership entries");
    }
  }
  return out;
}

bool DynamicClusterSet::cluster_contains(OverlayNode center,
                                         NodeId node) const {
  for (const auto& cluster : clusters_) {
    if (cluster.center == center) {
      return cluster.embedding.label_of(node) >= 0;
    }
  }
  return false;
}

}  // namespace mot
