#include "core/concurrent.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

namespace {

std::uint64_t waiter_key(NodeId node, ObjectId object) {
  return (static_cast<std::uint64_t>(node) << 32) | object;
}

// Generous bound on climb restarts per query: each restart is caused by a
// concurrently torn fragment, and per-object concurrency is bounded.
constexpr int kMaxQueryRestarts = 1000;

}  // namespace

struct ConcurrentEngine::MoveCtx {
  ObjectId object = 0;
  NodeId to = kInvalidNode;
  std::span<const PathStop> sequence;
  std::size_t index = 0;       // stop currently being probed
  std::size_t meet_index = 0;  // candidate meet stop
  bool waiting_token = false;
  Weight cost = 0.0;
  int peak_level = 0;
  MoveCallback done;
};

struct ConcurrentEngine::QueryCtx {
  ObjectId object = 0;
  NodeId origin = kInvalidNode;
  NodeId climb_source = kInvalidNode;
  std::span<const PathStop> sequence;
  std::size_t index = 0;
  Weight cost = 0.0;
  int found_level = 0;
  int restarts = 0;
  QueryCallback done;
};

ConcurrentEngine::ConcurrentEngine(const PathProvider& provider,
                                   Simulator& sim,
                                   const ChainOptions& options)
    : provider_(&provider), sim_(&sim), options_(options) {}

ConcurrentEngine::~ConcurrentEngine() = default;

Weight ConcurrentEngine::distance(NodeId a, NodeId b) const {
  return a == b ? 0.0 : provider_->oracle().distance(a, b);
}

void ConcurrentEngine::charge(Weight amount, Weight* op_cost, ObjectId object,
                              obs::Ev kind, NodeId from, NodeId to) {
  if (amount <= 0.0) return;
  meter_.charge(amount);
  if (op_cost != nullptr) *op_cost += amount;
  if (obs::tracing()) {
    obs::emit({.type = kind,
               .t = sim_->now(),
               .object = object,
               .from = from,
               .to = to,
               .dist = amount,
               .charged = amount});
  }
}

void ConcurrentEngine::charge_access(OverlayNode owner, ObjectId object,
                                     Weight* op_cost) {
  if (!options_.charge_delegate_routing) return;
  const auto access = provider_->delegate(owner, object);
  charge(access.route_cost, op_cost, object, obs::Ev::kAccessRoute, owner.node,
         access.storage);
}

const ConcurrentEngine::Entry* ConcurrentEngine::find_entry(
    OverlayNode owner, ObjectId object) const {
  const auto node_it = state_.find(owner);
  if (node_it == state_.end()) return nullptr;
  const auto dl_it = node_it->second.dl.find(object);
  return dl_it == node_it->second.dl.end() ? nullptr : &dl_it->second;
}

ConcurrentEngine::Entry* ConcurrentEngine::find_entry(OverlayNode owner,
                                                      ObjectId object) {
  return const_cast<Entry*>(
      static_cast<const ConcurrentEngine*>(this)->find_entry(owner, object));
}

void ConcurrentEngine::install_entry(OverlayNode owner, ObjectId object,
                                     OverlayNode child,
                                     std::optional<OverlayNode> sp,
                                     Weight* op_cost) {
  if (!options_.use_special_lists) sp.reset();
  NodeState& node = state_[owner];
  node.forwards.erase(object);  // a live entry supersedes any old pointer
  MOT_CHECK(node.dl.count(object) == 0);
  node.dl.emplace(object, Entry{next_entry_id_++, child, sp});
  if (sp) {
    if (options_.charge_special_updates) {
      charge(distance(owner.node, sp->node), op_cost, object, obs::Ev::kSpHop,
             owner.node, sp->node);
      charge_access(*sp, object, op_cost);
    }
    state_[*sp].sdl[object].push_back(owner);
  }
}

void ConcurrentEngine::erase_entry(OverlayNode owner, ObjectId object,
                                   Weight* op_cost) {
  auto node_it = state_.find(owner);
  MOT_CHECK(node_it != state_.end());
  auto dl_it = node_it->second.dl.find(object);
  MOT_CHECK(dl_it != node_it->second.dl.end());
  const Entry entry = dl_it->second;
  node_it->second.dl.erase(dl_it);
  if (options_.forwarding_pointers && erase_forward_hint_ != kInvalidNode) {
    // Section 3's improvement: the delete leaves the object's new
    // location behind, so a torn-descent query redirects on the spot.
    node_it->second.forwards[object] = erase_forward_hint_;
  }
  if (entry.sp) {
    if (options_.charge_special_updates) {
      charge(distance(owner.node, entry.sp->node), op_cost, object,
             obs::Ev::kSpHop, owner.node, entry.sp->node);
      charge_access(*entry.sp, object, op_cost);
    }
    auto sp_it = state_.find(*entry.sp);
    MOT_CHECK(sp_it != state_.end());
    auto sdl_it = sp_it->second.sdl.find(object);
    MOT_CHECK(sdl_it != sp_it->second.sdl.end());
    const auto pos =
        std::find(sdl_it->second.begin(), sdl_it->second.end(), owner);
    MOT_CHECK(pos != sdl_it->second.end());
    sdl_it->second.erase(pos);
    if (sdl_it->second.empty()) sp_it->second.sdl.erase(sdl_it);
  }
}

void ConcurrentEngine::publish(ObjectId object, NodeId proxy) {
  MOT_EXPECTS(physical_.count(object) == 0);
  const auto sequence = provider_->upward_sequence(proxy);
  const OverlayNode bottom = sequence.front().node;
  charge_access(bottom, object, nullptr);
  install_entry(bottom, object, bottom, provider_->special_parent(proxy, 0),
                nullptr);
  OverlayNode previous = bottom;
  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const OverlayNode stop = sequence[i].node;
    charge(distance(previous.node, stop.node), nullptr, object,
           obs::Ev::kClimbHop, previous.node, stop.node);
    charge_access(stop, object, nullptr);
    install_entry(stop, object, previous,
                  provider_->special_parent(proxy, i), nullptr);
    previous = stop;
  }
  physical_[object] = proxy;
}

NodeId ConcurrentEngine::physical_position(ObjectId object) const {
  const auto it = physical_.find(object);
  MOT_EXPECTS(it != physical_.end());
  return it->second;
}

// ---------------------------------------------------------------------------
// Moves
// ---------------------------------------------------------------------------

bool ConcurrentEngine::holds_token(const MoveCtx& ctx) const {
  const auto it = move_queues_.find(ctx.object);
  MOT_CHECK(it != move_queues_.end() && !it->second.empty());
  return it->second.front().get() == &ctx;
}

void ConcurrentEngine::start_move(ObjectId object, NodeId new_proxy,
                                  MoveCallback done) {
  MOT_EXPECTS(physical_.count(object) != 0);
  MOT_EXPECTS(new_proxy < provider_->num_nodes());
  if (physical_[object] == new_proxy) {
    if (done) {
      sim_->schedule(0.0, [done = std::move(done)] { done(MoveResult{}); });
    }
    return;
  }
  physical_[object] = new_proxy;

  auto ctx = std::make_shared<MoveCtx>();
  ctx->object = object;
  ctx->to = new_proxy;
  ctx->sequence = provider_->upward_sequence(new_proxy);
  ctx->done = std::move(done);
  move_queues_[object].push_back(ctx);
  ++inflight_;
  // The insert message originates at the new proxy: probe stop 0 now.
  sim_->schedule(0.0, [this, ctx] { move_step(ctx); });
}

void ConcurrentEngine::move_step(const std::shared_ptr<MoveCtx>& ctx) {
  // Arrival at sequence[index]: look for the chain.
  const OverlayNode stop = ctx->sequence[ctx->index].node;
  charge_access(stop, ctx->object, &ctx->cost);
  if (find_entry(stop, ctx->object) != nullptr) {
    ctx->meet_index = ctx->index;
    move_candidate_meet(ctx);
    return;
  }
  // The root stop always holds every published object.
  MOT_CHECK(ctx->index + 1 < ctx->sequence.size());
  const OverlayNode next = ctx->sequence[ctx->index + 1].node;
  charge(distance(stop.node, next.node), &ctx->cost, ctx->object,
         obs::Ev::kClimbHop, stop.node, next.node);
  ++ctx->index;
  sim_->schedule(distance(stop.node, next.node),
                 [this, ctx] { move_step(ctx); });
}

void ConcurrentEngine::move_candidate_meet(
    const std::shared_ptr<MoveCtx>& ctx) {
  if (!holds_token(*ctx)) {
    // An earlier move of this object is still in flight; its delete might
    // tear the entry we just found. Park until we hold the token.
    ctx->waiting_token = true;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kTokenWait,
                 .t = sim_->now(),
                 .object = ctx->object,
                 .from = ctx->sequence[ctx->meet_index].node.node,
                 .level = ctx->sequence[ctx->meet_index].node.level});
    }
    return;
  }
  // Token held: state for this object is now stable (earlier moves are
  // fully done, later ones cannot mutate). Re-verify the meet.
  if (find_entry(ctx->sequence[ctx->meet_index].node, ctx->object) ==
      nullptr) {
    ++stats_.meet_rechecks_failed;
    // Resume climbing from the vanished meet stop.
    MOT_CHECK(ctx->meet_index + 1 < ctx->sequence.size());
    const OverlayNode from = ctx->sequence[ctx->meet_index].node;
    const OverlayNode next = ctx->sequence[ctx->meet_index + 1].node;
    ctx->index = ctx->meet_index + 1;
    charge(distance(from.node, next.node), &ctx->cost, ctx->object,
           obs::Ev::kClimbHop, from.node, next.node);
    sim_->schedule(distance(from.node, next.node),
                   [this, ctx] { move_step(ctx); });
    return;
  }
  move_commit(ctx);
}

void ConcurrentEngine::move_commit(const std::shared_ptr<MoveCtx>& ctx) {
  const ObjectId object = ctx->object;
  // An earlier move may have committed entries onto lower stops of our
  // sequence after we probed them; under the token the state is stable,
  // so splice at the lowest chained stop (re-scan is local, no messages).
  for (std::size_t i = 0; i < ctx->meet_index; ++i) {
    if (find_entry(ctx->sequence[i].node, object) != nullptr) {
      ctx->meet_index = i;
      break;
    }
  }
  const OverlayNode meet = ctx->sequence[ctx->meet_index].node;
  ctx->peak_level = meet.level;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kSplice,
               .t = sim_->now(),
               .object = object,
               .from = meet.node,
               .level = meet.level});
  }

  Entry* meet_entry = find_entry(meet, object);
  MOT_CHECK(meet_entry != nullptr);
  const bool meet_was_sentinel = meet_entry->child == meet;
  if (meet_was_sentinel && meet.node == ctx->to) {
    // The chain already ends at our destination (the object bounced back
    // before the structure ever saw it leave): nothing to splice or tear.
    // Queries parked here while the object was elsewhere can now succeed.
    notify_waiters(meet.node, object, ctx->to);
    move_finish(ctx);
    return;
  }

  // Install the new fragment: entries for every stop probed below the
  // meet (message distances were charged while climbing; only the
  // special-parent bookkeeping is charged here). A meet at index 0 means
  // the new proxy is an ancestor of the old one: the meet entry itself
  // becomes the proxy sentinel and the fragment is empty.
  OverlayNode previous = meet;  // becomes the splice target's new child
  if (ctx->meet_index > 0) {
    const OverlayNode bottom = ctx->sequence[0].node;
    install_entry(bottom, object, bottom,
                  provider_->special_parent(ctx->to, 0), &ctx->cost);
    previous = bottom;
    for (std::size_t i = 1; i < ctx->meet_index; ++i) {
      const OverlayNode stop = ctx->sequence[i].node;
      install_entry(stop, object, previous,
                    provider_->special_parent(ctx->to, i), &ctx->cost);
      previous = stop;
    }
  }

  const OverlayNode first_victim = meet_entry->child;
  meet_entry->child = previous;  // meet_index == 0: self, the new sentinel

  if (meet_was_sentinel) {
    // The meet was the old proxy itself (the new proxy sits below it in
    // the structure): there is no detached fragment to tear, but queries
    // parked at the old proxy must be redirected.
    notify_waiters(meet.node, object, ctx->to);
    move_finish(ctx);
    return;
  }

  // Tear the detached fragment; the move completes when the delete does.
  const Weight hop = distance(meet.node, first_victim.node);
  charge(hop, &ctx->cost, object, obs::Ev::kDeleteHop, meet.node,
         first_victim.node);
  sim_->schedule(hop, [this, ctx, first_victim, from = meet.node] {
    delete_step(ctx, first_victim, from);
  });
}

void ConcurrentEngine::delete_step(const std::shared_ptr<MoveCtx>& ctx,
                                   OverlayNode current,
                                   NodeId previous_physical) {
  (void)previous_physical;
  charge_access(current, ctx->object, &ctx->cost);
  const Entry* entry = find_entry(current, ctx->object);
  // Under the token discipline the fragment is untouchable by anyone
  // else, so the entry must still be there.
  MOT_CHECK(entry != nullptr);
  const OverlayNode next = entry->child;
  erase_forward_hint_ = ctx->to;
  erase_entry(current, ctx->object, &ctx->cost);
  erase_forward_hint_ = kInvalidNode;
  if (next == current) {
    // Old proxy sentinel reached: wake queries parked here with the new
    // location (the delete message carries it — Section 3).
    notify_waiters(current.node, ctx->object, ctx->to);
    move_finish(ctx);
    return;
  }
  const Weight hop = distance(current.node, next.node);
  charge(hop, &ctx->cost, ctx->object, obs::Ev::kDeleteHop, current.node,
         next.node);
  sim_->schedule(hop, [this, ctx, next, from = current.node] {
    delete_step(ctx, next, from);
  });
}

void ConcurrentEngine::move_finish(const std::shared_ptr<MoveCtx>& ctx) {
  auto queue_it = move_queues_.find(ctx->object);
  MOT_CHECK(queue_it != move_queues_.end() && !queue_it->second.empty());
  MOT_CHECK(queue_it->second.front() == ctx);
  queue_it->second.pop_front();
  const ObjectId object = ctx->object;
  if (queue_it->second.empty()) move_queues_.erase(queue_it);

  --inflight_;
  ++stats_.moves_completed;
  if (ctx->done) {
    MoveResult result;
    result.cost = ctx->cost;
    result.peak_level = ctx->peak_level;
    ctx->done(result);
  }
  wake_token_waiter(object);
}

void ConcurrentEngine::wake_token_waiter(ObjectId object) {
  const auto it = move_queues_.find(object);
  if (it == move_queues_.end() || it->second.empty()) return;
  const std::shared_ptr<MoveCtx> next = it->second.front();
  if (next->waiting_token) {
    next->waiting_token = false;
    sim_->schedule(0.0, [this, next] { move_candidate_meet(next); });
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void ConcurrentEngine::start_query(NodeId from, ObjectId object,
                                   QueryCallback done) {
  MOT_EXPECTS(physical_.count(object) != 0);
  MOT_EXPECTS(from < provider_->num_nodes());
  auto ctx = std::make_shared<QueryCtx>();
  ctx->object = object;
  ctx->origin = from;
  ctx->climb_source = from;
  ctx->sequence = provider_->upward_sequence(from);
  ctx->done = std::move(done);
  ++inflight_;
  sim_->schedule(0.0, [this, ctx] { query_step(ctx); });
}

void ConcurrentEngine::query_step(const std::shared_ptr<QueryCtx>& ctx) {
  const OverlayNode stop = ctx->sequence[ctx->index].node;
  charge_access(stop, ctx->object, &ctx->cost);

  if (find_entry(stop, ctx->object) != nullptr) {
    ctx->found_level = std::max(ctx->found_level, stop.level);
    query_descend(ctx, stop);
    return;
  }
  if (options_.use_special_lists) {
    const auto node_it = state_.find(stop);
    if (node_it != state_.end()) {
      const auto sdl_it = node_it->second.sdl.find(ctx->object);
      if (sdl_it != node_it->second.sdl.end() && !sdl_it->second.empty()) {
        const auto best = std::min_element(
            sdl_it->second.begin(), sdl_it->second.end(),
            [](const OverlayNode& a, const OverlayNode& b) {
              return a.level < b.level;
            });
        ctx->found_level = std::max(ctx->found_level, stop.level);
        const OverlayNode child = *best;
        const Weight hop = distance(stop.node, child.node);
        charge(hop, &ctx->cost, ctx->object, obs::Ev::kSdlJump, stop.node,
               child.node);
        sim_->schedule(hop, [this, ctx, child] { query_descend(ctx, child); });
        return;
      }
    }
  }
  // Climb on; the root stop always holds the object.
  MOT_CHECK(ctx->index + 1 < ctx->sequence.size());
  const OverlayNode next = ctx->sequence[ctx->index + 1].node;
  const Weight hop = distance(stop.node, next.node);
  charge(hop, &ctx->cost, ctx->object, obs::Ev::kClimbHop, stop.node,
         next.node);
  ++ctx->index;
  sim_->schedule(hop, [this, ctx] { query_step(ctx); });
}

void ConcurrentEngine::query_descend(const std::shared_ptr<QueryCtx>& ctx,
                                     OverlayNode at) {
  charge_access(at, ctx->object, &ctx->cost);
  const Entry* entry = find_entry(at, ctx->object);
  if (entry == nullptr) {
    if (options_.forwarding_pointers) {
      const auto node_it = state_.find(at);
      if (node_it != state_.end()) {
        const auto fwd = node_it->second.forwards.find(ctx->object);
        if (fwd != node_it->second.forwards.end()) {
          // The delete that tore this entry left the new location behind:
          // redirect without ever visiting the stale proxy (Section 3's
          // improved algorithm).
          ++stats_.query_pointer_redirects;
        ++ctx->restarts;  // chases share the restart budget
        MOT_CHECK(ctx->restarts < kMaxQueryRestarts);
          ++ctx->restarts;  // chases share the restart budget
          MOT_CHECK(ctx->restarts < kMaxQueryRestarts);
          const NodeId target = fwd->second;
          const OverlayNode bottom =
              provider_->upward_sequence(target).front().node;
          const Weight hop = distance(at.node, target);
          charge(hop, &ctx->cost, ctx->object, obs::Ev::kQueryForward,
                 at.node, target);
          sim_->schedule(hop, [this, ctx, bottom] {
            query_at_bottom(ctx, bottom);
          });
          return;
        }
      }
    }
    // The fragment we were descending was torn underneath us.
    ++stats_.query_restarts;
    query_restart_from(ctx, at.node);
    return;
  }
  if (entry->child == at) {  // proxy sentinel
    query_at_bottom(ctx, at);
    return;
  }
  if (options_.shortcut_descent) {
    // Shortcut pointers give the discovering node the proxy's address: we
    // read the chain locally and route directly.
    OverlayNode walk = at;
    while (true) {
      const Entry* step = find_entry(walk, ctx->object);
      MOT_CHECK(step != nullptr);
      if (step->child == walk) break;
      walk = step->child;
    }
    const OverlayNode target = walk;
    const Weight hop = distance(at.node, target.node);
    charge(hop, &ctx->cost, ctx->object, obs::Ev::kDescendHop, at.node,
           target.node);
    sim_->schedule(hop, [this, ctx, target] { query_at_bottom(ctx, target); });
    return;
  }
  const OverlayNode next = entry->child;
  const Weight hop = distance(at.node, next.node);
  charge(hop, &ctx->cost, ctx->object, obs::Ev::kDescendHop, at.node,
         next.node);
  sim_->schedule(hop, [this, ctx, next] { query_descend(ctx, next); });
}

void ConcurrentEngine::query_at_bottom(const std::shared_ptr<QueryCtx>& ctx,
                                       OverlayNode bottom) {
  if (physical_position(ctx->object) == bottom.node) {
    query_finish(ctx, bottom.node);
    return;
  }
  const Entry* entry = find_entry(bottom, ctx->object);
  if (entry != nullptr && entry->child == bottom) {
    // Stale proxy whose delete is still on its way: wait for it — it
    // carries the new location (Section 3).
    ++stats_.query_waits;
    waiters_[waiter_key(bottom.node, ctx->object)].push_back(ctx);
    return;
  }
  if (entry != nullptr) {
    // The stop holds a live non-sentinel entry: it is back on the chain
    // (possible when the stop doubles as an ancestor, e.g. a tree sink).
    // Follow the chain instead of waiting for a delete that never comes.
    query_descend(ctx, bottom);
    return;
  }
  if (options_.forwarding_pointers) {
    const auto node_it = state_.find(bottom);
    if (node_it != state_.end()) {
      const auto fwd = node_it->second.forwards.find(ctx->object);
      if (fwd != node_it->second.forwards.end()) {
        // The delete that cleared this proxy left the new location
        // behind: chase it directly (Section 3's improved algorithm).
        ++stats_.query_pointer_redirects;
        const NodeId target = fwd->second;
        const OverlayNode next_bottom =
            provider_->upward_sequence(target).front().node;
        const Weight hop = distance(bottom.node, target);
        charge(hop, &ctx->cost, ctx->object, obs::Ev::kQueryForward,
               bottom.node, target);
        sim_->schedule(hop, [this, ctx, next_bottom] {
          query_at_bottom(ctx, next_bottom);
        });
        return;
      }
    }
  }
  // The delete already passed: climb again from here.
  ++stats_.query_restarts;
  query_restart_from(ctx, bottom.node);
}

void ConcurrentEngine::query_restart_from(const std::shared_ptr<QueryCtx>& ctx,
                                          NodeId node) {
  ++ctx->restarts;
  MOT_CHECK(ctx->restarts < kMaxQueryRestarts);
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kQueryRestart,
               .t = sim_->now(),
               .object = ctx->object,
               .from = node,
               .aux = static_cast<std::uint64_t>(ctx->restarts)});
  }
  ctx->climb_source = node;
  ctx->sequence = provider_->upward_sequence(node);
  ctx->index = 0;
  sim_->schedule(0.0, [this, ctx] { query_step(ctx); });
}

void ConcurrentEngine::notify_waiters(NodeId stale_proxy, ObjectId object,
                                      NodeId new_proxy) {
  const auto it = waiters_.find(waiter_key(stale_proxy, object));
  if (it == waiters_.end()) return;
  std::vector<std::shared_ptr<QueryCtx>> parked = std::move(it->second);
  waiters_.erase(it);
  const OverlayNode target_bottom =
      provider_->upward_sequence(new_proxy).front().node;
  for (const auto& ctx : parked) {
    ++stats_.query_forwards;
    const Weight hop = distance(stale_proxy, new_proxy);
    charge(hop, &ctx->cost, ctx->object, obs::Ev::kQueryForward, stale_proxy,
           new_proxy);
    sim_->schedule(hop, [this, ctx, target_bottom] {
      query_at_bottom(ctx, target_bottom);
    });
  }
}

void ConcurrentEngine::query_finish(const std::shared_ptr<QueryCtx>& ctx,
                                    NodeId proxy) {
  --inflight_;
  ++stats_.queries_completed;
  if (ctx->done) {
    QueryResult result;
    result.found = true;
    result.proxy = proxy;
    result.cost = ctx->cost;
    result.found_level = ctx->found_level;
    ctx->done(result);
  }
}

// ---------------------------------------------------------------------------

std::vector<std::size_t> ConcurrentEngine::load_per_node() const {
  std::vector<std::size_t> load(provider_->num_nodes(), 0);
  for (const auto& [owner, node] : state_) {
    for (const auto& [object, entry] : node.dl) {
      load[provider_->delegate(owner, object).storage] += 1;
    }
    for (const auto& [object, children] : node.sdl) {
      load[provider_->delegate(owner, object).storage] += children.size();
    }
  }
  return load;
}

std::string ConcurrentEngine::debug_stuck_report() const {
  std::string report;
  for (const auto& [object, queue] : move_queues_) {
    if (queue.empty()) continue;
    report += "object " + std::to_string(object) + ": " +
              std::to_string(queue.size()) + " moves pending";
    const auto& front = queue.front();
    report += " front{to=" + std::to_string(front->to) +
              " index=" + std::to_string(front->index) +
              " waiting_token=" + std::to_string(front->waiting_token) +
              "}\n";
  }
  for (const auto& [key, parked] : waiters_) {
    if (parked.empty()) continue;
    const auto node = static_cast<NodeId>(key >> 32);
    const auto object = static_cast<ObjectId>(key);
    report += "waiters at node " + std::to_string(node) + " for object " +
              std::to_string(object) + ": " + std::to_string(parked.size()) +
              " (physical=" + std::to_string(physical_position(object));
    const Entry* entry = find_entry({0, node}, object);
    report += ", level0_entry=" + std::string(entry ? "yes" : "no");
    // chain end from root
    OverlayNode current = provider_->root_stop();
    while (true) {
      const Entry* e = find_entry(current, object);
      if (e == nullptr) {
        report += ", chain=BROKEN at level " +
                  std::to_string(current.level);
        break;
      }
      if (e->child == current) {
        report += ", chain_end=" + std::to_string(current.node) +
                  "@L" + std::to_string(current.level);
        break;
      }
      current = e->child;
    }
    report += ")\n";
  }
  return report;
}

void ConcurrentEngine::validate_quiescent() const {
  MOT_CHECK(inflight_ == 0);
  for (const auto& [object, proxy] : physical_) {
    // Walk the chain from the root; it must end at the physical position.
    OverlayNode current = provider_->root_stop();
    std::size_t chain_length = 0;
    std::size_t total = 0;
    for (const auto& [owner, node] : state_) {
      (void)owner;
      total += node.dl.count(object);
    }
    while (true) {
      MOT_CHECK(chain_length <= total);
      const Entry* entry = find_entry(current, object);
      MOT_CHECK(entry != nullptr);
      ++chain_length;
      if (entry->child == current) {  // proxy sentinel
        MOT_CHECK(current.node == proxy);
        break;
      }
      current = entry->child;
    }
    MOT_CHECK(chain_length == total);
  }
}

}  // namespace mot
