// Concurrent execution engine (Sections 4.1.2 and 4.2.2 of the paper).
//
// Operations run as message walkers over the discrete-event simulator:
// every overlay hop takes time equal to its distance, and operations for
// the same object genuinely overlap (the paper's experiments allow up to
// 10 in-flight operations per object).
//
// Correctness under overlap. The paper orders crossing operations with
// level periods Phi(i); an equivalent, simulation-friendly discipline is
// used here:
//   * a move's climb probes the structure live (charging real message
//     costs, possibly over stale state, which is where the concurrent
//     cost increase comes from), but
//   * its structure mutation — install the new fragment, splice at the
//     meet node, spawn the delete — commits only when every earlier move
//     of the same object has fully completed. If the candidate meet entry
//     vanished by then (it was on a fragment an earlier delete tore), the
//     climb resumes from that node.
// This keeps the root -> proxy chain invariant intact under any
// interleaving, which validate_quiescent() checks.
//
// Queries follow Section 3: a query that descends onto a stale proxy
// waits for the delete message, which carries the object's new location,
// and is forwarded there; a query whose descent hits a torn entry resumes
// climbing from where it stands.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event_sim.hpp"
#include "tracking/chain_tracker.hpp"
#include "tracking/path_provider.hpp"
#include "util/flat_map.hpp"

namespace mot {

struct ConcurrentStats {
  std::uint64_t moves_completed = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t query_restarts = 0;   // descent hit a torn entry
  std::uint64_t query_waits = 0;      // waited at a stale proxy
  std::uint64_t query_forwards = 0;   // forwarded by a delete notification
  std::uint64_t query_pointer_redirects = 0;  // Section 3 improved path
  std::uint64_t meet_rechecks_failed = 0;  // candidate meet vanished
};

class ConcurrentEngine {
 public:
  using MoveCallback = std::function<void(const MoveResult&)>;
  using QueryCallback = std::function<void(const QueryResult&)>;

  // `provider` and `sim` must outlive the engine.
  ConcurrentEngine(const PathProvider& provider, Simulator& sim,
                   const ChainOptions& options);
  ~ConcurrentEngine();

  ConcurrentEngine(const ConcurrentEngine&) = delete;
  ConcurrentEngine& operator=(const ConcurrentEngine&) = delete;

  // Instantaneous initialization (the paper's one-time publish phase).
  void publish(ObjectId object, NodeId proxy);

  // Issues operations at sim.now(). Callbacks fire when the operation
  // completes (for a move: its delete has fully executed).
  void start_move(ObjectId object, NodeId new_proxy, MoveCallback done = {});
  void start_query(NodeId from, ObjectId object, QueryCallback done = {});

  // Where the object physically is right now (moves take effect at issue
  // time; the data structure catches up asynchronously).
  NodeId physical_position(ObjectId object) const;

  const CostMeter& meter() const { return meter_; }
  const ConcurrentStats& stats() const { return stats_; }
  std::vector<std::size_t> load_per_node() const;
  std::size_t inflight_operations() const { return inflight_; }

  // After the simulator drains: every object's chain must run root ->
  // physical position, with consistent DL/SDL cross references.
  void validate_quiescent() const;

  // Diagnostic: human-readable description of operations that have not
  // completed (parked queries, pending move queues). Empty when idle.
  std::string debug_stuck_report() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    OverlayNode child;
    std::optional<OverlayNode> sp;
  };
  struct NodeState {
    // Flat open-addressed storage (util/flat_map.hpp), shared with the
    // chain and distributed engines' detection lists.
    FlatMap<ObjectId, Entry> dl;
    std::unordered_map<ObjectId, std::vector<OverlayNode>> sdl;
    // Forwarding pointers left by deletes (Section 3's improved query
    // handling), only populated when options.forwarding_pointers is on.
    std::unordered_map<ObjectId, NodeId> forwards;
  };

  struct MoveCtx;
  struct QueryCtx;

  Weight distance(NodeId a, NodeId b) const;
  // Charges `amount` to the meter (and `op_cost`, when given) and, with
  // a trace sink installed, emits an event of kind `kind` attributed to
  // `object` at the current simulation time.
  void charge(Weight amount, Weight* op_cost, ObjectId object, obs::Ev kind,
              NodeId from = kInvalidNode, NodeId to = kInvalidNode);
  void charge_access(OverlayNode owner, ObjectId object, Weight* op_cost);

  const Entry* find_entry(OverlayNode owner, ObjectId object) const;
  Entry* find_entry(OverlayNode owner, ObjectId object);
  void install_entry(OverlayNode owner, ObjectId object, OverlayNode child,
                     std::optional<OverlayNode> sp, Weight* op_cost);
  void erase_entry(OverlayNode owner, ObjectId object, Weight* op_cost);

  // -- move machinery --
  void move_step(const std::shared_ptr<MoveCtx>& ctx);
  void move_candidate_meet(const std::shared_ptr<MoveCtx>& ctx);
  void move_commit(const std::shared_ptr<MoveCtx>& ctx);
  void move_finish(const std::shared_ptr<MoveCtx>& ctx);
  bool holds_token(const MoveCtx& ctx) const;
  void wake_token_waiter(ObjectId object);
  void delete_step(const std::shared_ptr<MoveCtx>& ctx, OverlayNode current,
                   NodeId previous_physical);

  // -- query machinery --
  void query_step(const std::shared_ptr<QueryCtx>& ctx);
  void query_descend(const std::shared_ptr<QueryCtx>& ctx, OverlayNode at);
  void query_at_bottom(const std::shared_ptr<QueryCtx>& ctx,
                       OverlayNode bottom);
  void query_finish(const std::shared_ptr<QueryCtx>& ctx, NodeId proxy);
  void query_restart_from(const std::shared_ptr<QueryCtx>& ctx, NodeId node);
  void notify_waiters(NodeId stale_proxy, ObjectId object, NodeId new_proxy);

  const PathProvider* provider_;
  Simulator* sim_;
  ChainOptions options_;
  CostMeter meter_;
  ConcurrentStats stats_;

  std::unordered_map<OverlayNode, NodeState, OverlayNodeHash> state_;
  // Set around erase_entry() by the delete walker so the erased slot can
  // leave a forwarding pointer (Section 3 improved queries).
  NodeId erase_forward_hint_ = kInvalidNode;
  std::unordered_map<ObjectId, NodeId> physical_;
  std::uint64_t next_entry_id_ = 1;
  std::size_t inflight_ = 0;

  // Per-object issue-ordered queue of incomplete moves; the front holds
  // the mutation token.
  std::unordered_map<ObjectId, std::deque<std::shared_ptr<MoveCtx>>>
      move_queues_;

  // Queries waiting at a stale proxy for the delete that names the new
  // location, keyed by (stale proxy, object).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<QueryCtx>>>
      waiters_;
};

}  // namespace mot
