// MOT — Mobile Object Tracking using Sensors (Algorithm 1 of the paper).
//
// MotPathProvider turns an overlay hierarchy into the visit structure the
// chain engine climbs:
//   * with parent sets on (default), the level-l visit group of node u is
//     the whole parentset^l(u) in ascending ID order — the global order
//     that prevents the Section 3.1 race in concurrent executions;
//   * special parents: the stop at (level i, rank j) registers its DL
//     entries with group(u, i + offset)[j mod |group|] (Definition 3; the
//     theory constant 3*rho + 6 is configurable because real hierarchies
//     clamp it to the root);
//   * load balancing (Section 5): an internal node's entries physically
//     live on a hashed member of its cluster, reached by routing over the
//     cluster's embedded de Bruijn graph.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "debruijn/debruijn.hpp"
#include "hier/hierarchy.hpp"
#include "tracking/chain_tracker.hpp"
#include "tracking/path_provider.hpp"

namespace mot {

struct MotOptions {
  // Probe whole parent sets (Section 3.1). Off = default parents only.
  bool use_parent_sets = true;
  // Maintain special detection lists (Definition 3 / Fig. 2).
  bool use_special_parents = true;
  // Levels between a stop and its special parent. The paper's theory
  // value is 3*rho + 6; practical hierarchies clamp to the root, and 2
  // already bounds fragmentation tightly on grids.
  int special_parent_offset = 2;
  // Distribute internal nodes' lists across their clusters (Section 5).
  bool load_balance = false;
  // Charge de Bruijn multi-hop routing for delegate access (Cor. 5.2's
  // O(log n) factor). Off charges the direct center->delegate distance.
  bool charge_debruijn_routing = true;
  // Charge special-parent bookkeeping messages. Off by default: the
  // paper's cost-ratio accounting explicitly excludes SP probing ("we do
  // not take into account the cost for probing special-parents ... the
  // cost ratios increase by a constant factor" — Section 4). The
  // abl_special_parents bench measures the honest all-in cost.
  bool charge_special_updates = false;
  // Salt for the cluster hash functions.
  std::uint64_t seed = 1;
};

// Chain-engine configuration implied by a MOT configuration.
ChainOptions make_mot_chain_options(const MotOptions& options);

// Display name encoding the configuration ("MOT", "MOT-LB", ...).
std::string make_mot_name(const MotOptions& options);

class MotPathProvider final : public PathProvider {
 public:
  // `hierarchy` must outlive the provider.
  MotPathProvider(const Hierarchy& hierarchy, const MotOptions& options);

  std::span<const PathStop> upward_sequence(NodeId u) const override;
  std::optional<OverlayNode> special_parent(NodeId u,
                                            std::size_t index) const override;
  DelegateAccess delegate(OverlayNode owner, ObjectId object) const override;
  OverlayNode root_stop() const override;
  const DistanceOracle& oracle() const override {
    return hierarchy_->oracle();
  }
  std::size_t num_nodes() const override {
    return hierarchy_->graph().num_nodes();
  }

  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const MotOptions& options() const { return options_; }

  // The cluster embedding serving internal node (level, node); builds it
  // on first use. Exposed for the dynamism extension and tests.
  const ClusterEmbedding& embedding(OverlayNode owner) const;

 private:
  // Memoized de Bruijn route from a cluster's center to one target label:
  // the physical hop sequence (kept so cached lookups replay the same
  // kRouteHop trace events as a fresh computation) plus the summed oracle
  // cost. Routes depend only on (owner, target label), both fixed for the
  // lifetime of the embedding, so entries never invalidate.
  struct CachedRoute {
    bool filled = false;
    NodeId storage = kInvalidNode;
    Weight cost = 0.0;
    std::vector<NodeId> hops;
  };

  const Hierarchy* hierarchy_;
  MotOptions options_;

  mutable std::unordered_map<NodeId, std::vector<PathStop>> sequence_cache_;
  mutable std::unordered_map<OverlayNode, ClusterEmbedding, OverlayNodeHash>
      embedding_cache_;
  // owner -> per-target-label route cache, sized on first delegate access.
  mutable std::unordered_map<OverlayNode, std::vector<CachedRoute>,
                             OverlayNodeHash>
      route_cache_;
};

// MOT as a Tracker: owns the provider and the chain engine.
class MotTracker final : public Tracker {
 public:
  MotTracker(const Hierarchy& hierarchy, const MotOptions& options);

  std::string name() const override { return chain_.name(); }
  void publish(ObjectId object, NodeId proxy) override {
    chain_.publish(object, proxy);
  }
  MoveResult move(ObjectId object, NodeId new_proxy) override {
    return chain_.move(object, new_proxy);
  }
  QueryResult query(NodeId from, ObjectId object) override {
    return chain_.query(from, object);
  }
  NodeId proxy_of(ObjectId object) const override {
    return chain_.proxy_of(object);
  }
  std::vector<std::size_t> load_per_node() const override {
    return chain_.load_per_node();
  }
  const CostMeter& meter() const override { return chain_.meter(); }

  const MotPathProvider& provider() const { return provider_; }
  ChainTracker& chain() { return chain_; }
  const ChainTracker& chain() const { return chain_; }

 private:
  MotPathProvider provider_;
  ChainTracker chain_;
};

}  // namespace mot
