// Binary de Bruijn graphs and their embedding into hierarchy clusters
// (Section 5 of the paper).
//
// A d-dimensional de Bruijn graph has 2^d vertices labeled by d-bit
// strings, with an edge from u1 u2 .. ud to u2 .. ud b for b in {0, 1}.
// Its diameter is d and the shortest path between two labels is the
// "shift-in" walk determined by the longest suffix-of-source /
// prefix-of-target overlap — each vertex only needs its two out-neighbor
// addresses, which is the constant-size routing table the paper relies
// on for load balancing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mot {

// Pure de Bruijn label arithmetic (no physical hosts).
class DeBruijnGraph {
 public:
  explicit DeBruijnGraph(int dimension);

  int dimension() const { return dimension_; }
  std::uint32_t num_vertices() const { return 1u << dimension_; }

  // The two out-neighbors of `label`: (label << 1 | b) mod 2^d.
  std::uint32_t successor(std::uint32_t label, int bit) const;

  // Longest k such that the last k bits of `from` equal the first k bits
  // of `to` (as d-bit strings) — the shift-in walk length is d - k.
  int overlap(std::uint32_t from, std::uint32_t to) const;

  // Shortest shift-in path from `from` to `to`, inclusive of both ends.
  // Length (hop count) is dimension - overlap <= dimension.
  std::vector<std::uint32_t> shortest_path(std::uint32_t from,
                                           std::uint32_t to) const;

  // Hop count of the shortest path (path size - 1).
  int distance(std::uint32_t from, std::uint32_t to) const;

 private:
  int dimension_;
  std::uint32_t mask_;
};

// Multiply-shift universal hash over 64-bit keys, salted per instance.
// Used to spread object keys across cluster members (Section 5's
// key(o) mod |X| with a salt so distinct clusters shard differently).
class UniversalHash {
 public:
  explicit UniversalHash(std::uint64_t salt);

  std::uint64_t operator()(std::uint64_t key) const;

 private:
  std::uint64_t multiplier_;  // odd
  std::uint64_t addend_;
};

// A de Bruijn graph embedded over a cluster of physical nodes
// (Section 5 / Rajaraman et al.): dimension d = ceil(log2 |X|); label
// l < |X| is hosted by the l-th member; label l >= |X| is emulated by the
// member whose index is l with the most significant bit cleared.
//
// Supports the Section 7 dynamics: members joining and leaving with
// relabeling, reporting how many nodes had to update state (the paper's
// "adaptability" measure, O(1) amortized).
class ClusterEmbedding {
 public:
  // `members` must be non-empty; order defines the initial labels.
  ClusterEmbedding(std::vector<NodeId> members, std::uint64_t hash_salt);

  std::size_t size() const { return members_.size(); }
  int dimension() const { return debruijn_.dimension(); }
  const std::vector<NodeId>& members() const { return members_; }

  // Physical host of a de Bruijn label.
  NodeId host(std::uint32_t label) const;

  // The member index / physical node an object key is hashed to.
  std::uint32_t label_for_key(std::uint64_t key) const;
  NodeId node_for_key(std::uint64_t key) const;

  // Physical hop sequence (hosts of successive de Bruijn vertices) from
  // member `from_label` to member `to_label`, both ends included.
  // Consecutive duplicate hosts (labels emulated by one node) collapse.
  // Emits one kRouteHop trace event per physical hop when tracing.
  std::vector<NodeId> route(std::uint32_t from_label,
                            std::uint32_t to_label) const;

  // Same hop sequence, computed from the precomputed next-hop tables and
  // with no trace emission — the hot-path form route caches are built
  // from (callers replay the kRouteHop events themselves).
  std::vector<NodeId> route_hops(std::uint32_t from_label,
                                 std::uint32_t to_label) const;

  // Host of successor(label, bit), from the per-node next-hop table
  // built at construction (the paper's constant-size routing state,
  // materialized once instead of re-derived per hop).
  NodeId next_host(std::uint32_t label, int bit) const {
    return next_hosts_[2 * label + static_cast<std::uint32_t>(bit)];
  }

  // Label of a physical member, or -1 if not a member.
  std::int64_t label_of(NodeId node) const;

  // The constant-size routing state a member stores (the paper's claim
  // that "the neighborhood table at each node is of constant size"):
  // the physical hosts of the label's two de Bruijn out-neighbors.
  // Duplicate or self hosts collapse, so the table has at most 2 entries.
  std::vector<NodeId> neighbor_table(std::uint32_t label) const;

  // Dynamics (Section 7). Both return the number of member nodes whose
  // state (labels / neighbor tables / hosted shares) had to change.
  std::size_t add_member(NodeId node);
  std::size_t remove_member(NodeId node);

 private:
  void rebuild_dimension();
  // Rebuilds hosts_/next_hosts_ from members_; every membership change
  // funnels through here.
  void rebuild_tables();

  std::vector<NodeId> members_;  // label -> physical node
  DeBruijnGraph debruijn_;
  UniversalHash hash_;
  // Route precomputation: physical host per label (the MSB fold applied
  // once) and the host of each label's two out-neighbors.
  std::vector<NodeId> hosts_;       // label -> host
  std::vector<NodeId> next_hosts_;  // 2 * label + bit -> successor host
};

}  // namespace mot
