#include "debruijn/debruijn.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot {

DeBruijnGraph::DeBruijnGraph(int dimension) : dimension_(dimension) {
  MOT_EXPECTS(dimension >= 0 && dimension <= 30);
  mask_ = dimension == 0 ? 0u : ((1u << dimension) - 1u);
}

std::uint32_t DeBruijnGraph::successor(std::uint32_t label, int bit) const {
  MOT_EXPECTS(label <= mask_);
  MOT_EXPECTS(bit == 0 || bit == 1);
  if (dimension_ == 0) return 0;
  return ((label << 1) | static_cast<std::uint32_t>(bit)) & mask_;
}

int DeBruijnGraph::overlap(std::uint32_t from, std::uint32_t to) const {
  MOT_EXPECTS(from <= mask_ && to <= mask_);
  for (int k = dimension_; k >= 0; --k) {
    const std::uint32_t from_suffix =
        k == 0 ? 0u : (from & ((1u << k) - 1u));
    const std::uint32_t to_prefix = k == 0 ? 0u : (to >> (dimension_ - k));
    if (from_suffix == to_prefix) return k;
  }
  return 0;  // unreachable: k == 0 always matches
}

std::vector<std::uint32_t> DeBruijnGraph::shortest_path(
    std::uint32_t from, std::uint32_t to) const {
  MOT_EXPECTS(from <= mask_ && to <= mask_);
  // The remaining d-k bits of `to` are shifted in one at a time, k being
  // the suffix/prefix overlap.
  std::vector<std::uint32_t> path{from};
  std::uint32_t at = from;
  for (int step = overlap(from, to); step < dimension_; ++step) {
    const int bit =
        static_cast<int>((to >> (dimension_ - 1 - step)) & 1u);
    at = successor(at, bit);
    path.push_back(at);
  }
  MOT_ENSURES(path.back() == to);
  return path;
}

int DeBruijnGraph::distance(std::uint32_t from, std::uint32_t to) const {
  return static_cast<int>(shortest_path(from, to).size()) - 1;
}

UniversalHash::UniversalHash(std::uint64_t salt) {
  Rng rng(salt);
  multiplier_ = rng() | 1ULL;  // multiply-shift needs an odd multiplier
  addend_ = rng();
}

std::uint64_t UniversalHash::operator()(std::uint64_t key) const {
  std::uint64_t mixed = key * multiplier_ + addend_;
  // Finalizer (splitmix-style) so low bits are well distributed for mod.
  mixed ^= mixed >> 33;
  mixed *= 0xff51afd7ed558ccdULL;
  mixed ^= mixed >> 33;
  return mixed;
}

namespace {

int dimension_for(std::size_t size) {
  MOT_EXPECTS(size >= 1);
  return static_cast<int>(std::bit_width(size - 1));  // ceil(log2 size)
}

}  // namespace

ClusterEmbedding::ClusterEmbedding(std::vector<NodeId> members,
                                   std::uint64_t hash_salt)
    : members_(std::move(members)),
      debruijn_(dimension_for(std::max<std::size_t>(members_.size(), 1))),
      hash_(hash_salt) {
  MOT_EXPECTS(!members_.empty());
  rebuild_tables();
}

void ClusterEmbedding::rebuild_dimension() {
  debruijn_ = DeBruijnGraph(dimension_for(members_.size()));
}

void ClusterEmbedding::rebuild_tables() {
  const std::uint32_t n = debruijn_.num_vertices();
  hosts_.resize(n);
  for (std::uint32_t label = 0; label < n; ++label) {
    if (label < members_.size()) {
      hosts_[label] = members_[label];
      continue;
    }
    // Labels beyond |X| are emulated by the member whose label matches
    // with the most significant bit cleared (paper, Section 5).
    const std::uint32_t msb = 1u << (debruijn_.dimension() - 1);
    const std::uint32_t folded = label & ~msb;
    MOT_CHECK(folded < members_.size());
    hosts_[label] = members_[folded];
  }
  next_hosts_.resize(2 * static_cast<std::size_t>(n));
  for (std::uint32_t label = 0; label < n; ++label) {
    for (const int bit : {0, 1}) {
      next_hosts_[2 * label + static_cast<std::uint32_t>(bit)] =
          hosts_[debruijn_.successor(label, bit)];
    }
  }
}

NodeId ClusterEmbedding::host(std::uint32_t label) const {
  MOT_EXPECTS(label < debruijn_.num_vertices());
  return hosts_[label];
}

std::uint32_t ClusterEmbedding::label_for_key(std::uint64_t key) const {
  return static_cast<std::uint32_t>(hash_(key) % members_.size());
}

NodeId ClusterEmbedding::node_for_key(std::uint64_t key) const {
  return members_[label_for_key(key)];
}

std::vector<NodeId> ClusterEmbedding::route_hops(
    std::uint32_t from_label, std::uint32_t to_label) const {
  MOT_EXPECTS(from_label < members_.size() && to_label < members_.size());
  // Walk the shift-in path through the precomputed next-hop tables: no
  // intermediate label vector, no per-hop MSB fold.
  const int d = debruijn_.dimension();
  std::vector<NodeId> hops;
  hops.reserve(static_cast<std::size_t>(d) + 1);
  hops.push_back(hosts_[from_label]);
  std::uint32_t at = from_label;
  for (int step = debruijn_.overlap(from_label, to_label); step < d; ++step) {
    const int bit = static_cast<int>((to_label >> (d - 1 - step)) & 1u);
    const NodeId node = next_host(at, bit);
    at = debruijn_.successor(at, bit);
    if (hops.back() != node) hops.push_back(node);
  }
  return hops;
}

std::vector<NodeId> ClusterEmbedding::route(std::uint32_t from_label,
                                            std::uint32_t to_label) const {
  std::vector<NodeId> hops = route_hops(from_label, to_label);
  if (obs::tracing()) {
    // One event per physical hop of the cluster route; distances are not
    // known at this layer, the caller's access event carries the cost.
    for (std::size_t i = 1; i < hops.size(); ++i) {
      obs::emit({.type = obs::Ev::kRouteHop,
                 .from = hops[i - 1],
                 .to = hops[i],
                 .aux = i});
    }
  }
  return hops;
}

std::vector<NodeId> ClusterEmbedding::neighbor_table(
    std::uint32_t label) const {
  MOT_EXPECTS(label < debruijn_.num_vertices());
  std::vector<NodeId> table;
  const NodeId self = host(label);
  for (const int bit : {0, 1}) {
    const NodeId next = next_host(label, bit);
    if (next == self) continue;
    if (std::find(table.begin(), table.end(), next) == table.end()) {
      table.push_back(next);
    }
  }
  return table;
}

std::int64_t ClusterEmbedding::label_of(NodeId node) const {
  const auto it = std::find(members_.begin(), members_.end(), node);
  if (it == members_.end()) return -1;
  return it - members_.begin();
}

std::size_t ClusterEmbedding::add_member(NodeId node) {
  MOT_EXPECTS(label_of(node) < 0);
  const std::size_t old_size = members_.size();
  members_.push_back(node);
  if (std::has_single_bit(old_size)) {
    // |X| was exactly a power of two, so the new label does not fit the
    // current dimension: it grows by one and every member re-derives its
    // emulated second label (Section 7).
    rebuild_dimension();
    rebuild_tables();
    return members_.size();
  }
  // Otherwise only the new node and the hosts of its de Bruijn in/out
  // neighbors update their tables: O(1) nodes. (The centralized host
  // tables are still refreshed wholesale; the returned count models the
  // distributed cost, not this process-local rebuild.)
  rebuild_tables();
  return 3;
}

std::size_t ClusterEmbedding::remove_member(NodeId node) {
  const std::int64_t label = label_of(node);
  MOT_EXPECTS(label >= 0);
  MOT_EXPECTS(members_.size() > 1);
  const std::size_t old_size = members_.size();
  // Move the last-labeled member into the vacated label (the paper's
  // "set l(p) to the label of the node with current label |X| - 1").
  members_[static_cast<std::size_t>(label)] = members_.back();
  members_.pop_back();
  if (std::has_single_bit(old_size - 1)) {
    // |X| - 1 is a power of two: the dimension shrinks and every member
    // merges the bookkeeping of its two labels (Section 7).
    rebuild_dimension();
    rebuild_tables();
    return members_.size();
  }
  rebuild_tables();
  return 3;
}

}  // namespace mot
