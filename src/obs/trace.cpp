#include "obs/trace.hpp"

#include <cstring>

#include "obs/json_writer.hpp"

namespace mot::obs {

const char* ev_name(Ev type) {
  switch (type) {
    case Ev::kSpanBegin: return "span_begin";
    case Ev::kSpanEnd: return "span_end";
    case Ev::kClimbHop: return "climb_hop";
    case Ev::kDescendHop: return "descend_hop";
    case Ev::kDeleteHop: return "delete_hop";
    case Ev::kSpHop: return "sp_hop";
    case Ev::kSdlJump: return "sdl_jump";
    case Ev::kAccessRoute: return "access_route";
    case Ev::kSplice: return "splice";
    case Ev::kRepairHop: return "repair_hop";
    case Ev::kQueryRestart: return "query_restart";
    case Ev::kQueryForward: return "query_forward";
    case Ev::kTokenWait: return "token_wait";
    case Ev::kRouteHop: return "route_hop";
    case Ev::kRouteComputed: return "route_computed";
    case Ev::kMsgSend: return "msg_send";
    case Ev::kAck: return "ack";
    case Ev::kRetransmit: return "retransmit";
    case Ev::kDuplicate: return "duplicate";
    case Ev::kChannelDrop: return "channel_drop";
    case Ev::kChannelDuplicate: return "channel_duplicate";
    case Ev::kChannelDelay: return "channel_delay";
    case Ev::kCrash: return "crash";
    case Ev::kRecoverySplice: return "recovery_splice";
    case Ev::kRecoveryHop: return "recovery_hop";
    case Ev::kRecoveryRebuild: return "recovery_rebuild";
    case Ev::kQueryRescue: return "query_rescue";
    case Ev::kQueryAbort: return "query_abort";
    case Ev::kPartitionCut: return "partition_cut";
    case Ev::kPartitionHeal: return "partition_heal";
    case Ev::kQueryFailover: return "query_failover";
    case Ev::kQueryHedge: return "query_hedge";
    case Ev::kQueryRetry: return "query_retry";
    case Ev::kQueryDeadlineAbort: return "query_deadline_abort";
    case Ev::kShed: return "shed";
    case Ev::kQueryDegraded: return "query_degraded";
    case Ev::kSiblingRedirect: return "sibling_redirect";
    case Ev::kCreditStall: return "credit_stall";
    case Ev::kBreakerTrip: return "breaker_trip";
    case Ev::kBreakerProbe: return "breaker_probe";
    case Ev::kBreakerClose: return "breaker_close";
    case Ev::kWireEncode: return "wire_encode";
    case Ev::kWireDecode: return "wire_decode";
    case Ev::kFlightDump: return "flight_dump";
    case Ev::kWindowRaise: return "window_raise";
    case Ev::kWindowShrink: return "window_shrink";
    case Ev::kTunerStep: return "tuner_step";
    case Ev::kReplicaPlace: return "replica_place";
    case Ev::kReplicaRetire: return "replica_retire";
  }
  return "unknown";
}

bool TraceEvent::operator==(const TraceEvent& other) const {
  if (type != other.type || t != other.t || object != other.object ||
      from != other.from || to != other.to || level != other.level ||
      dist != other.dist || charged != other.charged || aux != other.aux ||
      trace != other.trace || span != other.span ||
      parent != other.parent) {
    return false;
  }
  if (label == other.label) return true;
  if (label == nullptr || other.label == nullptr) return false;
  return std::strcmp(label, other.label) == 0;
}

namespace detail {
TraceSink* g_sink = nullptr;
}  // namespace detail

TraceSink* install_trace_sink(TraceSink* sink) {
  TraceSink* previous = detail::g_sink;
  detail::g_sink = sink;
  return previous;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(capacity_);
}

void RingBufferSink::on_event(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> ordered;
  ordered.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    ordered.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return ordered;
}

std::uint64_t RingBufferSink::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - buffer_.size();
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_.clear();
  next_ = 0;
  total_ = 0;
}

std::string event_to_json(const TraceEvent& event, std::uint64_t index) {
  JsonWriter w;
  w.begin_object();
  w.key("i");
  w.value(index);
  w.key("ev");
  w.value(ev_name(event.type));
  if (event.t >= 0.0) {
    w.key("t");
    w.value(event.t);
  }
  if (event.object != kNoObject) {
    w.key("obj");
    w.value(event.object);
  }
  if (event.from != kNoNode) {
    w.key("from");
    w.value(static_cast<std::uint64_t>(event.from));
  }
  if (event.to != kNoNode) {
    w.key("to");
    w.value(static_cast<std::uint64_t>(event.to));
  }
  if (event.level >= 0) {
    w.key("level");
    w.value(static_cast<std::int64_t>(event.level));
  }
  if (event.dist != 0.0) {
    w.key("dist");
    w.value(event.dist);
  }
  if (event.charged != 0.0) {
    w.key("charged");
    w.value(event.charged);
  }
  if (event.aux != 0) {
    w.key("aux");
    w.value(event.aux);
  }
  if (event.trace != 0) {
    w.key("trace");
    w.value(event.trace);
  }
  if (event.span != 0) {
    w.key("span");
    w.value(event.span);
  }
  if (event.parent != 0) {
    w.key("parent");
    w.value(event.parent);
  }
  if (event.label != nullptr) {
    w.key("label");
    w.value(event.label);
  }
  w.end_object();
  return w.str();
}

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path) {}

JsonlFileSink::~JsonlFileSink() { flush(); }

void JsonlFileSink::on_event(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << event_to_json(event, written_) << '\n';
  ++written_;
}

std::uint64_t JsonlFileSink::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

void JsonlFileSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

}  // namespace mot::obs
