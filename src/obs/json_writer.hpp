// Minimal JSON emission helpers shared by the trace / metrics / run
// record exporters. Write-only by design: the repo never parses JSON,
// it only produces it for jq / pandas / CI validation, so a dependency-
// free writer beats vendoring a parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mot::obs {

// Escapes `text` for inclusion inside a JSON string literal (quotes not
// included).
std::string json_escape(const std::string& text);

// Formats a double as a JSON token: shortest round-trippable decimal;
// NaN / Inf become `null` so every emitted document stays parseable.
std::string json_double(double value);

// Comma-tracking structural writer. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("name"); w.value("fig04");
//   w.key("rows"); w.begin_array(); w.value(1.5); w.end_array();
//   w.end_object();
//   std::string doc = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(bool flag);
  void null();
  // Emits `token` verbatim (for pre-serialized sub-documents).
  void raw(const std::string& token);

  const std::string& str() const { return out_; }

 private:
  void pre_value();

  std::string out_;
  // One entry per open container: true once the first element has been
  // written (so the next one needs a leading comma).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace mot::obs
