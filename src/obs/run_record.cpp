#include "obs/run_record.hpp"

#include <filesystem>
#include <fstream>

#include "durable/version.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/phase_timer.hpp"
#include "util/table.hpp"

namespace mot::obs {

void RunRecord::set_command_line(int argc, char** argv) {
  command_line_.assign(argv, argv + argc);
}

void RunRecord::add_config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, value);
  config_raw_.push_back(false);
}

void RunRecord::add_config(const std::string& key, std::uint64_t value) {
  config_.emplace_back(key, std::to_string(value));
  config_raw_.push_back(true);
}

void RunRecord::add_config(const std::string& key, double value) {
  config_.emplace_back(key, json_double(value));
  config_raw_.push_back(true);
}

void RunRecord::add_config(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
  config_raw_.push_back(true);
}

void RunRecord::add_table(const std::string& title, const Table& table) {
  RecordedTable recorded;
  recorded.title = title;
  recorded.columns = table.column_names();
  recorded.rows.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_columns());
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      row.push_back(table.at(r, c));
    }
    recorded.rows.push_back(std::move(row));
  }
  tables_.push_back(std::move(recorded));
}

namespace {

// Table cells are formatted numbers ("12.5000") or labels ("greedy");
// emit numbers as JSON numbers so consumers need no coercion pass.
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = cell[0] == '-' || cell[0] == '+' ? 1 : 0;
  if (i == cell.size()) return false;
  bool seen_digit = false;
  bool seen_dot = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (c >= '0' && c <= '9') {
      seen_digit = true;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

}  // namespace

std::string RunRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(std::uint64_t{1});
  w.key("bench");
  w.value(bench_);
  if (!description_.empty()) {
    w.key("description");
    w.value(description_);
  }
  if (!command_line_.empty()) {
    w.key("command_line");
    w.begin_array();
    for (const auto& arg : command_line_) w.value(arg);
    w.end_array();
  }
  w.key("git_rev");
  w.value(read_git_rev());
  // Durable-format provenance next to the code provenance: a consumer
  // holding a snapshot knows which build wrote it (header-only
  // constant; obs deliberately does not link the durable library).
  w.key("snapshot_format");
  w.value(static_cast<std::uint64_t>(durable::kSnapshotFormatVersion));

  w.key("config");
  w.begin_object();
  for (std::size_t i = 0; i < config_.size(); ++i) {
    w.key(config_[i].first);
    if (config_raw_[i]) {
      w.raw(config_[i].second);
    } else {
      w.value(config_[i].second);
    }
  }
  w.end_object();

  w.key("tables");
  w.begin_array();
  for (const RecordedTable& table : tables_) {
    w.begin_object();
    w.key("title");
    w.value(table.title);
    w.key("columns");
    w.begin_array();
    for (const auto& col : table.columns) w.value(col);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : table.rows) {
      w.begin_array();
      for (const auto& cell : row) {
        if (looks_numeric(cell)) {
          w.raw(cell[0] == '+' ? cell.substr(1) : cell);
        } else {
          w.value(cell);
        }
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("phases");
  w.begin_array();
  for (const auto& phase : PhaseTimers::global().phases()) {
    w.begin_object();
    w.key("name");
    w.value(phase.name);
    w.key("seconds");
    w.value(phase.seconds);
    w.key("count");
    w.value(phase.count);
    // Per-worker split only when the phase actually ran on pool workers
    // (a single -1 slice is the serial case and carries no information).
    if (phase.by_worker.size() > 1 ||
        (phase.by_worker.size() == 1 && phase.by_worker[0].worker >= 0)) {
      w.key("workers");
      w.begin_array();
      for (const auto& slice : phase.by_worker) {
        w.begin_object();
        w.key("worker");
        w.value(static_cast<std::int64_t>(slice.worker));
        w.key("seconds");
        w.value(slice.seconds);
        w.key("count");
        w.value(slice.count);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  if (!MetricsRegistry::global().empty()) {
    w.key("metrics");
    w.raw(MetricsRegistry::global().to_json());
  }
  w.end_object();
  return w.str();
}

bool RunRecord::write(const std::string& path) const {
  return write_text_file(path, to_json() + "\n");
}

std::string read_git_rev() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (ec) return "";
  for (int depth = 0; depth < 16 && !dir.empty(); ++depth) {
    const fs::path head = dir / ".git" / "HEAD";
    if (fs::exists(head, ec) && !ec) {
      std::ifstream in(head);
      std::string line;
      if (!std::getline(in, line)) return "";
      constexpr const char* kRefPrefix = "ref: ";
      if (line.rfind(kRefPrefix, 0) == 0) {
        const std::string ref = line.substr(5);
        std::ifstream ref_in(dir / ".git" / ref);
        std::string rev;
        if (std::getline(ref_in, rev)) return rev;
        // Packed refs: scan .git/packed-refs for the ref name.
        std::ifstream packed(dir / ".git" / "packed-refs");
        while (std::getline(packed, line)) {
          if (line.size() > 41 && line.compare(41, std::string::npos, ref) == 0) {
            return line.substr(0, 40);
          }
        }
        return "";
      }
      return line;
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return "";
}

}  // namespace mot::obs
