// Machine-readable bench run records. Each fig/tbl binary run with
// `--emit-json <path>` writes one BENCH_<name>.json document capturing
// everything a perf-trajectory tracker needs to compare runs: the exact
// config, every result table, per-phase wall-clock timings, the global
// metrics snapshot, and the git revision the binary was built from.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mot {
class Table;
}  // namespace mot

namespace mot::obs {

struct RecordedTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

class RunRecord {
 public:
  void set_bench(const std::string& name) { bench_ = name; }
  void set_description(const std::string& text) { description_ = text; }
  void set_command_line(int argc, char** argv);
  void add_config(const std::string& key, const std::string& value);
  void add_config(const std::string& key, std::uint64_t value);
  void add_config(const std::string& key, double value);
  void add_config(const std::string& key, bool value);
  void add_table(const std::string& title, const Table& table);

  const std::string& bench() const { return bench_; }
  std::size_t num_tables() const { return tables_.size(); }

  // Serializes the record: {schema, bench, description, command_line,
  // git_rev, config, tables, phases, metrics?}. Phase timings come from
  // PhaseTimers::global(); the metrics key appears only when
  // MetricsRegistry::global() is non-empty.
  std::string to_json() const;

  // Serializes and writes to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  std::string description_;
  std::vector<std::string> command_line_;
  std::vector<std::pair<std::string, std::string>> config_;
  // Config values that are numeric/bool JSON tokens rather than strings.
  std::vector<bool> config_raw_;
  std::vector<RecordedTable> tables_;
};

// Best-effort current git revision: reads .git/HEAD (following one ref
// indirection) walking up from the current directory. Returns "" when
// not in a git checkout — never shells out.
std::string read_git_rev();

}  // namespace mot::obs
