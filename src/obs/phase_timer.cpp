#include "obs/phase_timer.hpp"

namespace mot::obs {

void PhaseTimers::record(const std::string& name, double seconds) {
  for (Phase& phase : phases_) {
    if (phase.name == name) {
      phase.seconds += seconds;
      ++phase.count;
      return;
    }
  }
  phases_.push_back({name, seconds, 1});
}

void PhaseTimers::clear() { phases_.clear(); }

PhaseTimers& PhaseTimers::global() {
  static PhaseTimers timers;
  return timers;
}

}  // namespace mot::obs
