#include "obs/phase_timer.hpp"

#include "par/thread_pool.hpp"

namespace mot::obs {

void PhaseTimers::record(const std::string& name, double seconds,
                         int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  Phase* phase = nullptr;
  for (Phase& candidate : phases_) {
    if (candidate.name == name) {
      phase = &candidate;
      break;
    }
  }
  if (phase == nullptr) {
    phases_.push_back({name, 0.0, 0, {}});
    phase = &phases_.back();
  }
  phase->seconds += seconds;
  ++phase->count;
  for (WorkerSlice& slice : phase->by_worker) {
    if (slice.worker == worker) {
      slice.seconds += seconds;
      ++slice.count;
      return;
    }
  }
  phase->by_worker.push_back({worker, seconds, 1});
}

std::vector<PhaseTimers::Phase> PhaseTimers::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

bool PhaseTimers::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_.empty();
}

void PhaseTimers::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

PhaseTimers& PhaseTimers::global() {
  static PhaseTimers timers;
  return timers;
}

PhaseTimers::Scope::~Scope() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  PhaseTimers::global().record(
      name_, std::chrono::duration<double>(elapsed).count(),
      par::ThreadPool::current_worker());
}

}  // namespace mot::obs
