// Crash flight recorder: a fixed-size ring of the most recent trace
// events that is written out as JSONL only when something goes wrong —
// abnormal shard-worker exit, a wire decode error, or a chaos-oracle
// violation. During normal operation it costs one ring store per event
// (plus the optional pass-through to a chained sink) and writes
// nothing; after a failure the dump preserves the last moments of the
// process that died with the evidence.
//
// Dump files are ordinary trace JSONL (parseable by trace_analyze and
// the ci.sh smoke): one kFlightDump header line carrying the dump
// reason and retained-event count, then the retained events oldest
// first.
#pragma once

#include <memory>
#include <string>

#include "obs/trace.hpp"

namespace mot::obs {

class FlightRecorder final : public TraceSink {
 public:
  // `capacity` bounds the retained ring; `path` is where dump() writes.
  FlightRecorder(std::size_t capacity, std::string path);

  // Events are forwarded to `chain` after being recorded, so the
  // recorder can wrap a live sink (e.g. a per-shard JSONL stream)
  // without the embedder managing two installations.
  void set_chain(TraceSink* chain) { chain_ = chain; }

  void on_event(const TraceEvent& event) override;
  void flush() override;

  // Writes the retained events to `path`. First-dump-wins: later calls
  // (e.g. a signal handler racing normal teardown) are no-ops, so the
  // file always describes the first failure. Returns true if this call
  // wrote the file. `reason` must be a static string.
  bool dump(const char* reason);

  bool dumped() const;
  std::uint64_t events_dumped() const;
  std::uint64_t events_seen() const { return ring_.total_events(); }
  const std::string& path() const { return path_; }

 private:
  RingBufferSink ring_;
  TraceSink* chain_ = nullptr;
  std::string path_;
  mutable std::mutex dump_mutex_;
  bool dumped_ = false;
  std::uint64_t events_dumped_ = 0;
};

// Process-global recorder hook, so teardown paths that cannot carry a
// pointer (signal handlers, the chaos oracle) can still trigger a dump.
// Same contract as install_trace_sink: the recorder must outlive its
// installation, and installation is not thread-safe. Note that dump()
// is not async-signal-safe (it allocates and does buffered IO); the
// cluster runner only invokes it from SIGTERM while the worker sits in
// its poll loop, which is benign in practice.
FlightRecorder* install_flight_recorder(FlightRecorder* recorder);
FlightRecorder* flight_recorder();

}  // namespace mot::obs
