// Offline analysis of trace JSONL: merges per-shard span streams back
// into one causally-ordered tree per trace id and audits them.
//
// A cross-shard walk emits its spans into whichever shard's sink was
// active when each hop ran, so no single file holds a whole trace. The
// analyzer re-joins them by trace id and checks the properties the
// tracing design guarantees (DESIGN.md §12):
//   - connectivity: every trace has exactly one root span (parent 0)
//     and no orphans (a parent id that matches no span in the trace) —
//     i.e. the context re-materialized correctly at every boundary;
//   - uniqueness: span ids never repeat within a trace (the allocator
//     cursor travels with the walk);
//   - conservation: every wire_encode has a matching wire_decode across
//     the merged files (no frame vanished between shards);
//   - cost: the sum of `charged` over all spans reconciles with the
//     cluster CostMeter total, extending PR 2's trace-vs-meter
//     reconciliation across process boundaries.
//
// The JSONL parser here is deliberately minimal: it reads exactly the
// flat one-line objects event_to_json() emits (string values only for
// "ev"/"label", numeric everything else) — the repo's JsonWriter is
// write-only by design, and depending on a general JSON parser for a
// self-produced format would be dead weight.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace mot::obs {

// One record parsed back off a trace JSONL line. Defaults mirror
// TraceEvent's (which event_to_json omits); `shard` tags which input
// stream the line came from.
struct ParsedEvent {
  std::string ev;
  double t = -1.0;
  std::uint64_t object = kNoObject;
  std::uint32_t from = kNoNode;
  std::uint32_t to = kNoNode;
  std::int32_t level = -1;
  double dist = 0.0;
  double charged = 0.0;
  std::uint64_t aux = 0;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string label;
  int shard = -1;
};

// Parses one event_to_json() line. Returns false (leaving `out` in an
// unspecified state) on anything that is not a flat JSON object.
bool parse_trace_line(std::string_view line, ParsedEvent* out);

// Per-trace audit result.
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::size_t spans = 0;           // span-carrying events in the trace
  std::size_t roots = 0;           // spans with parent == 0
  std::size_t orphans = 0;         // parent id matching no span
  std::size_t duplicate_spans = 0; // span ids seen more than once
  std::size_t critical_path = 0;   // spans on the longest root-to-leaf chain
  std::size_t shards = 0;          // distinct input streams touched
  double cost = 0.0;               // sum of `charged` over the spans
  std::string root_label;          // message type of the root hop

  bool connected() const {
    return roots == 1 && orphans == 0 && duplicate_spans == 0;
  }
};

struct TraceReport {
  std::vector<TraceSummary> traces;  // ascending trace id
  std::size_t events = 0;            // parsed events, all streams
  std::size_t span_events = 0;       // events carrying a span id
  std::size_t connected = 0;         // traces passing connected()
  std::uint64_t wire_encodes = 0;
  std::uint64_t wire_decodes = 0;
  double span_cost = 0.0;            // sum of cost over all traces
  double untraced_cost = 0.0;        // charged events without a trace id

  bool all_connected() const { return connected == traces.size(); }
  bool conserved() const { return wire_encodes == wire_decodes; }
};

class TraceAnalyzer {
 public:
  void add_event(const ParsedEvent& event);
  // Returns false on a malformed line (also tallied in parse_errors()).
  bool add_line(std::string_view line, int shard);
  // Reads one JSONL file line by line; false if the file is unreadable.
  bool add_file(const std::string& path, int shard);

  std::size_t parse_errors() const { return parse_errors_; }
  TraceReport report() const;

 private:
  struct SpanRec {
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    double charged = 0.0;
    int shard = -1;
    std::string label;
  };

  // Ordered by trace id so reports are deterministic across input
  // orderings (shard files can be passed in any order).
  std::map<std::uint64_t, std::vector<SpanRec>> traces_;
  std::size_t events_ = 0;
  std::size_t span_events_ = 0;
  std::size_t parse_errors_ = 0;
  std::uint64_t wire_encodes_ = 0;
  std::uint64_t wire_decodes_ = 0;
  double untraced_cost_ = 0.0;
};

}  // namespace mot::obs
