// Structured tracing for the MOT stack.
//
// The paper's claims are cost-accounting claims: maintenance ratio
// O(min{log n, log D}), O(1) query stretch, O(log D) load. When a ratio
// regresses, an end-of-run aggregate cannot say *which* climb, chain
// splice, or de Bruijn hop spent the distance. This facility records
// exactly that: every point where a tracker charges its CostMeter (and
// every protocol/channel event around those charges) can emit one typed
// TraceEvent to an installed TraceSink.
//
// Zero-cost guarantee: with no sink installed, emission is a single
// inlined null-pointer test — no event is constructed, nothing is
// charged, and runs are bit-identical in cost to an untraced build
// (guarded by the parity tests in tests/test_obs.cpp). Tracing never
// writes to a CostMeter; `charged` merely mirrors what the instrumented
// code charged, so the sum of `charged` over a trace reconciles with
// CostMeter::total_distance().
//
// Determinism: events carry simulator time and seeded protocol state
// only — never wall-clock — so the same seed yields an identical event
// stream (also guarded by tests).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace mot::obs {

enum class Ev : std::uint8_t {
  // Scoped spans (MOT_SPAN): logical operation boundaries.
  kSpanBegin,
  kSpanEnd,
  // Chain-engine hops (ChainTracker / ConcurrentEngine).
  kClimbHop,      // upward walk hop of a publish / move / query
  kDescendHop,    // chain descent hop toward the proxy
  kDeleteHop,     // fragment-tear hop of a maintenance delete
  kSpHop,         // special-parent bookkeeping hop
  kSdlJump,       // query jumping to the lowest special child
  kAccessRoute,   // delegate (de Bruijn) routing cost of an entry access
  kSplice,        // chain spliced at the meet node
  kRepairHop,     // evacuation / crash chain-repair hop
  // Concurrent-engine coordination.
  kQueryRestart,  // climb restarted after a torn descent
  kQueryForward,  // parked / redirected query forwarded to the new proxy
  kTokenWait,     // move parked waiting for the per-object token
  // Routing layers.
  kRouteHop,       // one de Bruijn cluster-route hop (host to host)
  kRouteComputed,  // physical router produced a route (aux = hop count)
  // Distributed protocol link layer.
  kMsgSend,     // logical protocol message sent (label = message type)
  kAck,         // receiver acknowledged a DATA frame
  kRetransmit,  // retransmission timer fired
  kDuplicate,   // receiver-side duplicate suppressed
  // Channel faults.
  kChannelDrop,
  kChannelDuplicate,
  kChannelDelay,
  kCrash,
  // Crash recovery.
  kRecoverySplice,   // chain spliced around a dead sensor
  kRecoveryHop,      // rebuild climb / SDL re-registration hop
  kRecoveryRebuild,  // object re-published from its physical position
  kQueryRescue,      // query restarted because of a crash
  kQueryAbort,       // query abandoned (its requester died)
  // Partitions and query resilience (src/chaos/).
  kPartitionCut,       // partition opened (aux = partition id)
  kPartitionHeal,      // partition healed (aux = partition id)
  kQueryFailover,      // detection-list read failed over to a replica
  kQueryHedge,         // hedged duplicate walker issued from the origin
  kQueryRetry,         // query re-issued after its deadline expired
  kQueryDeadlineAbort, // query aborted: retry budget exhausted
  // Overload resilience (src/overload/ + sim/service_model).
  kShed,            // admission control shed a message (label = reason)
  kQueryDegraded,   // overloaded node answered from a stale entry
  kSiblingRedirect, // hot next hop bypassed via its cluster sibling
  kCreditStall,     // sender parked a frame: credit window exhausted
  kBreakerTrip,     // circuit breaker opened on consecutive timeouts
  kBreakerProbe,    // half-open probe elected after the cooldown
  kBreakerClose,    // probe acked: breaker closed, parked frames resume
  // Wire protocol + socket transport (src/wire/ + src/netio/).
  kWireEncode,  // frame serialized for a socket (aux = bytes on wire)
  kWireDecode,  // frame parsed off a socket (aux = bytes on wire)
  // Crash flight recorder (obs/flight_recorder): header record written
  // at the top of a flight dump (label = dump reason, aux = events
  // retained) so a dump file is self-describing.
  kFlightDump,
  // Adaptive control plane (src/adapt/).
  kWindowRaise,    // AIMD cap rose after a clean ack epoch (aux = cap)
  kWindowShrink,   // AIMD cap cut on loss/breaker feedback (aux = cap)
  kTunerStep,      // gradient step applied to a node's thresholds
  kReplicaPlace,   // load-aware replica placed on a hot owner
  kReplicaRetire,  // placed replica retired after cold epochs
};

// Stable lowercase name used as the "ev" field of JSONL traces.
const char* ev_name(Ev type);

inline constexpr std::uint64_t kNoObject = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

// One trace record. Plain integers/doubles only (no graph types) so the
// module sits below every instrumented layer. Unset fields keep their
// defaults and are omitted from JSONL output.
struct TraceEvent {
  Ev type = Ev::kSpanBegin;
  double t = -1.0;                    // simulator time; -1 = none
  std::uint64_t object = kNoObject;   // tracked object, if any
  std::uint32_t from = kNoNode;       // physical source node
  std::uint32_t to = kNoNode;         // physical destination node
  std::int32_t level = -1;            // overlay level, if any
  double dist = 0.0;                  // hop / route distance
  double charged = 0.0;               // amount charged to the CostMeter
  std::uint64_t aux = 0;              // seq number / query id / count
  // Causal trace context: the walk's deterministic trace id, this hop's
  // span id, and the span it hangs off (0 = untraced / root). Spans
  // survive shard boundaries — see DESIGN.md §12.
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  const char* label = nullptr;        // static string: span / msg type

  bool operator==(const TraceEvent& other) const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

namespace detail {
extern TraceSink* g_sink;
}  // namespace detail

// Installs `sink` as the process-wide trace sink (nullptr uninstalls).
// The sink must outlive its installation; not thread-safe — install
// before injecting traffic. Returns the previously installed sink.
TraceSink* install_trace_sink(TraceSink* sink);

inline TraceSink* trace_sink() { return detail::g_sink; }
inline bool tracing() { return detail::g_sink != nullptr; }

// The emission fast path: one predictable branch when disabled. Call as
//   if (obs::tracing()) obs::emit({.type = ..., ...});
// so the event is only constructed when a sink is listening.
inline void emit(const TraceEvent& event) {
  if (detail::g_sink != nullptr) detail::g_sink->on_event(event);
}

// Fixed-capacity in-memory sink: keeps the most recent `capacity`
// events, counting what it had to overwrite. The cheap default for
// tests and post-mortem ring dumps. Appends are mutex-guarded so the
// sink survives the parallel sweep engine (event order across worker
// threads is then the interleaving order, not deterministic).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override;

  // Retained events, oldest first.
  std::vector<TraceEvent> events() const;
  std::uint64_t total_events() const;
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> buffer_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

// Streams events as JSON Lines: one self-contained object per line, so
// traces are consumable with `jq` / pandas without a custom parser.
// Field order and names are stable; unset fields are omitted.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  bool ok() const { return static_cast<bool>(out_); }
  void on_event(const TraceEvent& event) override;
  void flush() override;
  std::uint64_t events_written() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t written_ = 0;
};

// Serializes one event as a single JSON object (no trailing newline).
std::string event_to_json(const TraceEvent& event, std::uint64_t index);

// RAII span: emits kSpanBegin / kSpanEnd around a scope. The sink is
// re-checked at each end, so installing or removing a sink mid-span is
// safe (the unmatched half is simply absent from the stream).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::uint64_t object = kNoObject)
      : name_(name), object_(object) {
    emit({.type = Ev::kSpanBegin, .object = object_, .label = name_});
  }
  ~ScopedSpan() {
    emit({.type = Ev::kSpanEnd, .object = object_, .label = name_});
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t object_;
};

}  // namespace mot::obs

#define MOT_OBS_CONCAT_INNER(a, b) a##b
#define MOT_OBS_CONCAT(a, b) MOT_OBS_CONCAT_INNER(a, b)
// Scoped span over the enclosing block; extra args forward to ScopedSpan.
#define MOT_SPAN(...) \
  ::mot::obs::ScopedSpan MOT_OBS_CONCAT(mot_obs_span_, __LINE__){__VA_ARGS__}
