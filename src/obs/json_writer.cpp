#include "obs/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace mot::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, res.ptr);
  // to_chars may produce "1e+20"-style tokens, which are valid JSON;
  // bare integers like "3" are too. Nothing to fix up.
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  pre_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  pre_value();
  out_ += json_double(number);
}

void JsonWriter::value(std::int64_t number) {
  pre_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  pre_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  pre_value();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  pre_value();
  out_ += "null";
}

void JsonWriter::raw(const std::string& token) {
  pre_value();
  out_ += token;
}

}  // namespace mot::obs
