#include "obs/trace_analysis.hpp"

#include <cstdlib>
#include <fstream>
#include <set>
#include <unordered_map>
#include <utility>

namespace mot::obs {

namespace {

void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
}

bool take(std::string_view& s, char c) {
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// JSON string with the escapes json_escape() can produce. \uXXXX is
// only accepted for code points below 0x80 — the writer only emits it
// for control characters, and labels are static ASCII identifiers.
bool parse_string(std::string_view& s, std::string* out) {
  if (!take(s, '"')) return false;
  out->clear();
  while (!s.empty()) {
    const char c = s.front();
    s.remove_prefix(1);
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (s.empty()) return false;
    const char e = s.front();
    s.remove_prefix(1);
    switch (e) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (s.size() < 4) return false;
        int code = 0;
        for (int i = 0; i < 4; ++i) {
          const int d = hex_digit(s[static_cast<std::size_t>(i)]);
          if (d < 0) return false;
          code = code * 16 + d;
        }
        s.remove_prefix(4);
        if (code >= 0x80) return false;
        out->push_back(static_cast<char>(code));
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

// One JSON number token, captured both ways; `is_int` is true when the
// token has no fraction or exponent (safe to read as uint64).
struct Number {
  double as_double = 0.0;
  std::uint64_t as_u64 = 0;
  bool is_int = false;
};

bool parse_number(std::string_view& s, Number* out) {
  std::size_t i = 0;
  bool integral = true;
  while (i < s.size()) {
    const char c = s[i];
    const bool digit = c >= '0' && c <= '9';
    if (c == '.' || c == 'e' || c == 'E') integral = false;
    if (!digit && c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-') {
      break;
    }
    ++i;
  }
  if (i == 0) return false;
  const std::string token(s.substr(0, i));
  s.remove_prefix(i);
  char* end = nullptr;
  out->as_double = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  out->is_int = integral && token.front() != '-';
  if (out->is_int) out->as_u64 = std::strtoull(token.c_str(), nullptr, 10);
  return true;
}

}  // namespace

bool parse_trace_line(std::string_view line, ParsedEvent* out) {
  *out = ParsedEvent{};
  skip_ws(line);
  if (!take(line, '{')) return false;
  skip_ws(line);
  bool first = true;
  while (!take(line, '}')) {
    if (!first && !take(line, ',')) return false;
    first = false;
    skip_ws(line);
    std::string key;
    if (!parse_string(line, &key)) return false;
    skip_ws(line);
    if (!take(line, ':')) return false;
    skip_ws(line);
    if (key == "ev" || key == "label") {
      std::string value;
      if (!parse_string(line, &value)) return false;
      (key == "ev" ? out->ev : out->label) = std::move(value);
    } else {
      Number n;
      if (!parse_number(line, &n)) return false;
      if (key == "t") {
        out->t = n.as_double;
      } else if (key == "dist") {
        out->dist = n.as_double;
      } else if (key == "charged") {
        out->charged = n.as_double;
      } else if (n.is_int) {
        if (key == "obj") out->object = n.as_u64;
        else if (key == "from") out->from = static_cast<std::uint32_t>(n.as_u64);
        else if (key == "to") out->to = static_cast<std::uint32_t>(n.as_u64);
        else if (key == "level") out->level = static_cast<std::int32_t>(n.as_u64);
        else if (key == "aux") out->aux = n.as_u64;
        else if (key == "trace") out->trace = n.as_u64;
        else if (key == "span") out->span = n.as_u64;
        else if (key == "parent") out->parent = n.as_u64;
        // "i" and unknown numeric keys are read and discarded, so the
        // format can grow fields without breaking old analyzers.
      }
    }
    skip_ws(line);
  }
  skip_ws(line);
  return line.empty();
}

void TraceAnalyzer::add_event(const ParsedEvent& event) {
  ++events_;
  if (event.ev == "wire_encode") ++wire_encodes_;
  if (event.ev == "wire_decode") ++wire_decodes_;
  if (event.trace == 0 || event.span == 0) {
    untraced_cost_ += event.charged;
    return;
  }
  ++span_events_;
  traces_[event.trace].push_back(SpanRec{event.span, event.parent,
                                         event.charged, event.shard,
                                         event.label});
}

bool TraceAnalyzer::add_line(std::string_view line, int shard) {
  ParsedEvent event;
  if (!parse_trace_line(line, &event)) {
    ++parse_errors_;
    return false;
  }
  event.shard = shard;
  add_event(event);
  return true;
}

bool TraceAnalyzer::add_file(const std::string& path, int shard) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) add_line(line, shard);
  }
  return true;
}

TraceReport TraceAnalyzer::report() const {
  TraceReport report;
  report.events = events_;
  report.span_events = span_events_;
  report.wire_encodes = wire_encodes_;
  report.wire_decodes = wire_decodes_;
  report.untraced_cost = untraced_cost_;
  report.traces.reserve(traces_.size());
  for (const auto& [trace_id, spans] : traces_) {
    TraceSummary s;
    s.trace_id = trace_id;
    s.spans = spans.size();
    std::unordered_map<std::uint64_t, const SpanRec*> by_id;
    by_id.reserve(spans.size());
    std::set<int> shards;
    for (const SpanRec& rec : spans) {
      if (!by_id.emplace(rec.span, &rec).second) ++s.duplicate_spans;
      s.cost += rec.charged;
      if (rec.shard >= 0) shards.insert(rec.shard);
      if (rec.parent == 0) {
        ++s.roots;
        if (s.roots == 1) s.root_label = rec.label;
      }
    }
    s.shards = shards.size();
    for (const SpanRec& rec : spans) {
      if (rec.parent != 0 && by_id.find(rec.parent) == by_id.end()) {
        ++s.orphans;
      }
    }
    // Depth of every span by walking parent chains once (memoized);
    // the critical path is the deepest chain. Orphan parents count as
    // depth-0 anchors so a broken trace still yields a finite answer.
    std::unordered_map<std::uint64_t, std::size_t> depth;
    depth.reserve(spans.size());
    for (const SpanRec& rec : spans) {
      std::vector<std::uint64_t> chain;
      std::uint64_t cursor = rec.span;
      std::size_t base = 0;
      while (true) {
        if (const auto d = depth.find(cursor); d != depth.end()) {
          base = d->second;
          break;
        }
        const auto it = by_id.find(cursor);
        if (it == by_id.end()) break;  // orphaned parent
        chain.push_back(cursor);
        const std::uint64_t parent = it->second->parent;
        if (parent == 0 || chain.size() > spans.size()) break;
        cursor = parent;
      }
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        depth[*rit] = ++base;
      }
    }
    for (const auto& [span, d] : depth) {
      (void)span;
      if (d > s.critical_path) s.critical_path = d;
    }
    if (s.connected()) ++report.connected;
    report.span_cost += s.cost;
    report.traces.push_back(std::move(s));
  }
  return report;
}

}  // namespace mot::obs
