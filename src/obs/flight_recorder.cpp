#include "obs/flight_recorder.hpp"

#include <fstream>
#include <utility>

namespace mot::obs {

FlightRecorder::FlightRecorder(std::size_t capacity, std::string path)
    : ring_(capacity), path_(std::move(path)) {}

void FlightRecorder::on_event(const TraceEvent& event) {
  ring_.on_event(event);
  if (chain_ != nullptr) chain_->on_event(event);
}

void FlightRecorder::flush() {
  if (chain_ != nullptr) chain_->flush();
}

bool FlightRecorder::dump(const char* reason) {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  if (dumped_) return false;
  dumped_ = true;
  std::ofstream out(path_);
  if (!out) return false;
  const std::vector<TraceEvent> retained = ring_.events();
  TraceEvent header;
  header.type = Ev::kFlightDump;
  header.aux = retained.size();
  header.label = reason;
  std::uint64_t index = 0;
  out << event_to_json(header, index++) << '\n';
  for (const TraceEvent& event : retained) {
    out << event_to_json(event, index++) << '\n';
  }
  out.flush();
  events_dumped_ = retained.size();
  return static_cast<bool>(out);
}

bool FlightRecorder::dumped() const {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  return dumped_;
}

std::uint64_t FlightRecorder::events_dumped() const {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  return events_dumped_;
}

namespace {
FlightRecorder* g_flight_recorder = nullptr;
}  // namespace

FlightRecorder* install_flight_recorder(FlightRecorder* recorder) {
  FlightRecorder* previous = g_flight_recorder;
  g_flight_recorder = recorder;
  return previous;
}

FlightRecorder* flight_recorder() { return g_flight_recorder; }

}  // namespace mot::obs
