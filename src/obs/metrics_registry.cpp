#include "obs/metrics_registry.hpp"

#include <algorithm>

#include "obs/json_writer.hpp"
#include "util/check.hpp"

namespace mot::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  MOT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void FixedHistogram::observe(double sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += sample;
}

void FixedHistogram::absorb(const std::vector<std::uint64_t>& counts,
                            double sum, std::uint64_t count) {
  MOT_CHECK(counts.size() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += counts[i];
  sum_ += sum;
  count_ += count;
}

namespace {

std::string entry_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Kind kind,
    const std::vector<double>* bounds) {
  const std::string key = entry_key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    MOT_CHECK(it->second->kind == kind);
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<FixedHistogram>(*bounds);
      break;
  }
  Entry& ref = *entry;
  index_.emplace(key, &ref);
  entries_.push_back(std::move(entry));
  return ref;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return *find_or_create(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kGauge, nullptr).gauge;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           const std::vector<double>& bounds,
                                           const Labels& labels) {
  return *find_or_create(name, labels, Kind::kHistogram, &bounds).histogram;
}

void MetricsRegistry::clear() {
  index_.clear();
  entries_.clear();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_array();
  for (const auto& entry : entries_) {
    w.begin_object();
    w.key("name");
    w.value(entry->name);
    if (!entry->labels.empty()) {
      w.key("labels");
      w.begin_object();
      for (const auto& [k, v] : entry->labels) {
        w.key(k);
        w.value(v);
      }
      w.end_object();
    }
    w.key("type");
    switch (entry->kind) {
      case Kind::kCounter:
        w.value("counter");
        w.key("value");
        w.value(entry->counter->value());
        break;
      case Kind::kGauge:
        w.value("gauge");
        w.key("value");
        w.value(entry->gauge->value());
        break;
      case Kind::kHistogram: {
        w.value("histogram");
        const FixedHistogram& h = *entry->histogram;
        w.key("count");
        w.value(h.count());
        w.key("sum");
        w.value(h.sum());
        w.key("bounds");
        w.begin_array();
        for (const double b : h.bounds()) w.value(b);
        w.end_array();
        w.key("buckets");
        w.begin_array();
        for (const std::uint64_t c : h.bucket_counts()) w.value(c);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  return w.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_name(k) + "=\"" + json_escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& entry : entries_) {
    const std::string name = prom_name(entry->name);
    switch (entry->kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + prom_labels(entry->labels) + " " +
               std::to_string(entry->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + prom_labels(entry->labels) + " " +
               json_double(entry->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const FixedHistogram& h = *entry->histogram;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          out += name + "_bucket" +
                 prom_labels(entry->labels, "le", json_double(h.bounds()[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" + prom_labels(entry->labels, "le", "+Inf") +
               " " + std::to_string(h.count()) + "\n";
        out += name + "_sum" + prom_labels(entry->labels) + " " +
               json_double(h.sum()) + "\n";
        out += name + "_count" + prom_labels(entry->labels) + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot m;
    m.name = entry->name;
    m.labels = entry->labels;
    switch (entry->kind) {
      case Kind::kCounter:
        m.kind = MetricKind::kCounter;
        m.counter_value = entry->counter->value();
        break;
      case Kind::kGauge:
        m.kind = MetricKind::kGauge;
        m.gauge_value = entry->gauge->value();
        break;
      case Kind::kHistogram:
        m.kind = MetricKind::kHistogram;
        m.bounds = entry->histogram->bounds();
        m.buckets = entry->histogram->bucket_counts();
        m.sum = entry->histogram->sum();
        m.count = entry->histogram->count();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

void MetricsRegistry::absorb(const MetricSnapshot& metric,
                             const Labels& extra) {
  Labels labels = metric.labels;
  labels.insert(labels.end(), extra.begin(), extra.end());
  switch (metric.kind) {
    case MetricKind::kCounter:
      counter(metric.name, labels).increment(metric.counter_value);
      break;
    case MetricKind::kGauge:
      gauge(metric.name, labels).add(metric.gauge_value);
      break;
    case MetricKind::kHistogram:
      histogram(metric.name, metric.bounds, labels)
          .absorb(metric.buckets, metric.sum, metric.count);
      break;
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace mot::obs
