// Named-metric registry: counters, gauges, and fixed-bucket histograms,
// each optionally labeled (e.g. by node or overlay level), behind one
// snapshot/export API with JSON and Prometheus-text exporters.
//
// This absorbs the ad-hoc tallies that grew per subsystem — `CostMeter`
// (sim), `ProtocolStats` (proto), `ReliabilityInputs` (metrics) — each
// of those keeps its cheap inline counters on the hot path, and an
// export bridge (export_cost_meter / export_protocol_stats /
// export_reliability) projects them into the registry at snapshot time,
// so every bench and test reads one uniform surface.
//
// Metric handles returned by counter()/gauge()/histogram() are stable
// for the registry's lifetime: instruments are heap-allocated and never
// move, so hot loops can hoist the lookup and bump a reference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mot::obs {

// Label set attached to an instrument, e.g. {{"node","17"},{"level","3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Histogram over caller-supplied bucket upper bounds. A sample lands in
// the first bucket whose bound is >= the sample; larger samples land in
// the implicit overflow bucket. Cumulative counts (Prometheus style)
// are computed at export time.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> bounds);

  void observe(double sample);
  // Merges pre-bucketed samples (e.g. a remote shard's snapshot): adds
  // `counts` elementwise — which observe() cannot reproduce, since the
  // per-bucket placement is lost — plus the sample sum and count.
  // `counts` must have bounds().size() + 1 entries.
  void absorb(const std::vector<std::uint64_t>& counts, double sum,
              std::uint64_t count);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts; back() is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Value-typed copy of one instrument, detached from any registry: what
// a shard worker ships over the wire in a TelemetryReport frame and
// what the coordinator absorbs into its cluster-level registry.
enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1,
                                       kHistogram = 2 };
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter_value = 0;       // kCounter
  double gauge_value = 0.0;              // kGauge
  std::vector<double> bounds;            // kHistogram
  std::vector<std::uint64_t> buckets;    // kHistogram: bounds+1 entries
  double sum = 0.0;                      // kHistogram
  std::uint64_t count = 0;               // kHistogram

  bool operator==(const MetricSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  // Returns the instrument registered under (name, labels), creating it
  // on first use. References remain valid until clear()/destruction.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  // `bounds` is consulted only on first registration of (name, labels).
  FixedHistogram& histogram(const std::string& name,
                            const std::vector<double>& bounds,
                            const Labels& labels = {});

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear();

  // Snapshot exporters; instruments appear in registration order.
  std::string to_json() const;
  std::string to_prometheus() const;

  // Value-typed copies of every instrument, in registration order.
  std::vector<MetricSnapshot> snapshot() const;
  // Merges one snapshot into this registry under labels + `extra`
  // (e.g. {{"shard","2"}}): counters/histograms accumulate, gauges add —
  // so absorbing N shards' snapshots yields cluster totals.
  void absorb(const MetricSnapshot& metric, const Labels& extra = {});

  // Process-wide registry used by the bench telemetry layer.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        Kind kind, const std::vector<double>* bounds);

  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, Entry*> index_;  // keyed name+labels
};

}  // namespace mot::obs
