// Per-phase wall-clock timers: hierarchy build, op loop, recovery, …
// surfaced in every bench and embedded in BENCH_*.json run records.
//
// This is the ONE place wall-clock enters the observability layer.
// Trace events never carry wall-clock (it would break same-seed stream
// determinism); phase timings are aggregated separately and reported
// only at the run level.
//
// Thread-safety: scopes may close on any thread (the parallel sweep
// engine runs whole experiment cells on pool workers), so record() is
// mutex-guarded. Each sample is also attributed to the pool worker that
// produced it (-1 = a thread outside the pool, e.g. main), so benches
// can report how evenly the phase spread across workers.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mot::obs {

class PhaseTimers {
 public:
  struct WorkerSlice {
    int worker = -1;  // pool worker index; -1 = non-pool thread
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;  // number of scopes merged into this phase
    // Per-worker breakdown, in first-seen worker order. Has more than
    // one entry only when the phase actually ran on several threads.
    std::vector<WorkerSlice> by_worker;
  };

  // Adds `seconds` to the phase named `name` (created on first use;
  // phases report in first-use order), attributed to `worker`.
  void record(const std::string& name, double seconds, int worker = -1);

  // Snapshot of all phases. Copies under the lock — callers typically
  // read once per run, after parallel work has joined.
  std::vector<Phase> phases() const;
  bool empty() const;
  void clear();

  // Process-wide timers read by the bench telemetry layer.
  static PhaseTimers& global();

  // RAII scope feeding the global timers on destruction.
  class Scope {
   public:
    explicit Scope(const char* name)
        : name_(name), start_(std::chrono::steady_clock::now()) {}
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  mutable std::mutex mutex_;
  std::vector<Phase> phases_;
};

}  // namespace mot::obs

#define MOT_OBS_PHASE_CONCAT_INNER(a, b) a##b
#define MOT_OBS_PHASE_CONCAT(a, b) MOT_OBS_PHASE_CONCAT_INNER(a, b)
// Times the enclosing block under the given phase name.
#define MOT_PHASE(name)                                       \
  ::mot::obs::PhaseTimers::Scope MOT_OBS_PHASE_CONCAT(        \
      mot_obs_phase_, __LINE__) {                             \
    name                                                      \
  }
