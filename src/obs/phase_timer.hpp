// Per-phase wall-clock timers: hierarchy build, op loop, recovery, …
// surfaced in every bench and embedded in BENCH_*.json run records.
//
// This is the ONE place wall-clock enters the observability layer.
// Trace events never carry wall-clock (it would break same-seed stream
// determinism); phase timings are aggregated separately and reported
// only at the run level.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mot::obs {

class PhaseTimers {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;  // number of scopes merged into this phase
  };

  // Adds `seconds` to the phase named `name` (created on first use;
  // phases report in first-use order).
  void record(const std::string& name, double seconds);

  const std::vector<Phase>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void clear();

  // Process-wide timers read by the bench telemetry layer.
  static PhaseTimers& global();

  // RAII scope feeding the global timers on destruction.
  class Scope {
   public:
    explicit Scope(const char* name)
        : name_(name), start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      PhaseTimers::global().record(
          name_, std::chrono::duration<double>(elapsed).count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::vector<Phase> phases_;
};

}  // namespace mot::obs

#define MOT_OBS_PHASE_CONCAT_INNER(a, b) a##b
#define MOT_OBS_PHASE_CONCAT(a, b) MOT_OBS_PHASE_CONCAT_INNER(a, b)
// Times the enclosing block under the given phase name.
#define MOT_PHASE(name)                                       \
  ::mot::obs::PhaseTimers::Scope MOT_OBS_PHASE_CONCAT(        \
      mot_obs_phase_, __LINE__) {                             \
    name                                                      \
  }
