// Spanning-tree tracking structures used by the traffic-conscious
// baselines the paper compares against (Section 1.3 / Section 8):
//
//   * STUN (Kung & Vlah [18]) — Drain-And-Balance: components are merged
//     along edges in descending detection-rate order, bucketed by rate
//     thresholds, so high-traffic sensors join deep in the tree and the
//     overall shape ignores geometry. Rooted at the sink.
//   * DAT (Lin et al. [21]) — deviation-avoidance tree: every node's tree
//     path to the sink is a shortest path in G; among shortest-path
//     predecessors each node picks the highest-rate edge.
//   * Z-DAT (Lin et al. [21]) — the sensing region is split into
//     recursive quadrants ("zones"); zone members attach to their zone
//     head, heads attach up the quadtree, the top head attaches to the
//     sink. Requires node positions.
//
// All trees are logical overlays: an edge (child, parent) costs the
// shortest-path distance in G between its endpoints.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace mot {

// Detection rates per undirected edge, as the traffic-conscious baselines
// assume are known (we estimate them from a training trace).
class EdgeRates {
 public:
  void record(NodeId u, NodeId v, double rate = 1.0);
  double rate(NodeId u, NodeId v) const;  // 0 if never recorded
  std::size_t distinct_edges() const { return rates_.size(); }

 private:
  static std::uint64_t key(NodeId u, NodeId v);
  std::unordered_map<std::uint64_t, double> rates_;
};

struct SpanningTree {
  NodeId root = kInvalidNode;          // the sink
  std::vector<NodeId> parent;          // parent[root] == root
  std::vector<int> depth;              // depth[root] == 0
  int max_depth = 0;

  std::size_t num_nodes() const { return parent.size(); }
  bool is_valid() const;               // connected, acyclic, rooted
};

// Rebuilds depth/max_depth from the parent array; aborts on cycles.
void recompute_depths(SpanningTree& tree);

// The sink used across baselines: the node nearest the network's
// geometric/graph center (ties to lowest ID).
NodeId choose_sink(const Graph& graph);

// STUN's Drain-And-Balance hierarchy (Kung & Vlah [18]): a logical
// binary merge tree (dendrogram) whose leaves are the sensors. Edges are
// processed in descending detection-rate order, bucketed into rate
// thresholds; within a bucket components pair up balanced. Every internal
// logical node is hosted at a physical sensor — the host of its
// higher-rate child (the "drain") — and the root is hosted at the sink.
// Maintenance and queries climb leaf -> host -> host...; because hosting
// follows rates rather than geometry, those hops can cross the network,
// which is exactly the weakness the paper demonstrates.
struct Dendrogram {
  struct Node {
    std::int32_t parent = -1;  // index into `nodes`; root points to itself
    NodeId host = kInvalidNode;
    double rate_mass = 0.0;    // accumulated detection rate in the subtree
  };
  std::size_t num_sensors = 0;
  std::vector<Node> nodes;  // 0..num_sensors-1 are the sensor leaves
  std::int32_t root = -1;

  bool is_valid() const;
  int depth_of(std::size_t node) const;
  int max_depth() const;
};

Dendrogram build_stun_dendrogram(const Graph& graph, const EdgeRates& rates,
                                 NodeId sink, int threshold_buckets = 6);

SpanningTree build_dat(const Graph& graph, const EdgeRates& rates,
                       NodeId sink);

SpanningTree build_zdat(const Graph& graph, const DistanceOracle& oracle,
                        NodeId sink, std::size_t zone_capacity = 4,
                        int max_zone_depth = 12);

}  // namespace mot
