#include "baselines/spanning_tree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"

namespace mot {

std::uint64_t EdgeRates::key(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void EdgeRates::record(NodeId u, NodeId v, double rate) {
  MOT_EXPECTS(u != v && rate >= 0.0);
  rates_[key(u, v)] += rate;
}

double EdgeRates::rate(NodeId u, NodeId v) const {
  const auto it = rates_.find(key(u, v));
  return it == rates_.end() ? 0.0 : it->second;
}

bool SpanningTree::is_valid() const {
  const std::size_t n = parent.size();
  if (root >= n || parent[root] != root) return false;
  for (NodeId v = 0; v < n; ++v) {
    // Walk to the root; bounded by n steps (cycle detection).
    NodeId at = v;
    std::size_t steps = 0;
    while (at != root) {
      at = parent[at];
      if (++steps > n) return false;
    }
  }
  return true;
}

void recompute_depths(SpanningTree& tree) {
  const std::size_t n = tree.parent.size();
  tree.depth.assign(n, -1);
  tree.depth[tree.root] = 0;
  tree.max_depth = 0;
  for (NodeId v = 0; v < n; ++v) {
    // Walk up until a node with known depth, then unwind.
    std::vector<NodeId> path;
    NodeId at = v;
    while (tree.depth[at] < 0) {
      path.push_back(at);
      at = tree.parent[at];
      MOT_CHECK(path.size() <= n);  // acyclic
    }
    int d = tree.depth[at];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      tree.depth[*it] = ++d;
    }
    tree.max_depth = std::max(tree.max_depth, tree.depth[v]);
  }
}

NodeId choose_sink(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  MOT_EXPECTS(n >= 1);
  if (graph.has_positions()) {
    double cx = 0.0;
    double cy = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      cx += graph.position(v).x;
      cy += graph.position(v).y;
    }
    cx /= static_cast<double>(n);
    cy /= static_cast<double>(n);
    NodeId best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      const double dx = graph.position(v).x - cx;
      const double dy = graph.position(v).y - cy;
      const double d = dx * dx + dy * dy;
      if (d < best_dist) {
        best_dist = d;
        best = v;
      }
    }
    return best;
  }
  // No embedding: pick the node with minimum eccentricity.
  NodeId best = 0;
  Weight best_ecc = kInfiniteDistance;
  for (NodeId v = 0; v < n; ++v) {
    const Weight ecc = eccentricity(graph, v);
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = v;
    }
  }
  return best;
}

namespace {

struct RatedEdge {
  NodeId u;
  NodeId v;
  double rate;
};

std::vector<RatedEdge> collect_edges(const Graph& graph,
                                     const EdgeRates& rates) {
  std::vector<RatedEdge> edges;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const Edge& e : graph.neighbors(u)) {
      if (e.to > u) edges.push_back({u, e.to, rates.rate(u, e.to)});
    }
  }
  return edges;
}

}  // namespace

bool Dendrogram::is_valid() const {
  if (root < 0 || static_cast<std::size_t>(root) >= nodes.size()) {
    return false;
  }
  if (nodes[root].parent != root) return false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::size_t at = i;
    std::size_t steps = 0;
    while (static_cast<std::int32_t>(at) != root) {
      if (nodes[at].parent < 0) return false;
      at = static_cast<std::size_t>(nodes[at].parent);
      if (++steps > nodes.size()) return false;  // cycle
    }
    if (nodes[i].host == kInvalidNode) return false;
  }
  return true;
}

int Dendrogram::depth_of(std::size_t node) const {
  int depth = 0;
  std::size_t at = node;
  while (static_cast<std::int32_t>(at) != root) {
    at = static_cast<std::size_t>(nodes[at].parent);
    ++depth;
  }
  return depth;
}

int Dendrogram::max_depth() const {
  int deepest = 0;
  for (std::size_t leaf = 0; leaf < num_sensors; ++leaf) {
    deepest = std::max(deepest, depth_of(leaf));
  }
  return deepest;
}

Dendrogram build_stun_dendrogram(const Graph& graph, const EdgeRates& rates,
                                 NodeId sink, int threshold_buckets) {
  const std::size_t n = graph.num_nodes();
  MOT_EXPECTS(sink < n && threshold_buckets >= 1);

  // Drain-And-Balance as the paper describes it (Section 1.3): "subsets
  // are obtained by partitioning the sensors using detection rate
  // thresholds and high detection rate subsets are merged first" into
  // balanced subtrees. Sensors are bucketed by their detection rate (sum
  // of incident edge rates); within the active pool components pair up by
  // rate mass — rate-driven, geometry-oblivious pairing, which is exactly
  // the structural weakness Lin et al. and this paper demonstrate.
  std::vector<double> node_rate(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : graph.neighbors(v)) {
      node_rate[v] += rates.rate(v, e.to);
    }
  }

  // Sensors sorted by rate descending (ties by ID) and cut into classes.
  std::vector<NodeId> by_rate(n);
  std::iota(by_rate.begin(), by_rate.end(), 0);
  std::sort(by_rate.begin(), by_rate.end(), [&](NodeId a, NodeId b) {
    if (node_rate[a] != node_rate[b]) return node_rate[a] > node_rate[b];
    return a < b;
  });

  Dendrogram dendrogram;
  dendrogram.num_sensors = n;
  dendrogram.nodes.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    dendrogram.nodes[v] = {-1, v, node_rate[v]};
  }

  // Hosting: an internal logical node is hosted at the host of its
  // higher-rate ("drain") child.
  auto merge_pair = [&dendrogram](std::int32_t a,
                                  std::int32_t b) -> std::int32_t {
    Dendrogram::Node internal;
    internal.rate_mass =
        dendrogram.nodes[a].rate_mass + dendrogram.nodes[b].rate_mass;
    const bool a_drains =
        dendrogram.nodes[a].rate_mass > dendrogram.nodes[b].rate_mass ||
        (dendrogram.nodes[a].rate_mass == dendrogram.nodes[b].rate_mass &&
         a < b);
    internal.host =
        a_drains ? dendrogram.nodes[a].host : dendrogram.nodes[b].host;
    const auto index = static_cast<std::int32_t>(dendrogram.nodes.size());
    dendrogram.nodes[a].parent = index;
    dendrogram.nodes[b].parent = index;
    dendrogram.nodes.push_back(internal);
    return index;
  };

  const std::size_t class_size =
      std::max<std::size_t>(1, n / static_cast<std::size_t>(threshold_buckets));
  std::vector<std::int32_t> pool;  // active components (dendrogram nodes)
  std::size_t consumed = 0;
  while (consumed < n) {
    // Activate the next rate class.
    const std::size_t class_end = std::min(n, consumed + class_size);
    for (; consumed < class_end; ++consumed) {
      pool.push_back(static_cast<std::int32_t>(by_rate[consumed]));
    }
    const bool last_class = consumed >= n;
    // Balanced pairing: sort the pool by rate mass and merge neighbors.
    // Intermediate classes are drained down to a single carried subtree;
    // the final class merges everything into the root.
    while (pool.size() > 1) {
      std::sort(pool.begin(), pool.end(),
                [&dendrogram](std::int32_t a, std::int32_t b) {
                  const double ra = dendrogram.nodes[a].rate_mass;
                  const double rb = dendrogram.nodes[b].rate_mass;
                  if (ra != rb) return ra > rb;
                  return a < b;
                });
      std::vector<std::int32_t> next;
      for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
        next.push_back(merge_pair(pool[i], pool[i + 1]));
      }
      if (pool.size() % 2 == 1) next.push_back(pool.back());
      pool = std::move(next);
    }
    if (last_class) break;
  }
  MOT_CHECK(pool.size() == 1);

  dendrogram.root = pool[0];
  dendrogram.nodes[dendrogram.root].parent = dendrogram.root;
  // The sink hosts the root: it answers for the whole region.
  dendrogram.nodes[dendrogram.root].host = sink;
  MOT_ENSURES(dendrogram.is_valid());
  return dendrogram;
}

SpanningTree build_dat(const Graph& graph, const EdgeRates& rates,
                       NodeId sink) {
  const std::size_t n = graph.num_nodes();
  MOT_EXPECTS(sink < n);
  const ShortestPathTree from_sink = dijkstra(graph, sink);

  SpanningTree tree;
  tree.root = sink;
  tree.parent.resize(n);
  tree.parent[sink] = sink;
  for (NodeId v = 0; v < n; ++v) {
    if (v == sink) continue;
    MOT_CHECK(from_sink.distance[v] != kInfiniteDistance);
    // Deviation avoidance: the parent must lie on a shortest path to the
    // sink; among such predecessors take the highest detection rate.
    NodeId best = kInvalidNode;
    double best_rate = -1.0;
    for (const Edge& e : graph.neighbors(v)) {
      const bool on_shortest_path =
          std::abs(from_sink.distance[e.to] + e.weight -
                   from_sink.distance[v]) < 1e-9;
      if (!on_shortest_path) continue;
      const double r = rates.rate(v, e.to);
      if (r > best_rate || (r == best_rate && e.to < best)) {
        best_rate = r;
        best = e.to;
      }
    }
    MOT_CHECK(best != kInvalidNode);
    tree.parent[v] = best;
  }
  recompute_depths(tree);
  MOT_ENSURES(tree.is_valid());
  return tree;
}

namespace {

// Recursive-quadrant zone labels: zone_path(v)[d] is the quadrant index
// of v at quadtree depth d. Two nodes belong to the same depth-d zone iff
// their paths share a prefix of length d.
std::vector<std::vector<std::uint8_t>> zone_paths(const Graph& graph,
                                                  int max_depth) {
  const std::size_t n = graph.num_nodes();
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = graph.position(v);
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  max_x += 1e-9;
  max_y += 1e-9;

  std::vector<std::vector<std::uint8_t>> paths(n);
  for (NodeId v = 0; v < n; ++v) {
    double lo_x = min_x;
    double hi_x = max_x;
    double lo_y = min_y;
    double hi_y = max_y;
    const auto& p = graph.position(v);
    paths[v].reserve(max_depth);
    for (int d = 0; d < max_depth; ++d) {
      const double cx = (lo_x + hi_x) / 2.0;
      const double cy = (lo_y + hi_y) / 2.0;
      const int qx = p.x < cx ? 0 : 1;
      const int qy = p.y < cy ? 0 : 1;
      paths[v].push_back(static_cast<std::uint8_t>(qy * 2 + qx));
      (qx == 0 ? hi_x : lo_x) = cx;
      (qy == 0 ? hi_y : lo_y) = cy;
    }
  }
  return paths;
}

std::size_t common_prefix(const std::vector<std::uint8_t>& a,
                          const std::vector<std::uint8_t>& b) {
  std::size_t len = 0;
  while (len < a.size() && len < b.size() && a[len] == b[len]) ++len;
  return len;
}

}  // namespace

SpanningTree build_zdat(const Graph& graph, const DistanceOracle& oracle,
                        NodeId sink, std::size_t zone_capacity,
                        int max_zone_depth) {
  (void)oracle;
  (void)zone_capacity;
  const std::size_t n = graph.num_nodes();
  MOT_EXPECTS(sink < n);
  MOT_EXPECTS(graph.has_positions());  // zones need an embedding

  // Z-DAT is an in-network deviation-avoidance tree (every tree path to
  // the sink is a shortest path in G) whose parent choice prefers the
  // neighbor sharing the deepest recursive zone with the child, so a
  // subtree stays inside its zone as long as possible.
  const ShortestPathTree from_sink = dijkstra(graph, sink);
  const auto zones = zone_paths(graph, max_zone_depth);

  SpanningTree tree;
  tree.root = sink;
  tree.parent.resize(n);
  tree.parent[sink] = sink;
  for (NodeId v = 0; v < n; ++v) {
    if (v == sink) continue;
    MOT_CHECK(from_sink.distance[v] != kInfiniteDistance);
    NodeId best = kInvalidNode;
    std::size_t best_prefix = 0;
    for (const Edge& e : graph.neighbors(v)) {
      const bool on_shortest_path =
          std::abs(from_sink.distance[e.to] + e.weight -
                   from_sink.distance[v]) < 1e-9;
      if (!on_shortest_path) continue;
      const std::size_t prefix = common_prefix(zones[v], zones[e.to]);
      if (best == kInvalidNode || prefix > best_prefix ||
          (prefix == best_prefix && e.to < best)) {
        best = e.to;
        best_prefix = prefix;
      }
    }
    MOT_CHECK(best != kInvalidNode);
    tree.parent[v] = best;
  }
  recompute_depths(tree);
  MOT_ENSURES(tree.is_valid());
  return tree;
}

}  // namespace mot
