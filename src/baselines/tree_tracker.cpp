#include "baselines/tree_tracker.hpp"

#include "util/check.hpp"

namespace mot {

TreePathProvider::TreePathProvider(const DistanceOracle& oracle,
                                   SpanningTree tree)
    : oracle_(&oracle), tree_(std::move(tree)) {
  MOT_EXPECTS(tree_.is_valid());
  MOT_EXPECTS(static_cast<int>(tree_.depth.size()) ==
              static_cast<int>(tree_.parent.size()));
}

std::span<const PathStop> TreePathProvider::upward_sequence(NodeId u) const {
  MOT_EXPECTS(u < tree_.num_nodes());
  auto it = sequence_cache_.find(u);
  if (it == sequence_cache_.end()) {
    std::vector<PathStop> sequence;
    NodeId at = u;
    while (true) {
      sequence.push_back({{level_of(at), at}, 0});
      if (at == tree_.root) break;
      at = tree_.parent[at];
    }
    it = sequence_cache_.emplace(u, std::move(sequence)).first;
  }
  return it->second;
}

OverlayNode TreePathProvider::root_stop() const {
  return {tree_.max_depth, tree_.root};
}

namespace {

ChainOptions tree_chain_options(bool shortcuts) {
  ChainOptions options;
  options.use_special_lists = false;
  options.shortcut_descent = shortcuts;
  options.charge_delegate_routing = true;  // delegates are free anyway
  options.charge_special_updates = false;
  return options;
}

}  // namespace

TreeTracker::TreeTracker(std::string name, const DistanceOracle& oracle,
                         SpanningTree tree, bool shortcuts)
    : provider_(oracle, std::move(tree)),
      chain_(std::move(name), provider_, tree_chain_options(shortcuts)) {}

DendrogramProvider::DendrogramProvider(const DistanceOracle& oracle,
                                       Dendrogram dendrogram)
    : oracle_(&oracle), dendrogram_(std::move(dendrogram)) {
  MOT_EXPECTS(dendrogram_.is_valid());
}

std::span<const PathStop> DendrogramProvider::upward_sequence(
    NodeId u) const {
  MOT_EXPECTS(u < dendrogram_.num_sensors);
  auto it = sequence_cache_.find(u);
  if (it == sequence_cache_.end()) {
    std::vector<PathStop> sequence;
    std::size_t at = u;
    while (true) {
      sequence.push_back(
          {{static_cast<int>(at), dendrogram_.nodes[at].host}, 0});
      if (static_cast<std::int32_t>(at) == dendrogram_.root) break;
      at = static_cast<std::size_t>(dendrogram_.nodes[at].parent);
    }
    it = sequence_cache_.emplace(u, std::move(sequence)).first;
  }
  return it->second;
}

OverlayNode DendrogramProvider::root_stop() const {
  return {dendrogram_.root,
          dendrogram_.nodes[dendrogram_.root].host};
}

StunTracker::StunTracker(const DistanceOracle& oracle, Dendrogram dendrogram)
    : provider_(oracle, std::move(dendrogram)),
      chain_("STUN", provider_, tree_chain_options(/*shortcuts=*/false)) {}

}  // namespace mot
