// Message-pruning-tree trackers: the STUN / DAT / Z-DAT baselines as
// Tracker instances. The tree is exposed to the shared chain engine
// through TreePathProvider: the upward visit sequence of a node is its
// ancestor chain, entries store the detection sets with child pointers
// (exactly the message-pruning-tree semantics of [18, 21]), and the
// "+ shortcuts" variant of [23] enables direct-descent on queries.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/spanning_tree.hpp"
#include "tracking/chain_tracker.hpp"
#include "tracking/path_provider.hpp"

namespace mot {

class TreePathProvider final : public PathProvider {
 public:
  // `oracle` and the graph behind it must outlive the provider.
  TreePathProvider(const DistanceOracle& oracle, SpanningTree tree);

  std::span<const PathStop> upward_sequence(NodeId u) const override;
  std::optional<OverlayNode> special_parent(NodeId, std::size_t) const override {
    return std::nullopt;  // trees have no special-parent mechanism
  }
  DelegateAccess delegate(OverlayNode owner, ObjectId) const override {
    return {owner.node, 0.0};  // trees store detection sets locally
  }
  OverlayNode root_stop() const override;
  const DistanceOracle& oracle() const override { return *oracle_; }
  std::size_t num_nodes() const override { return tree_.num_nodes(); }

  const SpanningTree& tree() const { return tree_; }

  // Overlay level of a tree node: distance from the deepest leaf, so the
  // root has the highest level and every node has one fixed level.
  int level_of(NodeId v) const { return tree_.max_depth - tree_.depth[v]; }

 private:
  const DistanceOracle* oracle_;
  SpanningTree tree_;
  mutable std::unordered_map<NodeId, std::vector<PathStop>> sequence_cache_;
};

// STUN's logical dendrogram as a path structure: the upward sequence of a
// sensor is its leaf followed by the hosts of its logical ancestors. Each
// logical node is addressed as OverlayNode{dendrogram index, host}, which
// keeps distinct logical roles on one physical host distinct.
class DendrogramProvider final : public PathProvider {
 public:
  DendrogramProvider(const DistanceOracle& oracle, Dendrogram dendrogram);

  std::span<const PathStop> upward_sequence(NodeId u) const override;
  std::optional<OverlayNode> special_parent(NodeId, std::size_t) const override {
    return std::nullopt;
  }
  DelegateAccess delegate(OverlayNode owner, ObjectId) const override {
    return {owner.node, 0.0};
  }
  OverlayNode root_stop() const override;
  const DistanceOracle& oracle() const override { return *oracle_; }
  std::size_t num_nodes() const override { return dendrogram_.num_sensors; }

  const Dendrogram& dendrogram() const { return dendrogram_; }

 private:
  const DistanceOracle* oracle_;
  Dendrogram dendrogram_;
  mutable std::unordered_map<NodeId, std::vector<PathStop>> sequence_cache_;
};

// STUN as a Tracker: owns the dendrogram provider and the chain engine.
class StunTracker final : public Tracker {
 public:
  StunTracker(const DistanceOracle& oracle, Dendrogram dendrogram);

  std::string name() const override { return chain_.name(); }
  void publish(ObjectId object, NodeId proxy) override {
    chain_.publish(object, proxy);
  }
  MoveResult move(ObjectId object, NodeId new_proxy) override {
    return chain_.move(object, new_proxy);
  }
  QueryResult query(NodeId from, ObjectId object) override {
    return chain_.query(from, object);
  }
  NodeId proxy_of(ObjectId object) const override {
    return chain_.proxy_of(object);
  }
  std::vector<std::size_t> load_per_node() const override {
    return chain_.load_per_node();
  }
  const CostMeter& meter() const override { return chain_.meter(); }

  const DendrogramProvider& provider() const { return provider_; }
  ChainTracker& chain() { return chain_; }

 private:
  DendrogramProvider provider_;
  ChainTracker chain_;
};

class TreeTracker final : public Tracker {
 public:
  TreeTracker(std::string name, const DistanceOracle& oracle,
              SpanningTree tree, bool shortcuts);

  std::string name() const override { return chain_.name(); }
  void publish(ObjectId object, NodeId proxy) override {
    chain_.publish(object, proxy);
  }
  MoveResult move(ObjectId object, NodeId new_proxy) override {
    return chain_.move(object, new_proxy);
  }
  QueryResult query(NodeId from, ObjectId object) override {
    return chain_.query(from, object);
  }
  NodeId proxy_of(ObjectId object) const override {
    return chain_.proxy_of(object);
  }
  std::vector<std::size_t> load_per_node() const override {
    return chain_.load_per_node();
  }
  const CostMeter& meter() const override { return chain_.meter(); }

  const TreePathProvider& provider() const { return provider_; }
  ChainTracker& chain() { return chain_; }
  const ChainTracker& chain() const { return chain_; }

 private:
  TreePathProvider provider_;
  ChainTracker chain_;
};

}  // namespace mot
