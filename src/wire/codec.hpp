// Primitive binary codecs for the wire protocol (DESIGN.md §11).
//
// Everything multi-byte on the wire is little-endian and serialized via
// explicit byte shifts — never by memcpy'ing a struct — so encoded bytes
// are identical on any host regardless of its endianness or padding.
// Integers use LEB128 varints (small values dominate: node ids on small
// networks, walk indices, levels) with a zigzag variant for signed
// fields; doubles and 32-bit node ids use fixed-width encodings.
//
// Error model: a ByteReader is a monad over a byte span. The first
// malformed read latches a typed DecodeError; every subsequent read
// returns a safe default without touching memory, so decoding untrusted
// bytes can never crash or invoke UB — the caller checks ok() once at
// the end. This is what the truncation/corruption fuzz tests lock in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mot::wire {

enum class DecodeError : std::uint8_t {
  kNone = 0,
  kShortRead,       // input ended inside a value
  kOverlongVarint,  // varint ran past 10 bytes (or overflowed 64 bits)
  kBadTag,          // unknown wire type in a field tag
  kBadLength,       // length prefix exceeds the frame / sanity bound
  kBadVersion,      // frame version below the supported floor (or zero)
  kBadKind,         // unknown frame kind
  kBadValue,        // field decoded but the value is out of domain
  kTrailingBytes,   // payload has bytes after the last field
};

const char* decode_error_name(DecodeError error);

// Field wire types (three low bits of the tag, protobuf layout:
// tag = field_id << 3 | wire_type).
enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kBytes = 2,  // length-delimited
  kFixed32 = 5,
};

class ByteWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(value); }

  void varint(std::uint64_t value) {
    while (value >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(value));
  }

  // Zigzag-mapped signed varint: small magnitudes stay small either sign.
  void svarint(std::int64_t value) {
    const auto u = static_cast<std::uint64_t>(value);
    varint((u << 1) ^ static_cast<std::uint64_t>(value >> 63));
  }

  void fixed32(std::uint32_t value) {
    out_.push_back(static_cast<std::uint8_t>(value));
    out_.push_back(static_cast<std::uint8_t>(value >> 8));
    out_.push_back(static_cast<std::uint8_t>(value >> 16));
    out_.push_back(static_cast<std::uint8_t>(value >> 24));
  }

  void fixed64(std::uint64_t value) {
    fixed32(static_cast<std::uint32_t>(value));
    fixed32(static_cast<std::uint32_t>(value >> 32));
  }

  void f64(double value);

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  // --- Tagged fields (ascending id order is the encoder's contract). ---
  void tag(std::uint32_t field_id, WireType type) {
    varint((static_cast<std::uint64_t>(field_id) << 3) |
           static_cast<std::uint64_t>(type));
  }
  void field_varint(std::uint32_t id, std::uint64_t value) {
    tag(id, WireType::kVarint);
    varint(value);
  }
  void field_svarint(std::uint32_t id, std::int64_t value) {
    tag(id, WireType::kVarint);
    svarint(value);
  }
  void field_fixed32(std::uint32_t id, std::uint32_t value) {
    tag(id, WireType::kFixed32);
    fixed32(value);
  }
  void field_fixed64(std::uint32_t id, std::uint64_t value) {
    tag(id, WireType::kFixed64);
    fixed64(value);
  }
  void field_f64(std::uint32_t id, double value);
  void field_bytes(std::uint32_t id, std::span<const std::uint8_t> data) {
    tag(id, WireType::kBytes);
    varint(data.size());
    bytes(data);
  }

  std::size_t size() const { return out_.size(); }
  std::span<const std::uint8_t> data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return error_ == DecodeError::kNone; }
  DecodeError error() const { return error_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return !ok() || remaining() == 0; }

  // Latches the first failure; later calls keep the original error.
  void fail(DecodeError error) {
    if (error_ == DecodeError::kNone) error_ = error;
  }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!require(1)) return 0;
      const std::uint8_t byte = data_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // The 10th byte may only carry the top bit of the 64-bit value.
        if (shift == 63 && byte > 1) {
          fail(DecodeError::kOverlongVarint);
          return 0;
        }
        return value;
      }
    }
    fail(DecodeError::kOverlongVarint);
    return 0;
  }

  std::int64_t svarint() {
    const std::uint64_t u = varint();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  std::uint32_t fixed32() {
    if (!require(4)) return 0;
    const std::uint32_t value =
        static_cast<std::uint32_t>(data_[pos_]) |
        (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
        (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
        (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return value;
  }

  std::uint64_t fixed64() {
    const std::uint64_t lo = fixed32();
    const std::uint64_t hi = fixed32();
    return lo | (hi << 32);
  }

  double f64();

  std::span<const std::uint8_t> bytes(std::size_t length) {
    if (!require(length)) return {};
    const auto view = data_.subspan(pos_, length);
    pos_ += length;
    return view;
  }

  // Length-delimited payload with its varint length prefix. The length
  // is validated against the remaining input (an over-long prefix is
  // kBadLength, not a huge allocation).
  std::span<const std::uint8_t> length_delimited() {
    const std::uint64_t length = varint();
    if (!ok()) return {};
    if (length > remaining()) {
      fail(DecodeError::kBadLength);
      return {};
    }
    return bytes(static_cast<std::size_t>(length));
  }

  // Reads the next field tag. Returns false (without error) at a clean
  // end of input; false with an error latched on malformed tags.
  bool next_field(std::uint32_t* field_id, WireType* type) {
    if (at_end()) return false;
    const std::uint64_t tag = varint();
    if (!ok()) return false;
    const auto raw_type = static_cast<std::uint8_t>(tag & 0x7);
    switch (raw_type) {
      case 0:
      case 1:
      case 2:
      case 5:
        break;
      default:
        fail(DecodeError::kBadTag);
        return false;
    }
    *field_id = static_cast<std::uint32_t>(tag >> 3);
    *type = static_cast<WireType>(raw_type);
    return true;
  }

  // Skips one field's value — how a v(N) decoder steps over a v(N+1)
  // field it does not know.
  void skip(WireType type) {
    switch (type) {
      case WireType::kVarint:
        varint();
        break;
      case WireType::kFixed64:
        fixed64();
        break;
      case WireType::kBytes:
        length_delimited();
        break;
      case WireType::kFixed32:
        fixed32();
        break;
    }
  }

 private:
  bool require(std::size_t count) {
    if (!ok()) return false;
    if (remaining() < count) {
      fail(DecodeError::kShortRead);
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  DecodeError error_ = DecodeError::kNone;
};

}  // namespace mot::wire
