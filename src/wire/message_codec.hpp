// The versioned wire encoding of proto::Message and the frame envelope
// every socket payload travels in (DESIGN.md §11 has the full spec).
//
// Framing:  [u32 LE payload length][u8 version][u8 kind][body]
// Body:     tagged fields, protobuf-style (tag = id << 3 | wire type),
//           ascending id order, default-valued fields omitted.
//
// Compatibility contract: within a major framing (the length/version/
// kind envelope), a decoder accepts any version >= kWireVersionMin.
// Frames from a NEWER encoder decode by skipping unknown field ids — the
// rolling-upgrade story the mixed-version interop tests exercise. A
// version below the floor (or zero) is rejected with kBadVersion before
// any field is touched.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "proto/messages.hpp"
#include "wire/codec.hpp"

namespace mot::wire {

// Version 1: message fields 1..13 (the PR-1 protocol vocabulary).
// Version 2 (current): adds the traveling walker context (op_cost,
// op_peak) that cluster mode ships between shards, plus the optional
// causal trace context (trace_id, span, span_seq) — absent unless a
// trace sink is installed, so untraced v2 bytes are unchanged.
inline constexpr std::uint8_t kWireVersionMin = 1;
inline constexpr std::uint8_t kWireVersion = 2;
// Test shim: "a build from the future" — a valid encoder whose version
// byte and extra fields (ids 100..102, one per wire type class) the
// current decoder has never seen. Exists to prove unknown-field skip.
inline constexpr std::uint8_t kWireVersionFuture = kWireVersion + 1;

// Sanity bound on a frame payload; a length prefix beyond it is
// kBadLength (never an allocation).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameKind : std::uint8_t {
  kMessage = 1,    // one proto::Message crossing a shard boundary
  kHello = 2,      // worker -> coordinator bootstrap
  kHelloAck = 3,   // coordinator -> worker: negotiated version + peers
  kControl = 4,    // coordinator -> worker: inject an operation
  kComplete = 5,   // worker -> coordinator: an operation finished
  kProbe = 6,      // coordinator -> worker: quiescence probe
  kProbeReply = 7, // worker -> coordinator: counters at idle
  kLoadReport = 8, // worker -> coordinator: per-node storage load
  kShutdown = 9,   // coordinator -> worker: exit cleanly
  kLoopback = 10,  // transport self-delivery notification (intra-shard)
  kTelemetryReport = 11,  // worker -> coordinator: metrics snapshot
};

const char* frame_kind_name(FrameKind kind);

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameKind kind = FrameKind::kMessage;
};

// Prepends the length prefix and envelope to `body`, consuming it.
std::vector<std::uint8_t> finish_frame(FrameKind kind, std::uint8_t version,
                                       ByteWriter body);

// Splits one frame off `buffer` (which starts at a length prefix).
// On kNone: *payload is the version+kind+body view and *consumed the
// total bytes eaten. kShortRead means "wait for more bytes" — it is the
// only retryable outcome. kBadLength rejects an over-long prefix.
DecodeError split_frame(std::span<const std::uint8_t> buffer,
                        std::span<const std::uint8_t>* payload,
                        std::size_t* consumed);

// Reads and validates the version + kind envelope.
DecodeError read_frame_header(ByteReader& in, FrameHeader* out);

// --- kMessage ------------------------------------------------------------

struct MessageFrame {
  proto::Message message;
  NodeId from = kInvalidNode;  // physical sender of the hop

  bool operator==(const MessageFrame&) const = default;
};

// Appends the message's tagged fields (no envelope) at `version`:
// version 1 omits the walker-context fields, kWireVersionFuture appends
// the unknown-field probes.
void encode_message_fields(const proto::Message& message,
                           std::uint8_t version, ByteWriter& out);

std::vector<std::uint8_t> encode_message_frame(
    const MessageFrame& frame, std::uint8_t version = kWireVersion);

// Decodes a full kMessage payload (version + kind + body).
DecodeError decode_message_frame(std::span<const std::uint8_t> payload,
                                 MessageFrame* out);

}  // namespace mot::wire
