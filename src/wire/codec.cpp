#include "wire/codec.hpp"

#include <bit>

namespace mot::wire {

static_assert(sizeof(double) == sizeof(std::uint64_t),
              "wire doubles are IEEE-754 binary64");

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kShortRead:
      return "short-read";
    case DecodeError::kOverlongVarint:
      return "overlong-varint";
    case DecodeError::kBadTag:
      return "bad-tag";
    case DecodeError::kBadLength:
      return "bad-length";
    case DecodeError::kBadVersion:
      return "bad-version";
    case DecodeError::kBadKind:
      return "bad-kind";
    case DecodeError::kBadValue:
      return "bad-value";
    case DecodeError::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

void ByteWriter::f64(double value) {
  fixed64(std::bit_cast<std::uint64_t>(value));
}

void ByteWriter::field_f64(std::uint32_t id, double value) {
  field_fixed64(id, std::bit_cast<std::uint64_t>(value));
}

double ByteReader::f64() { return std::bit_cast<double>(fixed64()); }

}  // namespace mot::wire
