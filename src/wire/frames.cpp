#include "wire/frames.hpp"

namespace mot::wire {
namespace {

// Decodes the envelope and checks the expected kind; returns a reader
// positioned at the first field.
DecodeError open_body(std::span<const std::uint8_t> payload,
                      FrameKind expected, ByteReader* reader) {
  *reader = ByteReader(payload);
  FrameHeader header;
  if (const DecodeError err = read_frame_header(*reader, &header);
      err != DecodeError::kNone) {
    return err;
  }
  if (header.kind != expected) return DecodeError::kBadKind;
  return DecodeError::kNone;
}

// Packed varint list inside one length-delimited field.
void field_packed_varints(ByteWriter& out, std::uint32_t id,
                          std::span<const std::uint64_t> values) {
  ByteWriter packed;
  for (const std::uint64_t value : values) packed.varint(value);
  out.field_bytes(id, packed.data());
}

std::vector<std::uint64_t> read_packed_varints(ByteReader& in) {
  std::vector<std::uint64_t> values;
  ByteReader packed(in.length_delimited());
  if (!in.ok()) return values;
  while (!packed.at_end()) values.push_back(packed.varint());
  if (!packed.ok()) in.fail(packed.error());
  return values;
}

void field_string(ByteWriter& out, std::uint32_t id, const std::string& s) {
  out.field_bytes(id, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(s.data()),
                          s.size()));
}

std::string read_string(ByteReader& in) {
  const std::span<const std::uint8_t> bytes = in.length_delimited();
  if (!in.ok()) return {};
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

// Packed little-endian f64 list inside one length-delimited field.
void field_packed_f64(ByteWriter& out, std::uint32_t id,
                      std::span<const double> values) {
  ByteWriter packed;
  for (const double value : values) packed.f64(value);
  out.field_bytes(id, packed.data());
}

std::vector<double> read_packed_f64(ByteReader& in) {
  std::vector<double> values;
  ByteReader packed(in.length_delimited());
  if (!in.ok()) return values;
  while (!packed.at_end()) values.push_back(packed.f64());
  if (!packed.ok()) in.fail(packed.error());
  return values;
}

}  // namespace

const char* cluster_op_name(ClusterOp op) {
  switch (op) {
    case ClusterOp::kPublish:
      return "publish";
    case ClusterOp::kMove:
      return "move";
    case ClusterOp::kQuery:
      return "query";
    case ClusterOp::kNotePosition:
      return "note-position";
    case ClusterOp::kReportLoad:
      return "report-load";
    case ClusterOp::kReportTelemetry:
      return "report-telemetry";
  }
  return "unknown";
}

// --- Hello ----------------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloFrame& frame,
                                       std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, frame.shard);
  body.field_varint(2, frame.num_shards);
  body.field_varint(3, frame.listen_port);
  body.field_varint(4, frame.wire_min);
  body.field_varint(5, frame.wire_max);
  body.field_fixed64(6, frame.node_map_hash);
  body.field_varint(7, frame.num_nodes);
  return finish_frame(FrameKind::kHello, version, std::move(body));
}

DecodeError decode_hello(std::span<const std::uint8_t> payload,
                         HelloFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kHello, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = HelloFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->shard = static_cast<std::uint32_t>(in.varint());
        break;
      case 2:
        out->num_shards = static_cast<std::uint32_t>(in.varint());
        break;
      case 3:
        out->listen_port = static_cast<std::uint32_t>(in.varint());
        break;
      case 4:
        out->wire_min = static_cast<std::uint8_t>(in.varint());
        break;
      case 5:
        out->wire_max = static_cast<std::uint8_t>(in.varint());
        break;
      case 6:
        out->node_map_hash = in.fixed64();
        break;
      case 7:
        out->num_nodes = in.varint();
        break;
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- HelloAck -------------------------------------------------------------

std::vector<std::uint8_t> encode_hello_ack(const HelloAckFrame& frame,
                                           std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, frame.version);
  std::vector<std::uint64_t> ports(frame.peer_ports.begin(),
                                   frame.peer_ports.end());
  field_packed_varints(body, 2, ports);
  return finish_frame(FrameKind::kHelloAck, version, std::move(body));
}

DecodeError decode_hello_ack(std::span<const std::uint8_t> payload,
                             HelloAckFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kHelloAck, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = HelloAckFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->version = static_cast<std::uint8_t>(in.varint());
        break;
      case 2: {
        out->peer_ports.clear();
        for (const std::uint64_t port : read_packed_varints(in)) {
          out->peer_ports.push_back(static_cast<std::uint32_t>(port));
        }
        break;
      }
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- Control --------------------------------------------------------------

std::vector<std::uint8_t> encode_control(const ControlFrame& frame,
                                         std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, static_cast<std::uint64_t>(frame.op));
  if (frame.object != 0) body.field_varint(2, frame.object);
  if (frame.node != kInvalidNode) body.field_fixed32(3, frame.node);
  if (frame.query_id != 0) body.field_varint(4, frame.query_id);
  return finish_frame(FrameKind::kControl, version, std::move(body));
}

DecodeError decode_control(std::span<const std::uint8_t> payload,
                           ControlFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kControl, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = ControlFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1: {
        const std::uint64_t raw = in.varint();
        if (in.ok() &&
            (raw < 1 ||
             raw > static_cast<std::uint64_t>(ClusterOp::kReportTelemetry))) {
          return DecodeError::kBadValue;
        }
        out->op = static_cast<ClusterOp>(raw);
        break;
      }
      case 2:
        out->object = static_cast<ObjectId>(in.varint());
        break;
      case 3:
        out->node = in.fixed32();
        break;
      case 4:
        out->query_id = in.varint();
        break;
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- Complete -------------------------------------------------------------

std::vector<std::uint8_t> encode_complete(const CompleteFrame& frame,
                                          std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, static_cast<std::uint64_t>(frame.op));
  if (frame.object != 0) body.field_varint(2, frame.object);
  if (frame.query_id != 0) body.field_varint(3, frame.query_id);
  if (frame.found) body.field_varint(4, 1);
  if (frame.proxy != kInvalidNode) body.field_fixed32(5, frame.proxy);
  if (frame.cost != 0.0) body.field_f64(6, frame.cost);
  if (frame.level != 0) body.field_svarint(7, frame.level);
  if (frame.degraded) body.field_varint(8, 1);
  if (frame.staleness != 0.0) body.field_f64(9, frame.staleness);
  return finish_frame(FrameKind::kComplete, version, std::move(body));
}

DecodeError decode_complete(std::span<const std::uint8_t> payload,
                            CompleteFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kComplete, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = CompleteFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->op = static_cast<ClusterOp>(in.varint());
        break;
      case 2:
        out->object = static_cast<ObjectId>(in.varint());
        break;
      case 3:
        out->query_id = in.varint();
        break;
      case 4:
        out->found = in.varint() != 0;
        break;
      case 5:
        out->proxy = in.fixed32();
        break;
      case 6:
        out->cost = in.f64();
        break;
      case 7:
        out->level = static_cast<std::int32_t>(in.svarint());
        break;
      case 8:
        out->degraded = in.varint() != 0;
        break;
      case 9:
        out->staleness = in.f64();
        break;
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- Probe / ProbeReply ---------------------------------------------------

std::vector<std::uint8_t> encode_probe(const ProbeFrame& frame,
                                       std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, frame.token);
  return finish_frame(FrameKind::kProbe, version, std::move(body));
}

DecodeError decode_probe(std::span<const std::uint8_t> payload,
                         ProbeFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kProbe, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = ProbeFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    if (id == 1) {
      out->token = in.varint();
    } else {
      in.skip(type);
    }
    if (!in.ok()) break;
  }
  return in.error();
}

std::vector<std::uint8_t> encode_probe_reply(const ProbeReplyFrame& frame,
                                             std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, frame.token);
  body.field_varint(2, frame.forwarded);
  body.field_varint(3, frame.injected);
  return finish_frame(FrameKind::kProbeReply, version, std::move(body));
}

DecodeError decode_probe_reply(std::span<const std::uint8_t> payload,
                               ProbeReplyFrame* out) {
  ByteReader in({});
  if (const DecodeError err =
          open_body(payload, FrameKind::kProbeReply, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = ProbeReplyFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->token = in.varint();
        break;
      case 2:
        out->forwarded = in.varint();
        break;
      case 3:
        out->injected = in.varint();
        break;
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- LoadReport / Shutdown ------------------------------------------------

std::vector<std::uint8_t> encode_load_report(const LoadReportFrame& frame,
                                             std::uint8_t version) {
  ByteWriter body;
  field_packed_varints(body, 1, frame.loads);
  if (frame.meter_total != 0.0) body.field_f64(2, frame.meter_total);
  return finish_frame(FrameKind::kLoadReport, version, std::move(body));
}

DecodeError decode_load_report(std::span<const std::uint8_t> payload,
                               LoadReportFrame* out) {
  ByteReader in({});
  if (const DecodeError err =
          open_body(payload, FrameKind::kLoadReport, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = LoadReportFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->loads = read_packed_varints(in);
        break;
      case 2:
        out->meter_total = in.f64();
        break;
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

// --- TelemetryReport ------------------------------------------------------

namespace {

// Submessage field ids shared by the metric encoder/decoder below.
enum MetricField : std::uint32_t {
  kMKind = 1,     // varint  (obs::MetricKind)
  kMName = 2,     // bytes
  kMLabel = 3,    // bytes, repeated: nested {1: key, 2: value}
  kMCounter = 4,  // varint
  kMGauge = 5,    // fixed64 (f64)
  kMBounds = 6,   // bytes: packed f64
  kMBuckets = 7,  // bytes: packed varint
  kMSum = 8,      // fixed64 (f64)
  kMCount = 9,    // varint
};

void encode_metric(const obs::MetricSnapshot& metric, ByteWriter& out) {
  ByteWriter m;
  if (metric.kind != obs::MetricKind::kCounter) {
    m.field_varint(kMKind, static_cast<std::uint64_t>(metric.kind));
  }
  if (!metric.name.empty()) field_string(m, kMName, metric.name);
  for (const auto& [key, value] : metric.labels) {
    ByteWriter label;
    if (!key.empty()) field_string(label, 1, key);
    if (!value.empty()) field_string(label, 2, value);
    m.field_bytes(kMLabel, label.data());
  }
  if (metric.counter_value != 0) {
    m.field_varint(kMCounter, metric.counter_value);
  }
  if (metric.gauge_value != 0.0) m.field_f64(kMGauge, metric.gauge_value);
  if (!metric.bounds.empty()) field_packed_f64(m, kMBounds, metric.bounds);
  if (!metric.buckets.empty()) {
    field_packed_varints(m, kMBuckets, metric.buckets);
  }
  if (metric.sum != 0.0) m.field_f64(kMSum, metric.sum);
  if (metric.count != 0) m.field_varint(kMCount, metric.count);
  out.field_bytes(2, m.data());
}

DecodeError decode_metric(ByteReader& in, obs::MetricSnapshot* out) {
  ByteReader m(in.length_delimited());
  if (!in.ok()) return in.error();
  *out = obs::MetricSnapshot{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (m.next_field(&id, &type)) {
    switch (id) {
      case kMKind: {
        const std::uint64_t raw = m.varint();
        if (m.ok() &&
            raw > static_cast<std::uint64_t>(obs::MetricKind::kHistogram)) {
          return DecodeError::kBadValue;
        }
        out->kind = static_cast<obs::MetricKind>(raw);
        break;
      }
      case kMName:
        out->name = read_string(m);
        break;
      case kMLabel: {
        ByteReader label(m.length_delimited());
        if (!m.ok()) break;
        std::string key, value;
        std::uint32_t lid = 0;
        WireType ltype = WireType::kVarint;
        while (label.next_field(&lid, &ltype)) {
          if (lid == 1) key = read_string(label);
          else if (lid == 2) value = read_string(label);
          else label.skip(ltype);
          if (!label.ok()) break;
        }
        if (!label.ok()) {
          m.fail(label.error());
          break;
        }
        out->labels.emplace_back(std::move(key), std::move(value));
        break;
      }
      case kMCounter:
        out->counter_value = m.varint();
        break;
      case kMGauge:
        out->gauge_value = m.f64();
        break;
      case kMBounds:
        out->bounds = read_packed_f64(m);
        break;
      case kMBuckets:
        out->buckets = read_packed_varints(m);
        break;
      case kMSum:
        out->sum = m.f64();
        break;
      case kMCount:
        out->count = m.varint();
        break;
      default:
        m.skip(type);
        break;
    }
    if (!m.ok()) break;
  }
  if (m.error() != DecodeError::kNone) return m.error();
  // A histogram's bucket list must line up with its bounds (one
  // overflow bucket at the back) or the coordinator-side merge would
  // be operating on garbage.
  if (out->kind == obs::MetricKind::kHistogram &&
      out->buckets.size() != out->bounds.size() + 1) {
    return DecodeError::kBadValue;
  }
  return DecodeError::kNone;
}

}  // namespace

std::vector<std::uint8_t> encode_telemetry_report(
    const TelemetryReportFrame& frame, std::uint8_t version) {
  ByteWriter body;
  if (frame.shard != 0) body.field_varint(1, frame.shard);
  for (const obs::MetricSnapshot& metric : frame.metrics) {
    encode_metric(metric, body);
  }
  return finish_frame(FrameKind::kTelemetryReport, version,
                      std::move(body));
}

DecodeError decode_telemetry_report(std::span<const std::uint8_t> payload,
                                    TelemetryReportFrame* out) {
  ByteReader in({});
  if (const DecodeError err =
          open_body(payload, FrameKind::kTelemetryReport, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = TelemetryReportFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case 1:
        out->shard = static_cast<std::uint32_t>(in.varint());
        break;
      case 2: {
        obs::MetricSnapshot metric;
        if (const DecodeError err = decode_metric(in, &metric);
            err != DecodeError::kNone) {
          return err;
        }
        out->metrics.push_back(std::move(metric));
        break;
      }
      default:
        in.skip(type);
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

std::vector<std::uint8_t> encode_shutdown(std::uint8_t version) {
  return finish_frame(FrameKind::kShutdown, version, ByteWriter{});
}

std::vector<std::uint8_t> encode_loopback(const LoopbackFrame& frame,
                                          std::uint8_t version) {
  ByteWriter body;
  body.field_varint(1, frame.seq);
  return finish_frame(FrameKind::kLoopback, version, std::move(body));
}

DecodeError decode_loopback(std::span<const std::uint8_t> payload,
                            LoopbackFrame* out) {
  ByteReader in({});
  if (const DecodeError err = open_body(payload, FrameKind::kLoopback, &in);
      err != DecodeError::kNone) {
    return err;
  }
  *out = LoopbackFrame{};
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    if (id == 1) {
      out->seq = in.varint();
    } else {
      in.skip(type);
    }
    if (!in.ok()) break;
  }
  return in.error();
}

}  // namespace mot::wire
