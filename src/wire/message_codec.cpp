#include "wire/message_codec.hpp"

namespace mot::wire {
namespace {

// Field ids of the kMessage body. Ids are append-only: a retired field's
// id is never reused, so every decoder ever shipped agrees on what an id
// means (it may merely not know the newest ones).
enum MessageField : std::uint32_t {
  kFType = 1,        // varint  (MsgType)
  kFObject = 2,      // varint
  kFRoleLevel = 3,   // svarint
  kFRoleNode = 4,    // fixed32
  kFWalkSource = 5,  // fixed32
  kFWalkIndex = 6,   // varint
  kFLinkLevel = 7,   // svarint
  kFLinkNode = 8,    // fixed32
  kFNewProxy = 9,    // fixed32
  kFRequester = 10,  // fixed32
  kFQueryId = 11,    // varint
  kFDegraded = 12,   // varint (bool)
  kFStaleness = 13,  // fixed64 (f64)
  // --- added in version 2 (cluster walker context) ---
  kFOpCost = 14,     // fixed64 (f64)
  kFOpPeak = 15,     // svarint
  // --- added in PR 7, still version 2 (causal trace context; zero and
  //     therefore absent unless a trace sink is installed) ---
  kFTraceId = 16,    // fixed64
  kFSpan = 17,       // varint
  kFSpanSeq = 18,    // varint
  // --- kMessage envelope (not part of proto::Message) ---
  kFFrom = 20,       // fixed32
};

}  // namespace

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kMessage:
      return "message";
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kHelloAck:
      return "hello-ack";
    case FrameKind::kControl:
      return "control";
    case FrameKind::kComplete:
      return "complete";
    case FrameKind::kProbe:
      return "probe";
    case FrameKind::kProbeReply:
      return "probe-reply";
    case FrameKind::kLoadReport:
      return "load-report";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kLoopback:
      return "loopback";
    case FrameKind::kTelemetryReport:
      return "telemetry-report";
  }
  return "unknown";
}

std::vector<std::uint8_t> finish_frame(FrameKind kind, std::uint8_t version,
                                       ByteWriter body) {
  const std::vector<std::uint8_t> fields = body.take();
  ByteWriter out;
  // Payload = version + kind + fields.
  out.fixed32(static_cast<std::uint32_t>(fields.size() + 2));
  out.u8(version);
  out.u8(static_cast<std::uint8_t>(kind));
  out.bytes(fields);
  return out.take();
}

DecodeError split_frame(std::span<const std::uint8_t> buffer,
                        std::span<const std::uint8_t>* payload,
                        std::size_t* consumed) {
  if (buffer.size() < 4) return DecodeError::kShortRead;
  ByteReader reader(buffer);
  const std::uint32_t length = reader.fixed32();
  if (length < 2 || length > kMaxFramePayload) {
    return DecodeError::kBadLength;
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(length)) {
    return DecodeError::kShortRead;
  }
  *payload = buffer.subspan(4, length);
  *consumed = 4 + static_cast<std::size_t>(length);
  return DecodeError::kNone;
}

DecodeError read_frame_header(ByteReader& in, FrameHeader* out) {
  const std::uint8_t version = in.u8();
  const std::uint8_t kind = in.u8();
  if (!in.ok()) return in.error();
  if (version < kWireVersionMin) return DecodeError::kBadVersion;
  if (kind < static_cast<std::uint8_t>(FrameKind::kMessage) ||
      kind > static_cast<std::uint8_t>(FrameKind::kTelemetryReport)) {
    return DecodeError::kBadKind;
  }
  out->version = version;
  out->kind = static_cast<FrameKind>(kind);
  return DecodeError::kNone;
}

void encode_message_fields(const proto::Message& message,
                           std::uint8_t version, ByteWriter& out) {
  // Defaults are omitted and ids ascend: the encoding of a message is a
  // pure function of its field values, so decode -> re-encode is
  // byte-identical (the fuzz suite's round-trip invariant).
  if (message.type != proto::MsgType::kPublish) {
    out.field_varint(kFType, static_cast<std::uint64_t>(message.type));
  }
  if (message.object != 0) out.field_varint(kFObject, message.object);
  if (message.role.level != 0) {
    out.field_svarint(kFRoleLevel, message.role.level);
  }
  if (message.role.node != kInvalidNode) {
    out.field_fixed32(kFRoleNode, message.role.node);
  }
  if (message.walk_source != kInvalidNode) {
    out.field_fixed32(kFWalkSource, message.walk_source);
  }
  if (message.walk_index != 0) {
    out.field_varint(kFWalkIndex, message.walk_index);
  }
  if (message.link.level != 0) {
    out.field_svarint(kFLinkLevel, message.link.level);
  }
  if (message.link.node != kInvalidNode) {
    out.field_fixed32(kFLinkNode, message.link.node);
  }
  if (message.new_proxy != kInvalidNode) {
    out.field_fixed32(kFNewProxy, message.new_proxy);
  }
  if (message.requester != kInvalidNode) {
    out.field_fixed32(kFRequester, message.requester);
  }
  if (message.query_id != 0) out.field_varint(kFQueryId, message.query_id);
  if (message.degraded) out.field_varint(kFDegraded, 1);
  if (message.staleness != 0.0) {
    out.field_f64(kFStaleness, message.staleness);
  }
  if (version >= 2) {
    if (message.op_cost != 0.0) out.field_f64(kFOpCost, message.op_cost);
    if (message.op_peak != 0) out.field_svarint(kFOpPeak, message.op_peak);
    if (message.trace_id != 0) out.field_fixed64(kFTraceId, message.trace_id);
    if (message.span != 0) out.field_varint(kFSpan, message.span);
    if (message.span_seq != 0) out.field_varint(kFSpanSeq, message.span_seq);
  }
}

namespace {

// Shared field-loop for the kMessage body; envelope fields land in
// `frame`, message fields in `frame->message`. Unknown ids are skipped.
DecodeError decode_message_fields(ByteReader& in, MessageFrame* frame) {
  proto::Message& m = frame->message;
  std::uint32_t id = 0;
  WireType type = WireType::kVarint;
  while (in.next_field(&id, &type)) {
    switch (id) {
      case kFType: {
        const std::uint64_t raw = in.varint();
        if (in.ok() && raw >= proto::kNumMsgTypes) {
          return DecodeError::kBadValue;
        }
        m.type = static_cast<proto::MsgType>(raw);
        break;
      }
      case kFObject:
        m.object = static_cast<ObjectId>(in.varint());
        break;
      case kFRoleLevel:
        m.role.level = static_cast<int>(in.svarint());
        break;
      case kFRoleNode:
        m.role.node = in.fixed32();
        break;
      case kFWalkSource:
        m.walk_source = in.fixed32();
        break;
      case kFWalkIndex:
        m.walk_index = static_cast<std::uint32_t>(in.varint());
        break;
      case kFLinkLevel:
        m.link.level = static_cast<int>(in.svarint());
        break;
      case kFLinkNode:
        m.link.node = in.fixed32();
        break;
      case kFNewProxy:
        m.new_proxy = in.fixed32();
        break;
      case kFRequester:
        m.requester = in.fixed32();
        break;
      case kFQueryId:
        m.query_id = in.varint();
        break;
      case kFDegraded:
        m.degraded = in.varint() != 0;
        break;
      case kFStaleness:
        m.staleness = in.f64();
        break;
      case kFOpCost:
        m.op_cost = in.f64();
        break;
      case kFOpPeak:
        m.op_peak = static_cast<std::int32_t>(in.svarint());
        break;
      case kFTraceId:
        m.trace_id = in.fixed64();
        break;
      case kFSpan:
        m.span = in.varint();
        break;
      case kFSpanSeq:
        m.span_seq = in.varint();
        break;
      case kFFrom:
        frame->from = in.fixed32();
        break;
      default:
        in.skip(type);  // a field from the future: step over it
        break;
    }
    if (!in.ok()) break;
  }
  return in.error();
}

}  // namespace

std::vector<std::uint8_t> encode_message_frame(const MessageFrame& frame,
                                               std::uint8_t version) {
  ByteWriter body;
  encode_message_fields(frame.message, version, body);
  if (frame.from != kInvalidNode) {
    body.field_fixed32(kFFrom, frame.from);
  }
  if (version >= kWireVersionFuture) {
    // One probe per wire-type class, under ids no shipped decoder knows —
    // a frame only a future build would emit, which today's decoder must
    // step over without blinking.
    body.field_varint(100, 0x5eedu);
    body.field_fixed64(101, 0x0123456789abcdefULL);
    const std::uint8_t blob[3] = {0xaa, 0xbb, 0xcc};
    body.field_bytes(102, blob);
  }
  return finish_frame(FrameKind::kMessage, version, std::move(body));
}

DecodeError decode_message_frame(std::span<const std::uint8_t> payload,
                                 MessageFrame* out) {
  ByteReader in(payload);
  FrameHeader header;
  if (const DecodeError err = read_frame_header(in, &header);
      err != DecodeError::kNone) {
    return err;
  }
  if (header.kind != FrameKind::kMessage) return DecodeError::kBadKind;
  *out = MessageFrame{};
  return decode_message_fields(in, out);
}

}  // namespace mot::wire
