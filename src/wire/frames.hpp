// Control-plane payloads of the multi-process cluster runner: bootstrap
// handshake (Hello / HelloAck), operation injection (Control), operation
// completion (Complete), the four-counter quiescence probe, storage-load
// reporting and shutdown. Same framing and compat rules as kMessage
// (message_codec.hpp): tagged fields, unknown ids skipped, ascending
// version bytes negotiated down to the oldest peer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics_registry.hpp"
#include "tracking/tracker.hpp"
#include "wire/message_codec.hpp"

namespace mot::wire {

// Worker -> coordinator, first frame on the control connection. The
// node-map hash fingerprints the worker's deterministically built world
// (graph + hierarchy + shard map): peers that disagree cannot exchange
// node-addressed messages, so the coordinator aborts the bootstrap.
struct HelloFrame {
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 0;
  std::uint32_t listen_port = 0;  // worker's peer-mesh listener
  std::uint8_t wire_min = kWireVersionMin;
  std::uint8_t wire_max = kWireVersion;
  std::uint64_t node_map_hash = 0;
  std::uint64_t num_nodes = 0;

  bool operator==(const HelloFrame&) const = default;
};

// Coordinator -> worker: the negotiated wire version (the highest every
// peer supports) and the full peer port map, in shard order.
struct HelloAckFrame {
  std::uint8_t version = kWireVersion;
  std::vector<std::uint32_t> peer_ports;

  bool operator==(const HelloAckFrame&) const = default;
};

enum class ClusterOp : std::uint8_t {
  kPublish = 1,
  kMove = 2,
  kQuery = 3,
  kNotePosition = 4,  // object position broadcast (no walker injected)
  kReportLoad = 5,    // reply with a LoadReport
  kReportTelemetry = 6,  // reply with a TelemetryReport
};

const char* cluster_op_name(ClusterOp op);

struct ControlFrame {
  ClusterOp op = ClusterOp::kPublish;
  ObjectId object = 0;
  NodeId node = kInvalidNode;   // proxy / target / query origin
  std::uint64_t query_id = 0;   // coordinator-assigned (kQuery)

  bool operator==(const ControlFrame&) const = default;
};

struct CompleteFrame {
  ClusterOp op = ClusterOp::kPublish;
  ObjectId object = 0;
  std::uint64_t query_id = 0;
  bool found = false;
  NodeId proxy = kInvalidNode;
  double cost = 0.0;
  std::int32_t level = 0;
  bool degraded = false;
  double staleness = 0.0;

  bool operator==(const CompleteFrame&) const = default;
};

struct ProbeFrame {
  std::uint64_t token = 0;

  bool operator==(const ProbeFrame&) const = default;
};

// A worker answers a probe only once its simulator is idle and its
// sockets are drained; `forwarded` / `injected` count kMessage frames it
// has shipped to / accepted from peers. The coordinator declares global
// quiescence when two consecutive probe waves return identical counters
// with sum(forwarded) == sum(injected) (Mattern's four-counter method).
struct ProbeReplyFrame {
  std::uint64_t token = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t injected = 0;

  bool operator==(const ProbeReplyFrame&) const = default;
};

struct LoadReportFrame {
  std::vector<std::uint64_t> loads;  // per owned node; 0 elsewhere
  double meter_total = 0.0;          // this shard's CostMeter distance

  bool operator==(const LoadReportFrame&) const = default;
};

// Worker -> coordinator reply to a kReportTelemetry control: the full
// value-typed snapshot of the shard's metrics registry (counters,
// gauges, histogram buckets — see obs::MetricSnapshot). Each metric is
// a nested length-delimited submessage, so the list can grow new
// per-metric fields under the same unknown-id-skip rules as every
// other frame.
struct TelemetryReportFrame {
  std::uint32_t shard = 0;
  std::vector<obs::MetricSnapshot> metrics;

  bool operator==(const TelemetryReportFrame&) const = default;
};

// Self-delivery notification of the socket transport's Channel role: the
// delivery callback stays in-process (keyed by seq); the frame makes the
// hop physically traverse the kernel's loopback stack.
struct LoopbackFrame {
  std::uint64_t seq = 0;

  bool operator==(const LoopbackFrame&) const = default;
};

std::vector<std::uint8_t> encode_hello(const HelloFrame& frame,
                                       std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_hello_ack(
    const HelloAckFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_control(
    const ControlFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_complete(
    const CompleteFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_probe(const ProbeFrame& frame,
                                       std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_probe_reply(
    const ProbeReplyFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_load_report(
    const LoadReportFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_telemetry_report(
    const TelemetryReportFrame& frame, std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_shutdown(
    std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> encode_loopback(
    const LoopbackFrame& frame, std::uint8_t version = kWireVersion);

DecodeError decode_hello(std::span<const std::uint8_t> payload,
                         HelloFrame* out);
DecodeError decode_hello_ack(std::span<const std::uint8_t> payload,
                             HelloAckFrame* out);
DecodeError decode_control(std::span<const std::uint8_t> payload,
                           ControlFrame* out);
DecodeError decode_complete(std::span<const std::uint8_t> payload,
                            CompleteFrame* out);
DecodeError decode_probe(std::span<const std::uint8_t> payload,
                         ProbeFrame* out);
DecodeError decode_probe_reply(std::span<const std::uint8_t> payload,
                               ProbeReplyFrame* out);
DecodeError decode_load_report(std::span<const std::uint8_t> payload,
                               LoadReportFrame* out);
DecodeError decode_telemetry_report(std::span<const std::uint8_t> payload,
                                    TelemetryReportFrame* out);
DecodeError decode_loopback(std::span<const std::uint8_t> payload,
                            LoopbackFrame* out);

}  // namespace mot::wire
