#include "faults/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot::faults {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void check_rates(const LinkFaults& faults) {
  MOT_EXPECTS(faults.drop >= 0.0 && faults.drop < 1.0);
  MOT_EXPECTS(faults.duplicate >= 0.0 && faults.duplicate <= 1.0);
  MOT_EXPECTS(faults.delay >= 0.0 && faults.delay <= 1.0);
  MOT_EXPECTS(faults.max_extra_delay >= 0.0);
}

bool contains(const std::vector<NodeId>& sorted, NodeId node) {
  return std::binary_search(sorted.begin(), sorted.end(), node);
}

}  // namespace

bool PartitionWindow::cuts(NodeId from, NodeId to) const {
  return (contains(side_a, from) && contains(side_b, to)) ||
         (contains(side_b, from) && contains(side_a, to));
}

FaultPlan& FaultPlan::set_default_faults(const LinkFaults& faults) {
  check_rates(faults);
  defaults_ = faults;
  return *this;
}

FaultPlan& FaultPlan::set_link_faults(NodeId from, NodeId to,
                                      const LinkFaults& faults) {
  check_rates(faults);
  MOT_EXPECTS(from != to);
  overrides_[link_key(from, to)] = faults;
  return *this;
}

FaultPlan& FaultPlan::add_crash(SimTime time, NodeId node) {
  MOT_EXPECTS(time >= 0.0);
  MOT_EXPECTS(node != kInvalidNode);
  for (const CrashEvent& crash : crashes_) {
    MOT_EXPECTS(crash.node != node);  // a node crashes at most once
  }
  crashes_.push_back({time, node});
  std::stable_sort(crashes_.begin(), crashes_.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.node < b.node;
                   });
  return *this;
}

FaultPlan& FaultPlan::add_partition(SimTime start, SimTime end,
                                    std::vector<NodeId> side_a,
                                    std::vector<NodeId> side_b) {
  MOT_EXPECTS(start >= 0.0);
  MOT_EXPECTS(end > start);  // every partition heals
  MOT_EXPECTS(!side_a.empty() && !side_b.empty());
  const auto normalize = [](std::vector<NodeId>& side) {
    std::sort(side.begin(), side.end());
    side.erase(std::unique(side.begin(), side.end()), side.end());
  };
  normalize(side_a);
  normalize(side_b);
  // The sides must be disjoint: a node cannot be cut from itself.
  for (const NodeId node : side_a) {
    MOT_EXPECTS(!std::binary_search(side_b.begin(), side_b.end(), node));
  }
  partitions_.push_back({start, end, std::move(side_a), std::move(side_b)});
  return *this;
}

FaultPlan& FaultPlan::add_burst(const TrafficBurst& burst) {
  MOT_EXPECTS(burst.start >= 0.0);
  MOT_EXPECTS(burst.end > burst.start);  // every burst subsides
  MOT_EXPECTS(burst.multiplier >= 1.0);
  bursts_.push_back(burst);
  std::stable_sort(bursts_.begin(), bursts_.end(),
                   [](const TrafficBurst& a, const TrafficBurst& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.end < b.end;
                   });
  return *this;
}

double FaultPlan::burst_multiplier(SimTime now) const {
  double factor = 1.0;
  for (const TrafficBurst& burst : bursts_) {
    if (now >= burst.start && now < burst.end) factor *= burst.multiplier;
  }
  return factor;
}

const LinkFaults& FaultPlan::faults_for(NodeId from, NodeId to) const {
  const auto it = overrides_.find(link_key(from, to));
  return it == overrides_.end() ? defaults_ : it->second;
}

}  // namespace mot::faults
