#include "faults/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot::faults {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void check_rates(const LinkFaults& faults) {
  MOT_EXPECTS(faults.drop >= 0.0 && faults.drop < 1.0);
  MOT_EXPECTS(faults.duplicate >= 0.0 && faults.duplicate <= 1.0);
  MOT_EXPECTS(faults.delay >= 0.0 && faults.delay <= 1.0);
  MOT_EXPECTS(faults.max_extra_delay >= 0.0);
}

}  // namespace

FaultPlan& FaultPlan::set_default_faults(const LinkFaults& faults) {
  check_rates(faults);
  defaults_ = faults;
  return *this;
}

FaultPlan& FaultPlan::set_link_faults(NodeId from, NodeId to,
                                      const LinkFaults& faults) {
  check_rates(faults);
  MOT_EXPECTS(from != to);
  overrides_[link_key(from, to)] = faults;
  return *this;
}

FaultPlan& FaultPlan::add_crash(SimTime time, NodeId node) {
  MOT_EXPECTS(time >= 0.0);
  MOT_EXPECTS(node != kInvalidNode);
  for (const CrashEvent& crash : crashes_) {
    MOT_EXPECTS(crash.node != node);  // a node crashes at most once
  }
  crashes_.push_back({time, node});
  std::stable_sort(crashes_.begin(), crashes_.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.node < b.node;
                   });
  return *this;
}

const LinkFaults& FaultPlan::faults_for(NodeId from, NodeId to) const {
  const auto it = overrides_.find(link_key(from, to));
  return it == overrides_.end() ? defaults_ : it->second;
}

}  // namespace mot::faults
