// Executes a FaultPlan against the deterministic simulator: every
// transmit() draws from a seeded substream to decide duplication / drop /
// extra delay, the armed crash schedule marks nodes dead and notifies
// subscribers (protocol runtimes hook recovery there), and partition
// windows sever every link crossing the cut until they heal.
//
// Determinism: the channel's Rng is seeded once and consumed in simulator
// event order, which is itself deterministic, so a (plan, seed) pair
// fully determines which messages are lost — the property the replay
// tests lock in.
//
// Conservation ledger: every copy the channel creates is accounted for
// exactly once — see ChannelStats::conserved(). The chaos explorer checks
// the identity at every quiescence point.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "sim/channel.hpp"
#include "util/rng.hpp"

namespace mot::faults {

struct ChannelStats {
  std::uint64_t transmissions = 0;   // transmit() calls accepted
  std::uint64_t dropped = 0;         // copies that vanished to link loss
  std::uint64_t duplicated = 0;      // extra copies created by duplication
  std::uint64_t delayed = 0;         // copies given extra latency
  std::uint64_t delivered = 0;       // copies handed to their receiver
  std::uint64_t in_flight = 0;       // copies scheduled but not yet resolved
  std::uint64_t blocked_dead = 0;    // transmissions to/from dead nodes
  std::uint64_t dead_on_arrival = 0; // copies whose target died in flight
  std::uint64_t partition_blocked = 0;  // transmissions refused at a cut
  std::uint64_t severed_in_flight = 0;  // copies lost when a cut closed
  std::uint64_t crashes = 0;         // crash events executed
  std::uint64_t partitions_cut = 0;  // partitions opened
  std::uint64_t partitions_healed = 0;

  // The ledger identity: every copy created (one per accepted
  // transmission plus one per duplication) resolves exactly once as
  // delivered, dropped, dead on arrival, severed mid-flight, or still in
  // flight. Duplicated-then-dropped copies cannot double-count because
  // duplication mints copies and drop consumes them — different sides of
  // the ledger. The chaos explorer asserts this after every quiescence.
  bool conserved() const {
    return transmissions + duplicated ==
           delivered + dropped + dead_on_arrival + severed_in_flight +
               in_flight;
  }
};

class UnreliableChannel final : public Channel {
 public:
  // `plan` must outlive the channel.
  UnreliableChannel(const FaultPlan& plan, std::uint64_t seed);

  // Schedules the plan's crash events and partition windows on `sim`,
  // relative to sim.now(). Call once per run before (or while) driving
  // the simulator.
  void arm(Simulator& sim);

  // Immediately crash-stops `node` (marks it dead, notifies subscribers).
  // Lets tests and benches place a crash between two operations without
  // pre-computing simulator times.
  void crash_now(NodeId node);

  // Immediately severs every link between side_a and side_b until the
  // returned partition id is healed. Drives the chaos runner's schedules;
  // plan windows go through the same path via arm().
  std::uint64_t cut_now(std::vector<NodeId> side_a,
                        std::vector<NodeId> side_b);
  void heal_now(std::uint64_t partition_id);

  // Layer this channel over another delivery mechanism: surviving copies
  // are handed to `inner` (at their full distance + extra delay) instead
  // of being scheduled on the simulator directly. Lets the fault model
  // ride a socket transport (src/netio/) — faults decided here, bytes
  // moved there. nullptr restores direct scheduling; `inner` must
  // outlive the channel.
  void set_inner(Channel* inner) { inner_ = inner; }

  void transmit(Simulator& sim, NodeId from, NodeId to, Weight distance,
                std::function<void()> deliver) override;
  bool is_dead(NodeId node) const override;
  void subscribe_crashes(std::function<void(NodeId)> on_crash) override;

  // Detaches every crash subscriber. A runtime that is being torn down
  // and rebuilt (the chaos restart path) must detach first: its
  // subscription captures `this`, which would dangle after destruction.
  void clear_crash_subscribers() { on_crash_.clear(); }
  bool link_blocked(SimTime now, NodeId from, NodeId to) const override;

  const ChannelStats& stats() const { return stats_; }

 private:
  struct ActivePartition {
    std::uint64_t id = 0;
    PartitionWindow window;  // start/end unused once active
  };

  bool severed(NodeId from, NodeId to) const;

  const FaultPlan* plan_;
  Channel* inner_ = nullptr;
  Rng rng_;
  std::vector<NodeId> dead_;  // small: linear scan beats hashing here
  std::vector<ActivePartition> active_partitions_;
  std::uint64_t next_partition_id_ = 1;
  std::vector<std::function<void(NodeId)>> on_crash_;
  ChannelStats stats_;
};

}  // namespace mot::faults
