// Executes a FaultPlan against the deterministic simulator: every
// transmit() draws from a seeded substream to decide drop / duplication /
// extra delay, and the armed crash schedule marks nodes dead and notifies
// subscribers (protocol runtimes hook recovery there).
//
// Determinism: the channel's Rng is seeded once and consumed in simulator
// event order, which is itself deterministic, so a (plan, seed) pair
// fully determines which messages are lost — the property the replay
// tests lock in.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "sim/channel.hpp"
#include "util/rng.hpp"

namespace mot::faults {

struct ChannelStats {
  std::uint64_t transmissions = 0;   // transmit() calls accepted
  std::uint64_t dropped = 0;         // messages that vanished
  std::uint64_t duplicated = 0;      // messages delivered twice
  std::uint64_t delayed = 0;         // copies given extra latency
  std::uint64_t blocked_dead = 0;    // transmissions to/from dead nodes
  std::uint64_t dead_on_arrival = 0; // copies whose target died in flight
  std::uint64_t crashes = 0;         // crash events executed
};

class UnreliableChannel final : public Channel {
 public:
  // `plan` must outlive the channel.
  UnreliableChannel(const FaultPlan& plan, std::uint64_t seed);

  // Schedules the plan's crash events on `sim`, relative to sim.now().
  // Call once per run before (or while) driving the simulator.
  void arm(Simulator& sim);

  // Immediately crash-stops `node` (marks it dead, notifies subscribers).
  // Lets tests and benches place a crash between two operations without
  // pre-computing simulator times.
  void crash_now(NodeId node);

  void transmit(Simulator& sim, NodeId from, NodeId to, Weight distance,
                std::function<void()> deliver) override;
  bool is_dead(NodeId node) const override;
  void subscribe_crashes(std::function<void(NodeId)> on_crash) override;

  const ChannelStats& stats() const { return stats_; }

 private:
  const FaultPlan* plan_;
  Rng rng_;
  std::vector<NodeId> dead_;  // small: linear scan beats hashing here
  std::vector<std::function<void(NodeId)>> on_crash_;
  ChannelStats stats_;
};

}  // namespace mot::faults
