// A deterministic, seed-independent description of what goes wrong in a
// run: per-link (or global) message fault rates and a schedule of
// crash-stop node failures. A FaultPlan is pure data — the randomness
// lives in the UnreliableChannel that executes it — so the same plan can
// drive many seeded repetitions, and two runs with the same (plan, seed)
// pair replay identically.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_sim.hpp"

namespace mot::faults {

// Fault rates of one directed link. All probabilities are per delivery
// attempt and independent; `extra delay` is uniform in
// [0, max_extra_delay] and models queueing/contention-induced reordering.
struct LinkFaults {
  double drop = 0.0;             // P(message vanishes)
  double duplicate = 0.0;        // P(message delivered twice)
  double delay = 0.0;            // P(a copy is delayed)
  double max_extra_delay = 0.0;  // extra latency bound for delayed copies

  bool faulty() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }
};

struct CrashEvent {
  SimTime time = 0.0;
  NodeId node = kInvalidNode;
};

// A timed traffic burst / hot spot: over [start, end) the workload driver
// multiplies its offered load, concentrating the extra traffic on the
// `focus` object (its chain becomes the hot spot). Pure data like the
// rest of the plan — the channel ignores bursts; workload drivers (the
// chaos runner, bench/tbl_overload) read them and inject the traffic, so
// the overload machinery under test sees organic message pressure rather
// than synthetic queue poking.
struct TrafficBurst {
  SimTime start = 0.0;
  SimTime end = 0.0;
  // The object drawing the extra queries (an ObjectId; plain uint32 here
  // because this layer sits below tracking).
  std::uint32_t focus = 0;
  double multiplier = 1.0; // offered load factor while the burst is live
};

// A timed bidirectional partition: every link with one endpoint in
// side_a and the other in side_b is severed for times in [start, end).
// Sides need not cover the network; nodes in neither side keep all their
// links. Pure data — UnreliableChannel::arm turns windows into cut/heal
// events on the simulator.
struct PartitionWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;  // heal time; every window heals
  std::vector<NodeId> side_a;  // sorted, deduplicated
  std::vector<NodeId> side_b;

  // True when the directed link from -> to crosses the cut (either way).
  bool cuts(NodeId from, NodeId to) const;
};

class FaultPlan {
 public:
  // Faults applied to every link without a per-link override.
  FaultPlan& set_default_faults(const LinkFaults& faults);

  // Per-link override (directed: from -> to).
  FaultPlan& set_link_faults(NodeId from, NodeId to,
                             const LinkFaults& faults);

  // Schedules a crash-stop failure of `node` at simulator time `time`
  // (relative to when the channel is armed). Crashes are executed in
  // time order; a node crashes at most once.
  FaultPlan& add_crash(SimTime time, NodeId node);

  // Schedules a bidirectional partition cutting side_a from side_b over
  // [start, end), relative to when the channel is armed. Windows may
  // overlap; a link is severed while any active window cuts it.
  FaultPlan& add_partition(SimTime start, SimTime end,
                           std::vector<NodeId> side_a,
                           std::vector<NodeId> side_b);

  // Schedules a traffic burst on `focus` over [start, end). Windows may
  // overlap; burst_multiplier() reports the product of active windows.
  FaultPlan& add_burst(const TrafficBurst& burst);

  const LinkFaults& faults_for(NodeId from, NodeId to) const;

  // Crash schedule sorted by time (ties broken by node id).
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }

  const std::vector<TrafficBurst>& bursts() const { return bursts_; }

  // Combined offered-load factor at `now` (1.0 outside every window).
  double burst_multiplier(SimTime now) const;

  bool has_link_faults() const {
    return defaults_.faulty() || !overrides_.empty();
  }

 private:
  LinkFaults defaults_;
  std::unordered_map<std::uint64_t, LinkFaults> overrides_;  // key (from,to)
  std::vector<CrashEvent> crashes_;
  std::vector<PartitionWindow> partitions_;
  std::vector<TrafficBurst> bursts_;
};

}  // namespace mot::faults
