// A deterministic, seed-independent description of what goes wrong in a
// run: per-link (or global) message fault rates and a schedule of
// crash-stop node failures. A FaultPlan is pure data — the randomness
// lives in the UnreliableChannel that executes it — so the same plan can
// drive many seeded repetitions, and two runs with the same (plan, seed)
// pair replay identically.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_sim.hpp"

namespace mot::faults {

// Fault rates of one directed link. All probabilities are per delivery
// attempt and independent; `extra delay` is uniform in
// [0, max_extra_delay] and models queueing/contention-induced reordering.
struct LinkFaults {
  double drop = 0.0;             // P(message vanishes)
  double duplicate = 0.0;        // P(message delivered twice)
  double delay = 0.0;            // P(a copy is delayed)
  double max_extra_delay = 0.0;  // extra latency bound for delayed copies

  bool faulty() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }
};

struct CrashEvent {
  SimTime time = 0.0;
  NodeId node = kInvalidNode;
};

class FaultPlan {
 public:
  // Faults applied to every link without a per-link override.
  FaultPlan& set_default_faults(const LinkFaults& faults);

  // Per-link override (directed: from -> to).
  FaultPlan& set_link_faults(NodeId from, NodeId to,
                             const LinkFaults& faults);

  // Schedules a crash-stop failure of `node` at simulator time `time`
  // (relative to when the channel is armed). Crashes are executed in
  // time order; a node crashes at most once.
  FaultPlan& add_crash(SimTime time, NodeId node);

  const LinkFaults& faults_for(NodeId from, NodeId to) const;

  // Crash schedule sorted by time (ties broken by node id).
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  bool has_link_faults() const {
    return defaults_.faulty() || !overrides_.empty();
  }

 private:
  LinkFaults defaults_;
  std::unordered_map<std::uint64_t, LinkFaults> overrides_;  // key (from,to)
  std::vector<CrashEvent> crashes_;
};

}  // namespace mot::faults
