#include "faults/unreliable_channel.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mot::faults {

UnreliableChannel::UnreliableChannel(const FaultPlan& plan,
                                     std::uint64_t seed)
    : plan_(&plan), rng_(SeedTree(seed).seed_for("unreliable-channel")) {}

void UnreliableChannel::arm(Simulator& sim) {
  for (const CrashEvent& crash : plan_->crashes()) {
    sim.schedule(crash.time, [this, node = crash.node] { crash_now(node); });
  }
}

void UnreliableChannel::crash_now(NodeId node) {
  if (is_dead(node)) return;
  dead_.push_back(node);
  ++stats_.crashes;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kCrash, .from = node});
  }
  for (const auto& callback : on_crash_) callback(node);
}

bool UnreliableChannel::is_dead(NodeId node) const {
  return std::find(dead_.begin(), dead_.end(), node) != dead_.end();
}

void UnreliableChannel::subscribe_crashes(
    std::function<void(NodeId)> on_crash) {
  MOT_EXPECTS(on_crash != nullptr);
  on_crash_.push_back(std::move(on_crash));
}

void UnreliableChannel::transmit(Simulator& sim, NodeId from, NodeId to,
                                 Weight distance,
                                 std::function<void()> deliver) {
  if (is_dead(from) || is_dead(to)) {
    ++stats_.blocked_dead;
    return;
  }
  ++stats_.transmissions;
  // Self-delivery never crosses a link, so it is immune to link faults.
  const LinkFaults faults =
      from == to ? LinkFaults{} : plan_->faults_for(from, to);

  int copies = 1;
  if (faults.drop > 0.0 && rng_.chance(faults.drop)) {
    ++stats_.dropped;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kChannelDrop,
                 .t = sim.now(),
                 .from = from,
                 .to = to,
                 .dist = distance});
    }
    return;
  }
  if (faults.duplicate > 0.0 && rng_.chance(faults.duplicate)) {
    ++stats_.duplicated;
    copies = 2;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kChannelDuplicate,
                 .t = sim.now(),
                 .from = from,
                 .to = to,
                 .dist = distance});
    }
  }
  for (int copy = 0; copy < copies; ++copy) {
    Weight extra = 0.0;
    if (faults.delay > 0.0 && rng_.chance(faults.delay)) {
      ++stats_.delayed;
      extra = rng_.uniform(0.0, faults.max_extra_delay);
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kChannelDelay,
                   .t = sim.now(),
                   .from = from,
                   .to = to,
                   .dist = extra});
      }
    }
    // The target may crash while the copy is in flight (crash-stop): the
    // message is then lost on arrival rather than processed by a ghost.
    sim.schedule(distance + extra, [this, to, deliver] {
      if (is_dead(to)) {
        ++stats_.dead_on_arrival;
        return;
      }
      deliver();
    });
  }
}

}  // namespace mot::faults
