#include "faults/unreliable_channel.hpp"

#include <algorithm>
#include <memory>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mot::faults {

UnreliableChannel::UnreliableChannel(const FaultPlan& plan,
                                     std::uint64_t seed)
    : plan_(&plan), rng_(SeedTree(seed).seed_for("unreliable-channel")) {}

void UnreliableChannel::arm(Simulator& sim) {
  for (const CrashEvent& crash : plan_->crashes()) {
    sim.schedule(crash.time, [this, node = crash.node] { crash_now(node); });
  }
  // Each window becomes one cut and one matching heal. Capturing the id
  // through a shared slot is safe: the cut fires strictly before the heal
  // (add_partition enforces end > start) and the simulator is
  // single-threaded within a run.
  for (const PartitionWindow& window : plan_->partitions()) {
    auto id = std::make_shared<std::uint64_t>(0);
    sim.schedule(window.start, [this, id, side_a = window.side_a,
                                side_b = window.side_b]() mutable {
      *id = cut_now(std::move(side_a), std::move(side_b));
    });
    sim.schedule(window.end, [this, id = std::move(id)] { heal_now(*id); });
  }
}

void UnreliableChannel::crash_now(NodeId node) {
  if (is_dead(node)) return;
  dead_.push_back(node);
  ++stats_.crashes;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kCrash, .from = node});
  }
  for (const auto& callback : on_crash_) callback(node);
}

std::uint64_t UnreliableChannel::cut_now(std::vector<NodeId> side_a,
                                         std::vector<NodeId> side_b) {
  PartitionWindow window;
  window.side_a = std::move(side_a);
  window.side_b = std::move(side_b);
  const auto normalize = [](std::vector<NodeId>& side) {
    std::sort(side.begin(), side.end());
    side.erase(std::unique(side.begin(), side.end()), side.end());
  };
  normalize(window.side_a);
  normalize(window.side_b);
  MOT_EXPECTS(!window.side_a.empty() && !window.side_b.empty());
  for (const NodeId node : window.side_a) {
    MOT_EXPECTS(!std::binary_search(window.side_b.begin(),
                                    window.side_b.end(), node));
  }
  const std::uint64_t id = next_partition_id_++;
  active_partitions_.push_back({id, std::move(window)});
  ++stats_.partitions_cut;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kPartitionCut, .aux = id});
  }
  return id;
}

void UnreliableChannel::heal_now(std::uint64_t partition_id) {
  const auto it = std::find_if(
      active_partitions_.begin(), active_partitions_.end(),
      [partition_id](const ActivePartition& p) { return p.id == partition_id; });
  MOT_EXPECTS(it != active_partitions_.end());
  active_partitions_.erase(it);
  ++stats_.partitions_healed;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kPartitionHeal, .aux = partition_id});
  }
}

bool UnreliableChannel::is_dead(NodeId node) const {
  return std::find(dead_.begin(), dead_.end(), node) != dead_.end();
}

bool UnreliableChannel::severed(NodeId from, NodeId to) const {
  if (from == to) return false;  // a node is never cut from itself
  for (const ActivePartition& partition : active_partitions_) {
    if (partition.window.cuts(from, to)) return true;
  }
  return false;
}

bool UnreliableChannel::link_blocked(SimTime now, NodeId from,
                                     NodeId to) const {
  (void)now;
  return severed(from, to);
}

void UnreliableChannel::subscribe_crashes(
    std::function<void(NodeId)> on_crash) {
  MOT_EXPECTS(on_crash != nullptr);
  on_crash_.push_back(std::move(on_crash));
}

void UnreliableChannel::transmit(Simulator& sim, NodeId from, NodeId to,
                                 Weight distance,
                                 std::function<void()> deliver) {
  if (is_dead(from) || is_dead(to)) {
    ++stats_.blocked_dead;
    return;
  }
  // A partition is observable at the sender (carrier sense): the frame is
  // refused outright rather than silently lost, so link layers can
  // distinguish "link down" from "message lost" and suspend retries.
  if (severed(from, to)) {
    ++stats_.partition_blocked;
    return;
  }
  ++stats_.transmissions;
  // Self-delivery never crosses a link, so it is immune to link faults.
  const LinkFaults faults =
      from == to ? LinkFaults{} : plan_->faults_for(from, to);

  // Duplication is decided before loss and loss is drawn per copy: a
  // duplicated frame is two independent copies, either of which may be
  // dropped. Deciding drop first would conflate "both copies lost" with
  // "never duplicated" and break the conservation ledger.
  int copies = 1;
  if (faults.duplicate > 0.0 && rng_.chance(faults.duplicate)) {
    ++stats_.duplicated;
    copies = 2;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kChannelDuplicate,
                 .t = sim.now(),
                 .from = from,
                 .to = to,
                 .dist = distance});
    }
  }
  for (int copy = 0; copy < copies; ++copy) {
    if (faults.drop > 0.0 && rng_.chance(faults.drop)) {
      ++stats_.dropped;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kChannelDrop,
                   .t = sim.now(),
                   .from = from,
                   .to = to,
                   .dist = distance});
      }
      continue;
    }
    Weight extra = 0.0;
    if (faults.delay > 0.0 && rng_.chance(faults.delay)) {
      ++stats_.delayed;
      extra = rng_.uniform(0.0, faults.max_extra_delay);
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kChannelDelay,
                   .t = sim.now(),
                   .from = from,
                   .to = to,
                   .dist = extra});
      }
    }
    ++stats_.in_flight;
    // The target may crash while the copy is in flight (crash-stop): the
    // message is then lost on arrival rather than processed by a ghost.
    // Likewise a partition that closes behind a launched copy severs it:
    // physically the frame is still traveling when the cut happens, so it
    // never reaches the far side.
    auto resolve = [this, from, to, deliver] {
      --stats_.in_flight;
      if (is_dead(to)) {
        ++stats_.dead_on_arrival;
        return;
      }
      if (severed(from, to)) {
        ++stats_.severed_in_flight;
        return;
      }
      ++stats_.delivered;
      deliver();
    };
    if (inner_ != nullptr) {
      // Layered delivery: this channel decided the copy's fate; the inner
      // channel (e.g. a socket transport) moves it.
      inner_->transmit(sim, from, to, distance + extra, std::move(resolve));
    } else {
      sim.schedule(distance + extra, std::move(resolve));
    }
  }
}

}  // namespace mot::faults
