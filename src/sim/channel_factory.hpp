// Name-keyed registry of Channel constructors, so benches and the
// cluster runner can pick a delivery layer from a command-line flag
// ("reliable", "socket", ...) without linking against every
// implementation's configuration surface. "reliable" is built in;
// src/faults/ and src/netio/ register theirs at startup of whatever
// binary wants them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"

namespace mot {

using ChannelFactory = std::function<std::unique_ptr<Channel>()>;

// Registers `factory` under `name`. Returns false (and keeps the
// original) if the name is already taken. Not thread-safe: register
// during startup, before spawning workers.
bool register_channel(const std::string& name, ChannelFactory factory);

// Constructs the channel registered under `name`; nullptr if unknown.
std::unique_ptr<Channel> make_channel(const std::string& name);

// Registered names, sorted (for --help strings and error messages).
std::vector<std::string> channel_names();

}  // namespace mot
