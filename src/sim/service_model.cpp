#include "sim/service_model.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "util/check.hpp"

namespace mot {

ServiceModel::ServiceModel(Simulator& sim, std::size_t num_nodes,
                           const overload::OverloadConfig& config)
    : sim_(sim), config_(config), node_configs_(num_nodes, config),
      busy_(num_nodes, false), loads_(num_nodes), red_(config.seed) {
  MOT_EXPECTS(config_.service_rate > 0.0);
  MOT_EXPECTS(config_.queue_capacity > 0);
  queues_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    queues_.emplace_back(&node_configs_[i]);
  }
}

overload::Admit ServiceModel::offer(std::size_t node, overload::Priority cls,
                                    std::function<void()> run) {
  MOT_EXPECTS(node < queues_.size());
  ++stats_.arrivals;
  const overload::Admit outcome =
      queues_[node].offer(sim_.now(), cls, std::move(run), red_);
  NodeLoad& load = loads_[node];
  switch (outcome) {
    case overload::Admit::kAdmit:
      ++stats_.admitted;
      ++load.admitted_total;
      stats_.max_depth = std::max(stats_.max_depth, queues_[node].depth());
      if (!busy_[node]) pump(node);
      break;
    case overload::Admit::kShedCapacity:
      ++stats_.shed_capacity;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      ++load.sheds;
      ++load.sheds_total;
      break;
    case overload::Admit::kShedDeadline:
      ++stats_.shed_deadline;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      ++load.sheds;
      ++load.sheds_total;
      break;
    case overload::Admit::kShedEarly:
      ++stats_.shed_early;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      ++load.sheds;
      ++load.sheds_total;
      break;
  }
  load.depth_ewma += 0.125 * (static_cast<double>(depth(node)) -
                              load.depth_ewma);
  return outcome;
}

void ServiceModel::pump(std::size_t node) {
  MOT_CHECK(!busy_[node]);
  if (queues_[node].empty()) return;
  busy_[node] = true;
  // The next item is picked at service *start* so the measured delay is
  // exactly its wait in the queue; the handler runs inside the
  // service-completion event, one service interval later.
  overload::QueueItem item = queues_[node].take();
  const double waited = sim_.now() - item.arrival;
  queue_delays_.add(waited);
  loads_[node].delay_sum += waited;
  ++loads_[node].delay_count;
  const double interval = 1.0 / config_.service_rate;
  sim_.schedule(interval, [this, node, run = std::move(item.run)]() mutable {
    ++stats_.serviced;
    ++loads_[node].serviced_total;
    busy_[node] = false;
    run();
    // The handler may have enqueued locally or crashed the node's work
    // away; either way, keep draining whatever remains.
    if (!busy_[node]) pump(node);
  });
}

std::size_t ServiceModel::depth(std::size_t node) const {
  MOT_EXPECTS(node < queues_.size());
  // The in-service message still occupies capacity until it completes.
  return queues_[node].depth() + (busy_[node] ? 1 : 0);
}

std::size_t ServiceModel::headroom(std::size_t node) const {
  const std::size_t limit =
      node_configs_[node].admit_limit(overload::Priority::kQuery);
  const std::size_t d = depth(node);
  return d >= limit ? 0 : limit - d;
}

bool ServiceModel::node_ledgers_conserved() const {
  std::uint64_t admitted = 0;
  std::uint64_t serviced = 0;
  std::uint64_t shed = 0;
  for (const NodeLoad& load : loads_) {
    admitted += load.admitted_total;
    serviced += load.serviced_total;
    shed += load.sheds_total;
  }
  return admitted == stats_.admitted && serviced == stats_.serviced &&
         shed == stats_.shed_total();
}

void ServiceModel::reset_load_epoch() {
  for (NodeLoad& load : loads_) {
    load.delay_sum = 0.0;
    load.delay_count = 0;
    load.sheds = 0;
  }
}

void ServiceModel::set_red_fraction(std::size_t node, double fraction) {
  MOT_EXPECTS(node < node_configs_.size());
  MOT_EXPECTS(fraction > 0.0);
  node_configs_[node].red_fraction = fraction;
}

void ServiceModel::set_query_admit_fraction(std::size_t node,
                                            double fraction) {
  MOT_EXPECTS(node < node_configs_.size());
  MOT_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  // The class ladder must stay monotone: the query fraction may not
  // exceed the maintenance fraction of the same node.
  MOT_EXPECTS(fraction <=
              node_configs_[node].admit_fraction[static_cast<std::size_t>(
                  overload::Priority::kMaintenance)]);
  node_configs_[node].admit_fraction[static_cast<std::size_t>(
      overload::Priority::kQuery)] = fraction;
}

std::size_t ServiceModel::total_queued() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    total += depth(i);
  }
  return total;
}

bool ServiceModel::conserved() const {
  if (stats_.arrivals != stats_.admitted + stats_.shed_total()) return false;
  return stats_.admitted == stats_.serviced + total_queued();
}

void ServiceModel::export_metrics(obs::MetricsRegistry& registry) const {
  auto set_counter = [&registry](const std::string& name,
                                 const obs::Labels& labels,
                                 std::uint64_t value) {
    auto& counter = registry.counter(name, labels);
    counter.reset();
    counter.increment(value);
  };
  set_counter("mot_service_arrivals_total", {}, stats_.arrivals);
  set_counter("mot_service_admitted_total", {}, stats_.admitted);
  set_counter("mot_service_serviced_total", {}, stats_.serviced);
  set_counter("mot_service_shed_total", {{"reason", "capacity"}},
              stats_.shed_capacity);
  set_counter("mot_service_shed_total", {{"reason", "deadline"}},
              stats_.shed_deadline);
  set_counter("mot_service_shed_total", {{"reason", "early"}},
              stats_.shed_early);
  for (std::size_t cls = 0; cls < overload::kNumClasses; ++cls) {
    set_counter(
        "mot_service_shed_by_class_total",
        {{"class", overload::priority_name(
                       static_cast<overload::Priority>(cls))}},
        stats_.shed_by_class[cls]);
  }
  registry.gauge("mot_service_queued").set(
      static_cast<double>(total_queued()));
  registry.gauge("mot_service_max_depth").set(
      static_cast<double>(stats_.max_depth));
  auto& delays = registry.histogram(
      "mot_service_queue_delay", {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  for (double sample : queue_delays_.samples()) delays.observe(sample);
}

}  // namespace mot
