#include "sim/service_model.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "util/check.hpp"

namespace mot {

ServiceModel::ServiceModel(Simulator& sim, std::size_t num_nodes,
                           const overload::OverloadConfig& config)
    : sim_(sim), config_(config), busy_(num_nodes, false),
      red_(config.seed) {
  MOT_EXPECTS(config_.service_rate > 0.0);
  MOT_EXPECTS(config_.queue_capacity > 0);
  queues_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    queues_.emplace_back(&config_);
  }
}

overload::Admit ServiceModel::offer(std::size_t node, overload::Priority cls,
                                    std::function<void()> run) {
  MOT_EXPECTS(node < queues_.size());
  ++stats_.arrivals;
  const overload::Admit outcome =
      queues_[node].offer(sim_.now(), cls, std::move(run), red_);
  switch (outcome) {
    case overload::Admit::kAdmit:
      ++stats_.admitted;
      stats_.max_depth = std::max(stats_.max_depth, queues_[node].depth());
      if (!busy_[node]) pump(node);
      break;
    case overload::Admit::kShedCapacity:
      ++stats_.shed_capacity;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      break;
    case overload::Admit::kShedDeadline:
      ++stats_.shed_deadline;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      break;
    case overload::Admit::kShedEarly:
      ++stats_.shed_early;
      ++stats_.shed_by_class[static_cast<std::size_t>(cls)];
      break;
  }
  return outcome;
}

void ServiceModel::pump(std::size_t node) {
  MOT_CHECK(!busy_[node]);
  if (queues_[node].empty()) return;
  busy_[node] = true;
  // The next item is picked at service *start* so the measured delay is
  // exactly its wait in the queue; the handler runs inside the
  // service-completion event, one service interval later.
  overload::QueueItem item = queues_[node].take();
  queue_delays_.add(sim_.now() - item.arrival);
  const double interval = 1.0 / config_.service_rate;
  sim_.schedule(interval, [this, node, run = std::move(item.run)]() mutable {
    ++stats_.serviced;
    busy_[node] = false;
    run();
    // The handler may have enqueued locally or crashed the node's work
    // away; either way, keep draining whatever remains.
    if (!busy_[node]) pump(node);
  });
}

std::size_t ServiceModel::depth(std::size_t node) const {
  MOT_EXPECTS(node < queues_.size());
  // The in-service message still occupies capacity until it completes.
  return queues_[node].depth() + (busy_[node] ? 1 : 0);
}

std::size_t ServiceModel::headroom(std::size_t node) const {
  const std::size_t limit = config_.admit_limit(overload::Priority::kQuery);
  const std::size_t d = depth(node);
  return d >= limit ? 0 : limit - d;
}

std::size_t ServiceModel::total_queued() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    total += depth(i);
  }
  return total;
}

bool ServiceModel::conserved() const {
  if (stats_.arrivals != stats_.admitted + stats_.shed_total()) return false;
  return stats_.admitted == stats_.serviced + total_queued();
}

void ServiceModel::export_metrics(obs::MetricsRegistry& registry) const {
  auto set_counter = [&registry](const std::string& name,
                                 const obs::Labels& labels,
                                 std::uint64_t value) {
    auto& counter = registry.counter(name, labels);
    counter.reset();
    counter.increment(value);
  };
  set_counter("mot_service_arrivals_total", {}, stats_.arrivals);
  set_counter("mot_service_admitted_total", {}, stats_.admitted);
  set_counter("mot_service_serviced_total", {}, stats_.serviced);
  set_counter("mot_service_shed_total", {{"reason", "capacity"}},
              stats_.shed_capacity);
  set_counter("mot_service_shed_total", {{"reason", "deadline"}},
              stats_.shed_deadline);
  set_counter("mot_service_shed_total", {{"reason", "early"}},
              stats_.shed_early);
  for (std::size_t cls = 0; cls < overload::kNumClasses; ++cls) {
    set_counter(
        "mot_service_shed_by_class_total",
        {{"class", overload::priority_name(
                       static_cast<overload::Priority>(cls))}},
        stats_.shed_by_class[cls]);
  }
  registry.gauge("mot_service_queued").set(
      static_cast<double>(total_queued()));
  registry.gauge("mot_service_max_depth").set(
      static_cast<double>(stats_.max_depth));
  auto& delays = registry.histogram(
      "mot_service_queue_delay", {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  for (double sample : queue_delays_.samples()) delays.observe(sample);
}

}  // namespace mot
