// Delivery abstraction between protocol runtimes and the simulator.
//
// The discrete-event simulator itself is perfectly reliable: schedule()
// fires every action exactly once at the requested time. A Channel owns
// the decision of what "transmitting a message over a link" means — the
// default is exactly-once in-time delivery, while a fault-injecting
// implementation (src/faults/) may drop, duplicate or delay the delivery
// and may declare nodes crashed. Protocol code talks only to this
// interface, so the reliable and lossy configurations share one runtime.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"
#include "sim/event_sim.hpp"

namespace mot {

class Channel {
 public:
  virtual ~Channel() = default;

  // Transmits one message from `from` to `to` over a link of length
  // `distance`. `deliver` runs zero or more times (drop / duplication),
  // each at a time >= now() + distance (extra delay reorders traffic).
  virtual void transmit(Simulator& sim, NodeId from, NodeId to,
                        Weight distance, std::function<void()> deliver) = 0;

  // Crash-stop failure oracle (Section 7: departures are announced, so
  // live nodes may consult liveness when choosing a next hop). The
  // reliable default has no failures.
  virtual bool is_dead(NodeId node) const {
    (void)node;
    return false;
  }

  // Registers a callback invoked when a node crash-stops, after the node
  // is marked dead. Runtimes hook their recovery procedure here. The
  // reliable default never crashes anyone, so the subscription is a no-op.
  virtual void subscribe_crashes(std::function<void(NodeId)> on_crash) {
    (void)on_crash;
  }

  // Carrier sense: true when the link from -> to is currently severed by
  // a network partition. A partitioned link is locally observable at its
  // endpoints (unlike a remote crash), so link layers may consult this to
  // suspend futile retransmission instead of burning retry attempts, and
  // query routing may climb around an unreachable stop. The reliable
  // default has no partitions.
  virtual bool link_blocked(SimTime now, NodeId from, NodeId to) const {
    (void)now;
    (void)from;
    (void)to;
    return false;
  }
};

// The reliable channel: exactly-once delivery after exactly `distance`
// time units — identical to scheduling directly on the simulator.
class ReliableChannel final : public Channel {
 public:
  void transmit(Simulator& sim, NodeId from, NodeId to, Weight distance,
                std::function<void()> deliver) override {
    (void)from;
    (void)to;
    sim.schedule(distance, std::move(deliver));
  }
};

}  // namespace mot
