// Per-node finite-capacity service model.
//
// Without this layer every delivered message executes its handler the
// instant it arrives — nodes have infinite processing capacity and the
// paper's load-balancing machinery is never stressed. A ServiceModel
// gives each node a bounded inbox (overload::BoundedNodeQueue) drained at
// a fixed service rate on the simulator clock: delivered messages queue
// and age, admission control sheds the excess before it is acknowledged
// (so the sender's retransmission layer retries it — backpressure, not
// loss), and queueing delay becomes measurable.
//
// Conservation ledger: arrivals == admitted + shed_total, and admitted ==
// serviced + (still queued). At quiescence the queues must be empty, so
// arrivals == serviced + shed_total.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "overload/node_queue.hpp"
#include "overload/overload.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mot {

namespace obs {
class MetricsRegistry;
}

struct ServiceStats {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t serviced = 0;
  std::uint64_t shed_capacity = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_early = 0;
  std::uint64_t shed_by_class[overload::kNumClasses] = {0, 0, 0, 0};
  std::size_t max_depth = 0;

  std::uint64_t shed_total() const {
    return shed_capacity + shed_deadline + shed_early;
  }
  bool operator==(const ServiceStats&) const = default;
};

// Per-node load accumulators feeding the adaptive control plane. The
// epoch fields reset at every controller step; the *_total ledgers never
// reset, so the chaos oracle can reconcile their sums against the global
// ServiceStats at any quiescence point.
struct NodeLoad {
  // Epoch accumulators (cleared by reset_load_epoch()).
  double delay_sum = 0.0;
  std::uint64_t delay_count = 0;
  std::uint64_t sheds = 0;
  // Cumulative ledgers (never cleared).
  std::uint64_t admitted_total = 0;
  std::uint64_t serviced_total = 0;
  std::uint64_t sheds_total = 0;
  // Exponentially weighted queue depth sampled at every admission.
  double depth_ewma = 0.0;
};

class ServiceModel {
 public:
  ServiceModel(Simulator& sim, std::size_t num_nodes,
               const overload::OverloadConfig& config);

  // Offers a class-`cls` message to `node`'s inbox. On admission the
  // handler runs later, from a service-completion event; the return value
  // tells the caller (the link layer) whether to acknowledge the frame.
  overload::Admit offer(std::size_t node, overload::Priority cls,
                        std::function<void()> run);

  // Depth including the in-service slot, i.e. what admission sees.
  std::size_t depth(std::size_t node) const;
  bool overloaded(std::size_t node) const {
    return depth(node) >= node_configs_[node].high_watermark();
  }
  // Remaining admission headroom for the lowest class — what an ack
  // advertises to the sender as credit.
  std::size_t headroom(std::size_t node) const;

  std::size_t total_queued() const;
  bool conserved() const;
  // Per-node ledgers must sum to the global ServiceStats at all times.
  bool node_ledgers_conserved() const;

  const overload::OverloadConfig& config() const { return config_; }
  // The node's current operating point. Identical to config() until an
  // adaptive controller moves it.
  const overload::OverloadConfig& node_config(std::size_t node) const {
    return node_configs_[node];
  }
  std::size_t num_nodes() const { return queues_.size(); }
  const NodeLoad& load(std::size_t node) const { return loads_[node]; }
  void reset_load_epoch();

  // Adaptive control-plane hooks: retune one node's RED onset or
  // query-class admit fraction. Admission sees the new thresholds on the
  // next offer; nothing already queued is touched, so calling this at a
  // quiescence point cannot unbalance the ledger.
  void set_red_fraction(std::size_t node, double fraction);
  void set_query_admit_fraction(std::size_t node, double fraction);

  const ServiceStats& stats() const { return stats_; }
  const SampleSet& queue_delays() const { return queue_delays_; }

  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  void pump(std::size_t node);

  Simulator& sim_;
  overload::OverloadConfig config_;  // the static base operating point
  // One config per node so the controller can move a single hotspot.
  // Sized once in the constructor and never resized: the queues hold
  // pointers into this vector.
  std::vector<overload::OverloadConfig> node_configs_;
  std::vector<overload::BoundedNodeQueue> queues_;
  std::vector<bool> busy_;  // a service-completion event is outstanding
  std::vector<NodeLoad> loads_;
  Rng red_;                 // shared deterministic RED stream
  ServiceStats stats_;
  SampleSet queue_delays_;  // time from arrival to service start
};

}  // namespace mot
