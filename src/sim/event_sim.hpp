// Deterministic discrete-event simulator driving the concurrent execution
// mode (Sections 4.1.2 / 4.2.2). Message latency between two nodes is
// their shortest-path distance — the paper's "time unit is the duration a
// message needs to travel unit distance".
//
// Determinism: events at equal times fire in schedule order (a strictly
// increasing sequence number breaks ties), so a seeded run replays
// identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "graph/graph.hpp"

namespace mot {

using SimTime = double;

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `action` to run at now() + delay. Returns an event id.
  std::uint64_t schedule(SimTime delay, std::function<void()> action);

  // Cancels a scheduled event. Returns false if it already ran or the id
  // is unknown (cancellation is lazy: the slot is tombstoned).
  bool cancel(std::uint64_t event_id);

  // Runs events until the queue drains. Returns the number processed.
  // `max_events` guards against runaway feedback loops in tests.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  // Runs events with time <= deadline.
  std::size_t run_until(SimTime deadline);

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t id;
    std::function<void()> action;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  bool pop_and_run();

  SimTime now_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily
};

}  // namespace mot
