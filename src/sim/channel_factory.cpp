#include "sim/channel_factory.hpp"

#include <algorithm>
#include <map>

namespace mot {
namespace {

std::map<std::string, ChannelFactory>& registry() {
  static std::map<std::string, ChannelFactory> factories = {
      {"reliable", [] { return std::make_unique<ReliableChannel>(); }},
  };
  return factories;
}

}  // namespace

bool register_channel(const std::string& name, ChannelFactory factory) {
  return registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Channel> make_channel(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() ? nullptr : it->second();
}

std::vector<std::string> channel_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace mot
