// Communication-cost accounting (Section 1.1 of the paper): the cost of
// an operation is the total distance traversed by all of its messages.
// Trackers charge every overlay hop to a CostMeter; the harness snapshots
// meters around operations to attribute cost per move / per query.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "obs/metrics_registry.hpp"

namespace mot {

class CostMeter {
 public:
  void charge(Weight distance, std::uint64_t messages = 1) {
    total_distance_ += distance;
    total_messages_ += messages;
  }

  void reset() {
    total_distance_ = 0.0;
    total_messages_ = 0;
  }

  Weight total_distance() const { return total_distance_; }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  Weight total_distance_ = 0.0;
  std::uint64_t total_messages_ = 0;
};

// RAII window over a meter: cost() returns the distance charged since
// construction. Lets the harness measure a single operation's cost while
// the tracker keeps one cumulative meter.
class CostWindow {
 public:
  explicit CostWindow(const CostMeter& meter)
      : meter_(&meter), start_distance_(meter.total_distance()),
        start_messages_(meter.total_messages()) {}

  Weight cost() const { return meter_->total_distance() - start_distance_; }
  std::uint64_t messages() const {
    return meter_->total_messages() - start_messages_;
  }

 private:
  const CostMeter* meter_;
  Weight start_distance_;
  std::uint64_t start_messages_;
};

// Projects a meter snapshot into a metrics registry. Idempotent: the
// instruments are overwritten, not accumulated, so re-exporting the same
// meter does not double-count.
inline void export_cost_meter(const CostMeter& meter,
                              obs::MetricsRegistry& registry,
                              const obs::Labels& labels = {}) {
  registry.gauge("mot_cost_distance_total", labels)
      .set(meter.total_distance());
  obs::Counter& messages =
      registry.counter("mot_cost_messages_total", labels);
  messages.reset();
  messages.increment(meter.total_messages());
}

}  // namespace mot
