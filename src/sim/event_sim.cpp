#include "sim/event_sim.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot {

std::uint64_t Simulator::schedule(SimTime delay, std::function<void()> action) {
  MOT_EXPECTS(delay >= 0.0);
  MOT_EXPECTS(action != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push({now_ + delay, id, std::move(action)});
  ++live_events_;
  return id;
}

bool Simulator::cancel(std::uint64_t event_id) {
  if (event_id >= next_id_) return false;
  // Lazy cancellation: remember the id; the event is skipped when popped.
  if (std::find(cancelled_.begin(), cancelled_.end(), event_id) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(event_id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; we need to move the action out, so
    // const_cast on a value we immediately pop. The queue never reads the
    // moved-from action again.
    Event& top = const_cast<Event&>(queue_.top());
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    MOT_CHECK(top.time >= now_);
    now_ = top.time;
    auto action = std::move(top.action);
    queue_.pop();
    --live_events_;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && pop_and_run()) ++processed;
  return processed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline && pop_and_run()) {
    ++processed;
  }
  return processed;
}

}  // namespace mot
