#include "par/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mot::par {

namespace {

// Worker index of the current thread within *some* pool; -1 elsewhere.
// One pool is live at a time in practice (the default pool); a thread
// never belongs to two pools, so a plain thread_local is enough.
thread_local int t_worker_index = -1;

}  // namespace

// One for_each invocation. Task indices are dealt round-robin into
// per-worker deques up front; owners pop from the back (most recently
// assigned, cache-warm), thieves steal from the front (oldest, largest
// remaining run of work). Deques are mutex-guarded — tasks here are
// whole experiment cells (milliseconds to seconds), so queue overhead is
// noise and the simple locking is easy to reason about under TSan.
struct ThreadPool::Job {
  struct Deque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };

  explicit Job(std::size_t workers) : deques(workers) {}

  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<Deque> deques;
  std::atomic<std::size_t> remaining{0};

  std::mutex done_mutex;
  std::condition_variable done;
  std::exception_ptr first_error;  // guarded by done_mutex

  void run_task(std::size_t task) {
    try {
      (*fn)(task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::current_worker() { return t_worker_index; }

bool ThreadPool::next_task(Job& job, std::size_t self, std::size_t& task) {
  {
    Job::Deque& own = job.deques[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = own.tasks.back();
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal scan: victims in ring order starting after self.
  const std::size_t n = job.deques.size();
  for (std::size_t step = 1; step < n; ++step) {
    Job::Deque& victim = job.deques[(self + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = victim.tasks.front();
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = static_cast<int>(index);
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      job = job_;
      seen_generation = job_generation_;
    }
    std::size_t task = 0;
    while (next_task(*job, index, task)) job->run_task(task);
  }
}

void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Inline paths: trivial work, a single worker, or a nested call from
  // inside a pool task (running inline avoids deadlock on the job slot).
  if (count == 1 || worker_count() == 1 || t_worker_index >= 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>(worker_count());
  job->fn = &fn;
  job->remaining.store(count, std::memory_order_relaxed);
  // Round-robin deal: task i starts on worker i % workers, so every
  // worker begins with an even slice and stealing only kicks in when
  // cells are unbalanced.
  for (std::size_t i = 0; i < count; ++i) {
    job->deques[i % worker_count()].tasks.push_back(i);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_generation_;
  }
  wake_.notify_all();

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_ == job) job_ = nullptr;
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

// --- default pool ---------------------------------------------------------

namespace {

std::mutex g_default_mutex;
std::size_t g_default_workers = 0;  // 0 = unresolved
std::unique_ptr<ThreadPool> g_default_pool;

std::size_t resolve(std::size_t workers) {
  if (workers != 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

void set_default_workers(std::size_t workers) {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  const std::size_t resolved = resolve(workers);
  if (resolved == g_default_workers) return;
  g_default_workers = resolved;
  g_default_pool.reset();  // next default_pool() rebuilds at the new size
}

std::size_t default_workers() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  if (g_default_workers == 0) g_default_workers = resolve(0);
  return g_default_workers;
}

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  if (g_default_workers == 0) g_default_workers = resolve(0);
  if (g_default_pool == nullptr) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_workers);
  }
  return *g_default_pool;
}

void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || ThreadPool::current_worker() >= 0 ||
      default_workers() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  default_pool().for_each(count, fn);
}

}  // namespace mot::par
