// Work-stealing thread pool for the experiment engine.
//
// The Section 8 sweeps are embarrassingly parallel: every (grid size x
// algorithm x trial) cell builds its own tracker, RNG streams and cost
// meter, so cells can run on any worker in any order as long as results
// are *reduced* in cell-index order. This pool supplies exactly that
// contract:
//
//   * ThreadPool::for_each(count, fn) runs fn(0..count-1) across fixed
//     workers with per-worker deques; an idle worker steals from the
//     front of a victim's deque (oldest task first), so unbalanced cells
//     (a 1024-node hierarchy build vs a 16-node one) cannot serialize
//     the sweep behind one slow worker.
//   * ThreadPool::map(count, fn) collects fn(i) into slot i of a result
//     vector — the deterministic ordered reduction: output depends only
//     on the index, never on the schedule.
//
// Determinism contract: a task must derive all randomness from its index
// (seeded RNG streams), touch shared state only through thread-safe
// read-mostly structures (the sharded distance oracle, the hierarchy's
// cluster cache), and write only to its own result slot. Under that
// contract, results are bit-identical for any worker count, including 1.
//
// Nesting rule: for_each called from inside a pool task runs inline
// serially on the calling worker (no deadlock, no oversubscription).
// exact_diameter() and friends are therefore safe to call from a cell.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mot::par {

class ThreadPool {
 public:
  // Spawns `workers` threads (clamped to >= 1). workers == 1 still spawns
  // a single worker thread; for_each with one worker or one task runs
  // inline on the caller instead.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // Runs fn(i) for every i in [0, count). Blocks until all tasks have
  // completed. The first exception thrown by a task is rethrown here
  // (remaining tasks still run). Reentrant calls execute inline.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& fn);

  // Ordered parallel map: returns {fn(0), fn(1), ..., fn(count-1)}.
  // The reduction order is the index order regardless of schedule.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> results(count);
    for_each(count,
             [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  // Index of the pool worker executing the current thread, or -1 when
  // called from a thread no pool owns (e.g. main). Used by the phase
  // timers to split wall-clock per worker.
  static int current_worker();

 private:
  struct Job;

  void worker_loop(std::size_t index);
  // Pops one task index for worker `self`, stealing if its own deque is
  // empty. Returns false when the job has no tasks left to hand out.
  bool next_task(Job& job, std::size_t self, std::size_t& task);

  std::vector<std::thread> workers_;

  std::mutex mutex_;                  // guards job_ handoff + shutdown
  std::condition_variable wake_;      // workers wait here for a job
  std::shared_ptr<Job> job_;          // currently running job (or null)
  std::uint64_t job_generation_ = 0;  // bumped per submitted job
  bool shutdown_ = false;
};

// --- process-wide default pool -------------------------------------------
//
// Benches configure it once from --threads; everything else calls
// parallel_for_each / parallel_map and inherits the setting. With 0 or 1
// workers (or before any configuration on a 1-core host) the helpers run
// serially inline, so library code can call them unconditionally.

// Sets the default pool size. 0 = hardware_concurrency. Rebuilds the pool
// if the size changed; not safe to call while parallel work is running.
void set_default_workers(std::size_t workers);

// The resolved default worker count (>= 1).
std::size_t default_workers();

// Lazily constructed pool of default_workers() workers.
ThreadPool& default_pool();

// for_each over the default pool. Runs inline serially when the pool has
// one worker, when count <= 1, or when already inside a pool task.
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& fn);

template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  parallel_for_each(count,
                    [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace mot::par
