// Graphviz (DOT) exporters for the structures this library builds. They
// exist for documentation and debugging: render with
//   dot -Tsvg hierarchy.dot -o hierarchy.svg
//
// Exporters write plain DOT text; they never read files and have no
// Graphviz dependency.
#pragma once

#include <string>

#include "baselines/spanning_tree.hpp"
#include "graph/graph.hpp"
#include "hier/hierarchy.hpp"

namespace mot::viz {

// The sensor graph: nodes placed at their positions when embedded.
std::string graph_to_dot(const Graph& graph);

// The overlay hierarchy as a layered DAG: one record per (level, member),
// edges from each member to its primary parent at the next level.
std::string hierarchy_to_dot(const Hierarchy& hierarchy);

// A spanning tree (DAT / Z-DAT) over the sensors, rooted at the sink.
std::string spanning_tree_to_dot(const SpanningTree& tree,
                                 const Graph& graph);

// A STUN dendrogram: sensor leaves at the bottom, logical merge nodes
// above, each labeled with its host sensor.
std::string dendrogram_to_dot(const Dendrogram& dendrogram);

}  // namespace mot::viz
