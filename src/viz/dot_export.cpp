#include "viz/dot_export.hpp"

#include <sstream>

#include "util/check.hpp"

namespace mot::viz {

namespace {

void write_position(std::ostream& out, const Graph& graph, NodeId node) {
  if (!graph.has_positions()) return;
  const Position& p = graph.position(node);
  out << ", pos=\"" << p.x << "," << p.y << "!\"";
}

}  // namespace

std::string graph_to_dot(const Graph& graph) {
  std::ostringstream out;
  out << "graph sensors {\n  node [shape=circle, fontsize=9];\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\"";
    write_position(out, graph, v);
    out << "];\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Edge& e : graph.neighbors(v)) {
      if (e.to > v) {
        out << "  n" << v << " -- n" << e.to;
        if (e.weight != 1.0) out << " [label=\"" << e.weight << "\"]";
        out << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string hierarchy_to_dot(const Hierarchy& hierarchy) {
  std::ostringstream out;
  out << "digraph overlay {\n  rankdir=BT;\n  node [shape=box, "
         "fontsize=9];\n";
  for (int level = 0; level <= hierarchy.height(); ++level) {
    out << "  { rank=same;";
    for (const NodeId member : hierarchy.members(level)) {
      out << " l" << level << "_" << member << ";";
    }
    out << " }\n";
    for (const NodeId member : hierarchy.members(level)) {
      out << "  l" << level << "_" << member << " [label=\"L" << level
          << ":" << member << "\"];\n";
    }
  }
  // Primary-parent edges: each level-l member to its level-(l+1) parent.
  for (int level = 0; level < hierarchy.height(); ++level) {
    for (const NodeId member : hierarchy.members(level)) {
      const NodeId parent = hierarchy.primary(member, level + 1);
      out << "  l" << level << "_" << member << " -> l" << (level + 1)
          << "_" << parent << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string spanning_tree_to_dot(const SpanningTree& tree,
                                 const Graph& graph) {
  MOT_EXPECTS(tree.is_valid());
  std::ostringstream out;
  out << "digraph tree {\n  rankdir=BT;\n  node [shape=circle, "
         "fontsize=9];\n";
  out << "  n" << tree.root << " [shape=doublecircle];\n";
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\"";
    write_position(out, graph, v);
    out << "];\n";
    if (v != tree.root) {
      out << "  n" << v << " -> n" << tree.parent[v] << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string dendrogram_to_dot(const Dendrogram& dendrogram) {
  MOT_EXPECTS(dendrogram.is_valid());
  std::ostringstream out;
  out << "digraph dendrogram {\n  rankdir=BT;\n  node [fontsize=9];\n";
  for (std::size_t i = 0; i < dendrogram.nodes.size(); ++i) {
    const bool leaf = i < dendrogram.num_sensors;
    out << "  d" << i << " [shape=" << (leaf ? "circle" : "box")
        << ", label=\"";
    if (leaf) {
      out << i;
    } else {
      out << "host " << dendrogram.nodes[i].host;
    }
    out << "\"];\n";
    if (static_cast<std::int32_t>(i) != dendrogram.root) {
      out << "  d" << i << " -> d" << dendrogram.nodes[i].parent << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace mot::viz
