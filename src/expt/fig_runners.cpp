#include "expt/fig_runners.hpp"

#include <string>

#include "par/thread_pool.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace mot {

namespace {

std::vector<std::size_t> sizes_for(const SweepParams& params) {
  return params.sizes.empty() ? paper_grid_sizes(params.full)
                              : params.sizes;
}

MovementTrace make_trace(const Network& network, const SweepParams& params,
                         std::uint64_t seed) {
  TraceParams trace_params;
  trace_params.num_objects = params.num_objects;
  trace_params.moves_per_object = params.moves_per_object;
  trace_params.model = params.model;
  Rng rng(SeedTree(seed).seed_for("trace"));
  return generate_trace(network.graph(), trace_params, rng);
}

enum class SweepKind { kMaintenance, kQuery };

// One (grid size, trial seed) context of the sweep: the network and the
// movement trace every algorithm cell of that context replays. Built once
// in a parallel stage, then shared read-only by the algorithm cells (the
// oracle and the hierarchy's cluster cache are internally synchronized;
// everything else is immutable after construction).
struct SweepContext {
  std::size_t size = 0;
  std::uint64_t seed = 0;
  Network network;
  MovementTrace trace;
  EdgeRates rates;
};

// One independent experiment cell: replay the context's trace through one
// algorithm. All randomness is derived from the context seed, each cell
// builds its own tracker and meters, and the return value depends only on
// (context, algo) — the determinism contract of the parallel engine.
double run_cell(const SweepContext& ctx, Algo algo,
                const SweepParams& params, SweepKind kind) {
  AlgoInstance instance = make_algo(algo, ctx.network, ctx.rates, ctx.seed);
  if (params.concurrent) {
    ConcurrentRunParams run;
    run.batch_size = params.batch_size;
    run.interleave_queries = kind == SweepKind::kQuery;
    run.seed = SeedTree(ctx.seed).seed_for("conc-driver");
    const ConcurrentRunResult result =
        run_concurrent(*instance.provider, instance.chain_options,
                       *ctx.network.oracle, ctx.trace, run);
    return kind == SweepKind::kMaintenance
               ? result.maintenance.aggregate_ratio()
               : result.queries.aggregate_ratio();
  }
  publish_all(*instance.tracker, ctx.trace);
  const CostRatioAccumulator moves =
      run_moves(*instance.tracker, *ctx.network.oracle, ctx.trace.moves);
  if (kind == SweepKind::kMaintenance) return moves.aggregate_ratio();
  Rng qrng(SeedTree(ctx.seed).seed_for("queries"));
  const std::vector<QueryOp> queries =
      generate_queries(ctx.network.num_nodes(), params.num_objects,
                       params.num_objects, qrng);
  const CostRatioAccumulator result =
      run_queries(*instance.tracker, *ctx.network.oracle, queries);
  return result.aggregate_ratio();
}

// The sweep engine: every (size x trial) context is built in parallel,
// then every (context x algorithm) cell runs in parallel, and the ratios
// are reduced into the result table strictly in cell-index order — the
// same order the serial loops used. Tables are therefore bit-identical
// for any worker count (guarded by the parity tests in test_par.cpp).
Table run_sweep(const SweepParams& params, SweepKind kind) {
  std::vector<std::string> columns{"nodes"};
  for (const Algo algo : params.algos) {
    columns.push_back(algo_name(algo));
  }
  Table table(std::move(columns));

  const std::vector<std::size_t> sizes = sizes_for(params);
  const std::size_t num_algos = params.algos.size();

  std::vector<SweepContext> contexts(sizes.size() * params.num_seeds);
  par::parallel_for_each(contexts.size(), [&](std::size_t i) {
    SweepContext& ctx = contexts[i];
    ctx.size = sizes[i / params.num_seeds];
    ctx.seed = params.base_seed + i % params.num_seeds;
    ctx.network = build_grid_network(ctx.size, ctx.seed);
    ctx.trace = make_trace(ctx.network, params, ctx.seed);
    // The traffic-conscious baselines receive the real detection rates
    // of the measured trace — the most favorable training possible.
    ctx.rates = ctx.trace.estimate_rates();
  });

  std::vector<double> ratios(contexts.size() * num_algos, 0.0);
  par::parallel_for_each(ratios.size(), [&](std::size_t cell) {
    const SweepContext& ctx = contexts[cell / num_algos];
    const Algo algo = params.algos[cell % num_algos];
    ratios[cell] = run_cell(ctx, algo, params, kind);
    MOT_LOG_DEBUG("sweep: size=%zu seed=%llu algo=%s done", ctx.size,
                  static_cast<unsigned long long>(ctx.seed),
                  algo_name(algo));
  });

  // Ordered reduction, mirroring the serial engine's loop nesting
  // (size, then seed, then algorithm).
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<OnlineStats> per_algo(num_algos);
    for (std::size_t s = 0; s < params.num_seeds; ++s) {
      const std::size_t ctx_index = si * params.num_seeds + s;
      for (std::size_t a = 0; a < num_algos; ++a) {
        per_algo[a].add(ratios[ctx_index * num_algos + a]);
      }
    }
    table.begin_row().cell(static_cast<std::uint64_t>(sizes[si]));
    for (const auto& stats : per_algo) table.cell(stats.mean(), 3);
  }
  return table;
}

}  // namespace

Table run_maintenance_sweep(const SweepParams& params) {
  return run_sweep(params, SweepKind::kMaintenance);
}

Table run_query_sweep(const SweepParams& params) {
  return run_sweep(params, SweepKind::kQuery);
}

Table run_load_figure(const LoadFigureParams& params) {
  Table table({"algo", "mean_load", "max_load", "p99", "nodes_gt_thresh",
               "imbalance"});

  // MOT (load-balanced), plain MOT for reference, and the baseline.
  const std::vector<Algo> algos = {Algo::kMotLoadBalanced, Algo::kMot,
                                   params.baseline};

  // Stage 1: one context per trial seed, built in parallel.
  struct LoadContext {
    std::uint64_t seed = 0;
    Network network;
    MovementTrace trace;
    EdgeRates rates;
  };
  std::vector<LoadContext> contexts(params.num_seeds);
  par::parallel_for_each(contexts.size(), [&](std::size_t s) {
    LoadContext& ctx = contexts[s];
    ctx.seed = params.base_seed + s;
    ctx.network = build_grid_network(params.num_nodes, ctx.seed);
    TraceParams trace_params;
    trace_params.num_objects = params.num_objects;
    trace_params.moves_per_object = params.moves_per_object;
    Rng rng(SeedTree(ctx.seed).seed_for("trace"));
    ctx.trace = generate_trace(ctx.network.graph(), trace_params, rng);
    ctx.rates = ctx.trace.estimate_rates();
  });

  // Stage 2: every (seed x algorithm) cell in parallel.
  std::vector<LoadSummary> loads(contexts.size() * algos.size());
  par::parallel_for_each(loads.size(), [&](std::size_t cell) {
    const LoadContext& ctx = contexts[cell / algos.size()];
    const Algo algo = algos[cell % algos.size()];
    AlgoInstance instance =
        make_algo(algo, ctx.network, ctx.rates, ctx.seed);
    publish_all(*instance.tracker, ctx.trace);
    if (!ctx.trace.moves.empty()) {
      run_moves(*instance.tracker, *ctx.network.oracle, ctx.trace.moves);
    }
    loads[cell] = summarize_load(instance.tracker->load_per_node(),
                                 params.load_threshold);
  });

  // Ordered reduction in (seed, algo) order, as the serial loops ran.
  struct Row {
    OnlineStats mean, max, p99, above, imbalance;
  };
  std::vector<Row> rows(algos.size());
  for (std::size_t s = 0; s < contexts.size(); ++s) {
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const LoadSummary& load = loads[s * algos.size() + a];
      rows[a].mean.add(load.mean);
      rows[a].max.add(static_cast<double>(load.max));
      rows[a].p99.add(load.p99);
      rows[a].above.add(static_cast<double>(load.nodes_above_threshold));
      rows[a].imbalance.add(load.imbalance);
    }
  }

  for (std::size_t a = 0; a < algos.size(); ++a) {
    table.begin_row()
        .cell(std::string(algo_name(algos[a])))
        .cell(rows[a].mean.mean(), 2)
        .cell(rows[a].max.mean(), 1)
        .cell(rows[a].p99.mean(), 1)
        .cell(rows[a].above.mean(), 1)
        .cell(rows[a].imbalance.mean(), 2);
  }
  return table;
}

}  // namespace mot
