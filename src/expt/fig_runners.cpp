#include "expt/fig_runners.hpp"

#include <string>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace mot {

namespace {

std::vector<std::size_t> sizes_for(const SweepParams& params) {
  return params.sizes.empty() ? paper_grid_sizes(params.full)
                              : params.sizes;
}

MovementTrace make_trace(const Network& network, const SweepParams& params,
                         std::uint64_t seed) {
  TraceParams trace_params;
  trace_params.num_objects = params.num_objects;
  trace_params.moves_per_object = params.moves_per_object;
  trace_params.model = params.model;
  Rng rng(SeedTree(seed).seed_for("trace"));
  return generate_trace(network.graph(), trace_params, rng);
}

enum class SweepKind { kMaintenance, kQuery };

Table run_sweep(const SweepParams& params, SweepKind kind) {
  std::vector<std::string> columns{"nodes"};
  for (const Algo algo : params.algos) {
    columns.push_back(algo_name(algo));
  }
  Table table(std::move(columns));

  for (const std::size_t size : sizes_for(params)) {
    std::vector<OnlineStats> per_algo(params.algos.size());
    for (std::size_t s = 0; s < params.num_seeds; ++s) {
      const std::uint64_t seed = params.base_seed + s;
      const Network network = build_grid_network(size, seed);
      const MovementTrace trace = make_trace(network, params, seed);
      // The traffic-conscious baselines receive the real detection rates
      // of the measured trace — the most favorable training possible.
      const EdgeRates rates = trace.estimate_rates();

      for (std::size_t a = 0; a < params.algos.size(); ++a) {
        AlgoInstance algo =
            make_algo(params.algos[a], network, rates, seed);
        double ratio = 0.0;
        if (params.concurrent) {
          ConcurrentRunParams run;
          run.batch_size = params.batch_size;
          run.interleave_queries = kind == SweepKind::kQuery;
          run.seed = SeedTree(seed).seed_for("conc-driver");
          const ConcurrentRunResult result =
              run_concurrent(*algo.provider, algo.chain_options,
                             *network.oracle, trace, run);
          ratio = kind == SweepKind::kMaintenance
                      ? result.maintenance.aggregate_ratio()
                      : result.queries.aggregate_ratio();
        } else {
          publish_all(*algo.tracker, trace);
          const CostRatioAccumulator moves =
              run_moves(*algo.tracker, *network.oracle, trace.moves);
          if (kind == SweepKind::kMaintenance) {
            ratio = moves.aggregate_ratio();
          } else {
            Rng qrng(SeedTree(seed).seed_for("queries"));
            const std::vector<QueryOp> queries = generate_queries(
                network.num_nodes(), params.num_objects,
                params.num_objects, qrng);
            const CostRatioAccumulator result =
                run_queries(*algo.tracker, *network.oracle, queries);
            ratio = result.aggregate_ratio();
          }
        }
        per_algo[a].add(ratio);
      }
      MOT_LOG_INFO("sweep: size=%zu seed=%zu done", size, s);
    }
    table.begin_row().cell(static_cast<std::uint64_t>(size));
    for (const auto& stats : per_algo) table.cell(stats.mean(), 3);
  }
  return table;
}

}  // namespace

Table run_maintenance_sweep(const SweepParams& params) {
  return run_sweep(params, SweepKind::kMaintenance);
}

Table run_query_sweep(const SweepParams& params) {
  return run_sweep(params, SweepKind::kQuery);
}

Table run_load_figure(const LoadFigureParams& params) {
  Table table({"algo", "mean_load", "max_load", "p99", "nodes_gt_thresh",
               "imbalance"});

  struct Row {
    OnlineStats mean, max, p99, above, imbalance;
  };
  // MOT (load-balanced), plain MOT for reference, and the baseline.
  const std::vector<Algo> algos = {Algo::kMotLoadBalanced, Algo::kMot,
                                   params.baseline};
  std::vector<Row> rows(algos.size());

  for (std::size_t s = 0; s < params.num_seeds; ++s) {
    const std::uint64_t seed = params.base_seed + s;
    const Network network = build_grid_network(params.num_nodes, seed);
    TraceParams trace_params;
    trace_params.num_objects = params.num_objects;
    trace_params.moves_per_object = params.moves_per_object;
    Rng rng(SeedTree(seed).seed_for("trace"));
    const MovementTrace trace =
        generate_trace(network.graph(), trace_params, rng);
    const EdgeRates rates = trace.estimate_rates();

    for (std::size_t a = 0; a < algos.size(); ++a) {
      AlgoInstance algo = make_algo(algos[a], network, rates, seed);
      publish_all(*algo.tracker, trace);
      if (!trace.moves.empty()) {
        run_moves(*algo.tracker, *network.oracle, trace.moves);
      }
      const LoadSummary load = summarize_load(
          algo.tracker->load_per_node(), params.load_threshold);
      rows[a].mean.add(load.mean);
      rows[a].max.add(static_cast<double>(load.max));
      rows[a].p99.add(load.p99);
      rows[a].above.add(static_cast<double>(load.nodes_above_threshold));
      rows[a].imbalance.add(load.imbalance);
    }
  }

  for (std::size_t a = 0; a < algos.size(); ++a) {
    table.begin_row()
        .cell(std::string(algo_name(algos[a])))
        .cell(rows[a].mean.mean(), 2)
        .cell(rows[a].max.mean(), 1)
        .cell(rows[a].p99.mean(), 1)
        .cell(rows[a].above.mean(), 1)
        .cell(rows[a].imbalance.mean(), 2);
  }
  return table;
}

}  // namespace mot
