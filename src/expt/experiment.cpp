#include "expt/experiment.hpp"

#include <cmath>
#include <functional>

#include "baselines/tree_tracker.hpp"
#include "obs/phase_timer.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

Network build_network(Graph graph, std::uint64_t seed) {
  MOT_PHASE("hierarchy_build");
  Network network;
  network.graph_storage = std::make_unique<Graph>(std::move(graph));
  network.oracle = make_distance_oracle(network.graph());
  DoublingHierarchy::Params params;
  params.seed = seed;
  network.hierarchy =
      DoublingHierarchy::build(network.graph(), *network.oracle, params);
  network.sink = choose_sink(network.graph());
  return network;
}

Network build_grid_network(std::size_t target_nodes, std::uint64_t seed) {
  MOT_EXPECTS(target_nodes >= 4);
  const auto side = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(target_nodes))));
  return build_network(make_grid(side, side), seed);
}

const char* algo_name(Algo algo) {
  switch (algo) {
    case Algo::kMot:
      return "MOT";
    case Algo::kMotLoadBalanced:
      return "MOT-LB";
    case Algo::kStun:
      return "STUN";
    case Algo::kDat:
      return "DAT";
    case Algo::kZdat:
      return "Z-DAT";
    case Algo::kZdatShortcuts:
      return "Z-DAT+SC";
  }
  return "?";
}

AlgoInstance make_algo(Algo algo, const Network& network,
                       const EdgeRates& training_rates, std::uint64_t seed,
                       const MotOptions* mot_options) {
  AlgoInstance instance;
  instance.name = algo_name(algo);

  switch (algo) {
    case Algo::kMot:
    case Algo::kMotLoadBalanced: {
      MotOptions options;
      if (mot_options != nullptr) {
        options = *mot_options;
      } else {
        // Experiment configuration: Algorithm 1 as the paper presents it
        // — one default parent per level ("for simplicity, assume there
        // is only one parent internal node p^l(x)") with special parents.
        // The full parent-set probing is exercised by the ablations.
        options.use_parent_sets = false;
        options.use_special_parents = true;
        options.special_parent_offset = 2;
      }
      options.seed = seed;
      if (algo == Algo::kMotLoadBalanced) options.load_balance = true;
      instance.provider =
          std::make_unique<MotPathProvider>(*network.hierarchy, options);
      instance.chain_options = make_mot_chain_options(options);
      instance.name = make_mot_name(options);
      break;
    }
    case Algo::kStun: {
      Dendrogram dendrogram = build_stun_dendrogram(
          network.graph(), training_rates, network.sink);
      instance.provider = std::make_unique<DendrogramProvider>(
          *network.oracle, std::move(dendrogram));
      instance.chain_options.shortcut_descent = false;
      break;
    }
    case Algo::kDat: {
      SpanningTree tree =
          build_dat(network.graph(), training_rates, network.sink);
      instance.provider = std::make_unique<TreePathProvider>(
          *network.oracle, std::move(tree));
      instance.chain_options.shortcut_descent = false;
      break;
    }
    case Algo::kZdat:
    case Algo::kZdatShortcuts: {
      SpanningTree tree =
          build_zdat(network.graph(), *network.oracle, network.sink);
      instance.provider = std::make_unique<TreePathProvider>(
          *network.oracle, std::move(tree));
      instance.chain_options.shortcut_descent =
          algo == Algo::kZdatShortcuts;
      break;
    }
  }

  instance.tracker = std::make_unique<ChainTracker>(
      instance.name, *instance.provider, instance.chain_options);
  return instance;
}

void publish_all(Tracker& tracker, const MovementTrace& trace) {
  MOT_PHASE("publish");
  for (ObjectId o = 0; o < trace.num_objects(); ++o) {
    tracker.publish(o, trace.initial_proxy[o]);
  }
}

CostRatioAccumulator run_moves(Tracker& tracker, const DistanceOracle& oracle,
                               std::span<const MoveOp> moves) {
  MOT_PHASE("op_loop");
  CostRatioAccumulator accumulator;
  for (const MoveOp& op : moves) {
    MOT_CHECK(tracker.proxy_of(op.object) == op.from);
    const MoveResult result = tracker.move(op.object, op.to);
    accumulator.add(result.cost, oracle.distance(op.from, op.to));
  }
  return accumulator;
}

CostRatioAccumulator run_queries(Tracker& tracker,
                                 const DistanceOracle& oracle,
                                 std::span<const QueryOp> queries) {
  MOT_PHASE("op_loop");
  CostRatioAccumulator accumulator;
  for (const QueryOp& op : queries) {
    const NodeId proxy = tracker.proxy_of(op.object);
    const QueryResult result = tracker.query(op.from, op.object);
    MOT_CHECK(result.found && result.proxy == proxy);
    accumulator.add(result.cost, oracle.distance(op.from, proxy));
  }
  return accumulator;
}

namespace {

// Drives the concurrent engine: per object, batches of overlapping moves;
// the next batch starts when the previous one fully completes.
struct ConcurrentDriver : std::enable_shared_from_this<ConcurrentDriver> {
  ConcurrentEngine* engine = nullptr;
  Simulator* sim = nullptr;
  const DistanceOracle* oracle = nullptr;
  ConcurrentRunParams params;
  Rng rng{1};

  std::vector<ObjectId> object_order;
  std::vector<std::vector<MoveOp>> moves_of;  // indexed by ObjectId
  std::size_t object_index = 0;
  std::size_t move_index = 0;
  std::size_t batch_counter = 0;    // batches issued for current object
  std::size_t query_at_batch = 0;   // batch at which this object's query fires
  bool query_issued = false;
  std::size_t pending = 0;

  ConcurrentRunResult result;

  void start_object() {
    batch_counter = 0;
    move_index = 0;
    query_issued = !params.interleave_queries;
    const ObjectId object = object_order[object_index];
    const std::size_t batches =
        (moves_of[object].size() + params.batch_size - 1) /
        std::max<std::size_t>(params.batch_size, 1);
    query_at_batch = batches == 0 ? 0 : rng.below(batches);
    next_batch();
  }

  void next_batch() {
    if (object_index >= object_order.size()) return;  // all done
    if (move_index >= moves_of[object_order[object_index]].size() &&
        query_issued) {
      // Current object exhausted: move on to the next one.
      ++object_index;
      if (object_index >= object_order.size()) return;
      start_object();
      return;
    }

    const ObjectId object = object_order[object_index];
    const auto& moves = moves_of[object];
    const std::size_t batch =
        std::min(params.batch_size, moves.size() - move_index);
    MOT_CHECK(pending == 0);

    auto self = shared_from_this();
    // Optionally interleave this object's query with this batch.
    if (!query_issued && batch_counter == query_at_batch) {
      query_issued = true;
      ++pending;
      const auto from = static_cast<NodeId>(
          rng.below(oracle->num_nodes()));
      const Weight optimal =
          oracle->distance(from, engine->physical_position(object));
      engine->start_query(from, object, [self, optimal](
                                            const QueryResult& r) {
        self->result.queries.add(r.cost, optimal);
        self->complete_one();
      });
    }
    for (std::size_t k = 0; k < batch; ++k) {
      const MoveOp& op = moves[move_index++];
      ++pending;
      const Weight optimal = oracle->distance(op.from, op.to);
      engine->start_move(op.object, op.to,
                         [self, optimal](const MoveResult& r) {
                           self->result.maintenance.add(r.cost, optimal);
                           self->complete_one();
                         });
    }
    ++batch_counter;
    // A batch can be empty when only the query remained.
    if (pending == 0) next_batch();
  }

  void complete_one() {
    MOT_CHECK(pending > 0);
    if (--pending == 0) {
      auto self = shared_from_this();
      sim->schedule(0.0, [self] { self->next_batch(); });
    }
  }
};

}  // namespace

ConcurrentRunResult run_concurrent(const PathProvider& provider,
                                   const ChainOptions& chain_options,
                                   const DistanceOracle& oracle,
                                   const MovementTrace& trace,
                                   const ConcurrentRunParams& params) {
  MOT_PHASE("op_loop");
  Simulator sim;
  ConcurrentEngine engine(provider, sim, chain_options);
  for (ObjectId o = 0; o < trace.num_objects(); ++o) {
    engine.publish(o, trace.initial_proxy[o]);
  }

  auto driver = std::make_shared<ConcurrentDriver>();
  driver->engine = &engine;
  driver->sim = &sim;
  driver->oracle = &oracle;
  driver->params = params;
  driver->rng.reseed(params.seed);
  driver->moves_of.resize(trace.num_objects());
  for (const MoveOp& op : trace.moves) {
    if (driver->moves_of[op.object].empty()) {
      driver->object_order.push_back(op.object);
    }
    driver->moves_of[op.object].push_back(op);
  }
  // Objects that never move still get their query.
  if (params.interleave_queries) {
    for (ObjectId o = 0; o < trace.num_objects(); ++o) {
      if (driver->moves_of[o].empty()) driver->object_order.push_back(o);
    }
  }

  if (!driver->object_order.empty()) driver->start_object();
  sim.run();
  if (engine.inflight_operations() != 0) {
    MOT_LOG_ERROR("concurrent run left stuck operations:\n%s",
                  engine.debug_stuck_report().c_str());
  }
  MOT_CHECK(engine.inflight_operations() == 0);
  engine.validate_quiescent();

  ConcurrentRunResult result = std::move(driver->result);
  result.engine_stats = engine.stats();
  return result;
}

std::vector<std::size_t> paper_grid_sizes(bool full) {
  // The paper sweeps grids of 10 to 1024 nodes; these square grids span
  // that range. The quick scale trims only the smallest sizes, which are
  // noisy at reduced move counts.
  if (full) return {9, 36, 100, 256, 529, 1024};
  return {16, 64, 144, 256, 529, 1024};
}

}  // namespace mot
