// Figure runners: one function per family of paper figures, each
// producing a printable Table with the same rows/series the paper plots.
// Bench binaries are thin mains over these.
#pragma once

#include <vector>

#include "expt/experiment.hpp"
#include "util/table.hpp"

namespace mot {

struct SweepParams {
  std::size_t num_objects = 100;
  std::size_t moves_per_object = 100;  // paper: 1000 (use --full)
  std::size_t num_seeds = 5;           // paper: average of 5 runs
  bool full = false;                   // paper-scale sizes and moves
  bool concurrent = false;             // Figs. 12-15 execution mode
  std::size_t batch_size = 10;         // max in-flight ops per object
  std::vector<Algo> algos = {Algo::kMot, Algo::kStun, Algo::kZdat,
                             Algo::kZdatShortcuts};
  std::uint64_t base_seed = 42;
  MobilityModel model = MobilityModel::kRandomWalk;
  std::vector<std::size_t> sizes;      // empty = paper_grid_sizes(full)
};

// Figs. 4/5 (one-by-one) and 12/13 (concurrent): maintenance cost ratio
// vs network size, one column per algorithm.
Table run_maintenance_sweep(const SweepParams& params);

// Figs. 6/7 (one-by-one) and 14/15 (concurrent): query cost ratio vs
// network size. One-by-one issues one query per object after the full
// maintenance workload; concurrent interleaves each object's query with
// its maintenance batches.
Table run_query_sweep(const SweepParams& params);

struct LoadFigureParams {
  std::size_t num_nodes = 1024;
  std::size_t num_objects = 100;
  std::size_t moves_per_object = 0;  // Figs. 8/10: 0 (init); 9/11: 10
  std::size_t num_seeds = 5;
  Algo baseline = Algo::kStun;       // Figs. 8/9: STUN; 10/11: Z-DAT
  std::uint64_t base_seed = 42;
  std::size_t load_threshold = 10;   // "nodes with load > 10"
};

// Figs. 8-11: per-node load of MOT (load-balanced) vs a baseline.
// Reports mean / max / p99 / nodes-above-threshold per algorithm.
Table run_load_figure(const LoadFigureParams& params);

}  // namespace mot
