// Shared experiment harness: network construction, algorithm factory and
// the sequential / concurrent drivers that every figure bench reuses.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/concurrent.hpp"
#include "core/mot.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "metrics/metrics.hpp"
#include "tracking/chain_tracker.hpp"
#include "workload/mobility.hpp"

namespace mot {

// One built network instance: the graph, its exact distance oracle, the
// MOT overlay hierarchy and the baselines' sink. The graph lives behind a
// unique_ptr so the oracle's and hierarchy's internal pointers survive
// moves of the Network itself.
struct Network {
  std::unique_ptr<Graph> graph_storage;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  NodeId sink = kInvalidNode;

  const Graph& graph() const { return *graph_storage; }
  std::size_t num_nodes() const { return graph_storage->num_nodes(); }
};

// Square-ish grid with approximately `target_nodes` sensors (the paper's
// evaluation topology), with hierarchy seeded from `seed`.
Network build_grid_network(std::size_t target_nodes, std::uint64_t seed);

// Same wrapper for an arbitrary prebuilt graph.
Network build_network(Graph graph, std::uint64_t seed);

// The tracking algorithms of the Section 8 comparison.
enum class Algo {
  kMot,
  kMotLoadBalanced,
  kStun,
  kDat,
  kZdat,
  kZdatShortcuts,
};

const char* algo_name(Algo algo);

// A tracker instance whose provider is exposed so the same configuration
// can also be driven by the concurrent engine.
struct AlgoInstance {
  std::string name;
  std::unique_ptr<PathProvider> provider;
  ChainOptions chain_options;
  std::unique_ptr<ChainTracker> tracker;
};

// Builds an algorithm over `network`. Traffic-conscious baselines consume
// `training_rates` (detection rates estimated from a training trace).
// `mot_options` overrides the MOT configuration (nullptr = defaults).
AlgoInstance make_algo(Algo algo, const Network& network,
                       const EdgeRates& training_rates, std::uint64_t seed,
                       const MotOptions* mot_options = nullptr);

// --- sequential (one-by-one) drivers ---

void publish_all(Tracker& tracker, const MovementTrace& trace);

CostRatioAccumulator run_moves(Tracker& tracker, const DistanceOracle& oracle,
                               std::span<const MoveOp> moves);

CostRatioAccumulator run_queries(Tracker& tracker,
                                 const DistanceOracle& oracle,
                                 std::span<const QueryOp> queries);

// --- concurrent driver (Figs. 12-15) ---

struct ConcurrentRunResult {
  CostRatioAccumulator maintenance;
  CostRatioAccumulator queries;
  ConcurrentStats engine_stats;
};

struct ConcurrentRunParams {
  // Paper setting: at most this many in-flight operations per object.
  std::size_t batch_size = 10;
  // Issue one query per object at a random point of its stream.
  bool interleave_queries = false;
  std::uint64_t seed = 1;
};

// Replays `trace` through the concurrent engine: per object, its moves
// are issued in overlapping batches of `batch_size`; the next batch (and
// then the next object) starts when the previous completes.
ConcurrentRunResult run_concurrent(const PathProvider& provider,
                                   const ChainOptions& chain_options,
                                   const DistanceOracle& oracle,
                                   const MovementTrace& trace,
                                   const ConcurrentRunParams& params);

// Grid sizes of the paper's sweep (10 to 1024 nodes).
std::vector<std::size_t> paper_grid_sizes(bool full);

}  // namespace mot
