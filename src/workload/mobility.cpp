#include "workload/mobility.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"

namespace mot {

Weight MovementTrace::optimal_cost(const DistanceOracle& oracle) const {
  Weight total = 0.0;
  for (const MoveOp& op : moves) {
    total += oracle.distance(op.from, op.to);
  }
  return total;
}

EdgeRates MovementTrace::estimate_rates() const {
  EdgeRates rates;
  for (const MoveOp& op : moves) {
    if (op.from != op.to) rates.record(op.from, op.to);
  }
  return rates;
}

namespace {

// One mobility step: returns the next proxy for an object at `at`.
// Waypoint-style models walk precomputed shortest paths; `pending` holds
// the remaining nodes of the current segment (per object).
class Stepper {
 public:
  Stepper(const Graph& graph, const TraceParams& params, Rng& rng)
      : graph_(&graph), params_(params), rng_(&rng) {}

  NodeId next(ObjectId object, NodeId at) {
    switch (params_.model) {
      case MobilityModel::kRandomWalk:
        return random_neighbor(at);
      case MobilityModel::kRandomWaypoint:
        return waypoint_step(object, at, /*levy=*/false);
      case MobilityModel::kLevyWalk:
        return waypoint_step(object, at, /*levy=*/true);
    }
    return at;
  }

 private:
  NodeId random_neighbor(NodeId at) {
    const auto neighbors = graph_->neighbors(at);
    MOT_CHECK(!neighbors.empty());  // connected graph with n >= 2
    return neighbors[rng_->below(neighbors.size())].to;
  }

  NodeId waypoint_step(ObjectId object, NodeId at, bool levy) {
    auto& segment = pending_[object];
    if (segment.empty()) {
      // Pick a new target. Levy walks bound the hop budget heavy-tailed;
      // plain waypoint accepts any target.
      NodeId target = at;
      while (target == at) {
        target = static_cast<NodeId>(rng_->below(graph_->num_nodes()));
      }
      const ShortestPathTree tree = dijkstra(*graph_, at);
      std::vector<NodeId> path = tree.path_to(target);
      MOT_CHECK(path.size() >= 2);
      if (levy) {
        const std::uint64_t budget =
            rng_->truncated_pareto(params_.levy_alpha, path.size() - 1);
        path.resize(budget + 1);
      }
      // Store the remaining hops in reverse so steps pop from the back.
      segment.assign(path.rbegin(), path.rend());
      segment.pop_back();  // drop the current node
    }
    const NodeId next = segment.back();
    segment.pop_back();
    return next;
  }

  const Graph* graph_;
  TraceParams params_;
  Rng* rng_;
  std::unordered_map<ObjectId, std::vector<NodeId>> pending_;
};

}  // namespace

MovementTrace generate_trace(const Graph& graph, const TraceParams& params,
                             Rng& rng) {
  MOT_EXPECTS(graph.num_nodes() >= 2);
  MOT_EXPECTS(params.num_objects >= 1);

  MovementTrace trace;
  trace.initial_proxy.resize(params.num_objects);
  std::vector<NodeId> position(params.num_objects);
  for (ObjectId o = 0; o < params.num_objects; ++o) {
    position[o] = static_cast<NodeId>(rng.below(graph.num_nodes()));
    trace.initial_proxy[o] = position[o];
  }

  Stepper stepper(graph, params, rng);
  const std::size_t total_moves =
      params.num_objects * params.moves_per_object;
  trace.moves.reserve(total_moves);
  std::vector<std::size_t> remaining(params.num_objects,
                                     params.moves_per_object);
  std::size_t objects_left = params.moves_per_object > 0
                                 ? params.num_objects
                                 : 0;
  while (objects_left > 0) {
    // "Random order": a uniformly random object (with moves left) steps.
    auto object = static_cast<ObjectId>(rng.below(params.num_objects));
    while (remaining[object] == 0) {
      object = static_cast<ObjectId>((object + 1) % params.num_objects);
    }
    const NodeId from = position[object];
    const NodeId to = stepper.next(object, from);
    trace.moves.push_back({object, from, to});
    position[object] = to;
    if (--remaining[object] == 0) --objects_left;
  }
  return trace;
}

std::vector<QueryOp> generate_queries(std::size_t num_nodes,
                                      std::size_t num_objects,
                                      std::size_t count, Rng& rng) {
  MOT_EXPECTS(num_nodes >= 1 && num_objects >= 1);
  std::vector<QueryOp> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back({static_cast<NodeId>(rng.below(num_nodes)),
                       static_cast<ObjectId>(rng.below(num_objects))});
  }
  return queries;
}

}  // namespace mot
