// Plain-text serialization of movement traces and query workloads, so an
// experiment input can be produced once, inspected, versioned and
// replayed bit-identically across machines and tracker implementations.
//
// Format (line-oriented, '#' comments allowed):
//   mot-trace v1
//   objects <m>
//   init <object> <proxy>          (one per object)
//   move <object> <from> <to>      (in issue order)
//
//   mot-queries v1
//   query <from> <object>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/mobility.hpp"

namespace mot {

void write_trace(std::ostream& out, const MovementTrace& trace);
std::string trace_to_string(const MovementTrace& trace);

// Returns nullopt on malformed input; the error string (if provided)
// explains the first problem found.
std::optional<MovementTrace> read_trace(std::istream& in,
                                        std::string* error = nullptr);
std::optional<MovementTrace> trace_from_string(const std::string& text,
                                               std::string* error = nullptr);

void write_queries(std::ostream& out, const std::vector<QueryOp>& queries);
std::optional<std::vector<QueryOp>> read_queries(
    std::istream& in, std::string* error = nullptr);

}  // namespace mot
