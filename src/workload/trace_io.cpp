#include "workload/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mot {

namespace {

void set_error(std::string* error, const std::string& message,
               std::size_t line) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
}

// Splits a line into whitespace-separated tokens; '#' starts a comment.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (!token.empty() && token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_u32(const std::string& text, std::uint32_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffULL) return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

void write_trace(std::ostream& out, const MovementTrace& trace) {
  out << "mot-trace v1\n";
  out << "objects " << trace.num_objects() << "\n";
  for (ObjectId o = 0; o < trace.num_objects(); ++o) {
    out << "init " << o << " " << trace.initial_proxy[o] << "\n";
  }
  for (const MoveOp& op : trace.moves) {
    out << "move " << op.object << " " << op.from << " " << op.to << "\n";
  }
}

std::string trace_to_string(const MovementTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

std::optional<MovementTrace> read_trace(std::istream& in,
                                        std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  // Header.
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2 || tokens[0] != "mot-trace" ||
        tokens[1] != "v1") {
      set_error(error, "expected header 'mot-trace v1'", line_number);
      return std::nullopt;
    }
    break;
  }

  MovementTrace trace;
  bool have_objects = false;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "objects") {
      std::uint32_t count = 0;
      if (tokens.size() != 2 || !parse_u32(tokens[1], &count)) {
        set_error(error, "malformed 'objects' line", line_number);
        return std::nullopt;
      }
      trace.initial_proxy.assign(count, kInvalidNode);
      have_objects = true;
    } else if (tokens[0] == "init") {
      std::uint32_t object = 0;
      std::uint32_t proxy = 0;
      if (!have_objects || tokens.size() != 3 ||
          !parse_u32(tokens[1], &object) || !parse_u32(tokens[2], &proxy) ||
          object >= trace.initial_proxy.size()) {
        set_error(error, "malformed 'init' line", line_number);
        return std::nullopt;
      }
      trace.initial_proxy[object] = proxy;
    } else if (tokens[0] == "move") {
      std::uint32_t object = 0;
      std::uint32_t from = 0;
      std::uint32_t to = 0;
      if (!have_objects || tokens.size() != 4 ||
          !parse_u32(tokens[1], &object) || !parse_u32(tokens[2], &from) ||
          !parse_u32(tokens[3], &to) ||
          object >= trace.initial_proxy.size()) {
        set_error(error, "malformed 'move' line", line_number);
        return std::nullopt;
      }
      trace.moves.push_back({object, from, to});
    } else {
      set_error(error, "unknown directive '" + tokens[0] + "'",
                line_number);
      return std::nullopt;
    }
  }
  if (!have_objects) {
    set_error(error, "missing 'objects' line", line_number);
    return std::nullopt;
  }
  for (ObjectId o = 0; o < trace.num_objects(); ++o) {
    if (trace.initial_proxy[o] == kInvalidNode) {
      set_error(error, "object " + std::to_string(o) + " has no init",
                line_number);
      return std::nullopt;
    }
  }
  return trace;
}

std::optional<MovementTrace> trace_from_string(const std::string& text,
                                               std::string* error) {
  std::istringstream in(text);
  return read_trace(in, error);
}

void write_queries(std::ostream& out,
                   const std::vector<QueryOp>& queries) {
  out << "mot-queries v1\n";
  for (const QueryOp& op : queries) {
    out << "query " << op.from << " " << op.object << "\n";
  }
}

std::optional<std::vector<QueryOp>> read_queries(std::istream& in,
                                                 std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2 || tokens[0] != "mot-queries" ||
        tokens[1] != "v1") {
      set_error(error, "expected header 'mot-queries v1'", line_number);
      return std::nullopt;
    }
    break;
  }
  std::vector<QueryOp> queries;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    std::uint32_t from = 0;
    std::uint32_t object = 0;
    if (tokens[0] != "query" || tokens.size() != 3 ||
        !parse_u32(tokens[1], &from) || !parse_u32(tokens[2], &object)) {
      set_error(error, "malformed 'query' line", line_number);
      return std::nullopt;
    }
    queries.push_back({from, object});
  }
  return queries;
}

}  // namespace mot
