// Mobility workloads (Section 8): object placements, movement traces and
// query workloads, plus the detection-rate estimation that feeds the
// traffic-conscious baselines.
//
// A MovementTrace is a fully materialized experiment input: initial proxy
// per object and a flat list of maintenance operations in the order they
// are issued ("1000 maintenance operations per object in random order").
// Traces are seeded and replayable, so every tracker in a comparison
// consumes the identical operation stream.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/spanning_tree.hpp"
#include "graph/graph.hpp"
#include "tracking/tracker.hpp"
#include "util/rng.hpp"

namespace mot {

struct MoveOp {
  ObjectId object = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

struct MovementTrace {
  std::vector<NodeId> initial_proxy;  // indexed by ObjectId
  std::vector<MoveOp> moves;

  std::size_t num_objects() const { return initial_proxy.size(); }

  // Sum over moves of dist_G(from, to): the optimal maintenance cost.
  Weight optimal_cost(const DistanceOracle& oracle) const;

  // Detection rates observed along the trace (object transitions between
  // adjacent sensors), as the traffic-conscious baselines consume.
  EdgeRates estimate_rates() const;
};

enum class MobilityModel {
  kRandomWalk,     // each move: uniformly random neighbor of the proxy
  kRandomWaypoint, // walk a shortest path to a random target, edge by edge
  kLevyWalk,       // heavy-tailed segment lengths along shortest paths
};

struct TraceParams {
  std::size_t num_objects = 100;
  std::size_t moves_per_object = 1000;
  MobilityModel model = MobilityModel::kRandomWalk;
  double levy_alpha = 1.5;  // tail exponent for kLevyWalk
};

// Generates a trace: initial proxies uniform over nodes; per-move, a
// uniformly random object takes its next mobility step ("random order").
MovementTrace generate_trace(const Graph& graph, const TraceParams& params,
                             Rng& rng);

struct QueryOp {
  NodeId from = kInvalidNode;
  ObjectId object = 0;
};

// `count` queries from uniform random nodes for uniform random objects.
std::vector<QueryOp> generate_queries(std::size_t num_nodes,
                                      std::size_t num_objects,
                                      std::size_t count, Rng& rng);

}  // namespace mot
