// Streaming statistics used throughout the experiment harness: Welford
// online moments, exact-percentile reservoirs for the modest sample counts
// we deal with, and integer histograms for per-node load plots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mot {

// Numerically stable online mean/variance (Welford), plus min/max.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps all samples (experiment scales are small enough) and answers exact
// quantiles. Quantile uses linear interpolation between closest ranks.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double quantile(double q) const;  // q in [0, 1]
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Fixed-bin integer histogram, e.g. "number of nodes with load k".
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins = 0) : bins_(num_bins, 0) {}

  void add(std::size_t bin, std::uint64_t weight = 1);
  std::uint64_t bin_count(std::size_t bin) const;
  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t total() const;

  // Count of entries whose bin index is strictly greater than `bin` —
  // the paper reports e.g. "nodes with load > 10".
  std::uint64_t count_above(std::size_t bin) const;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> bins_;
};

}  // namespace mot
