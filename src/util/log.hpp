// Minimal leveled logging to stderr. Bench binaries default to WARN so
// their stdout stays a clean table stream; tests raise the level when
// diagnosing failures.
//
// Thread-safe: the level is atomic and each message is formatted into a
// local buffer and emitted with a single stdio write, so concurrent
// messages never interleave mid-line.
#pragma once

#include <cstdarg>
#include <optional>
#include <string>

namespace mot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Parses "debug" / "info" / "warn" / "error" (case-sensitive, "warning"
// also accepted). Returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);

namespace detail {
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace mot

#define MOT_LOG_DEBUG(...) \
  ::mot::detail::log_message(::mot::LogLevel::kDebug, __VA_ARGS__)
#define MOT_LOG_INFO(...) \
  ::mot::detail::log_message(::mot::LogLevel::kInfo, __VA_ARGS__)
#define MOT_LOG_WARN(...) \
  ::mot::detail::log_message(::mot::LogLevel::kWarn, __VA_ARGS__)
#define MOT_LOG_ERROR(...) \
  ::mot::detail::log_message(::mot::LogLevel::kError, __VA_ARGS__)
