// Open-addressed flat hash map for the per-node detection lists.
//
// The chain/concurrent/distributed engines keep one dl map per overlay
// role, almost always holding a handful of entries that are probed on
// every climb hop. std::unordered_map pays a heap node plus a pointer
// chase per probe; this map keeps the entries in one dense
// std::vector<std::pair<Key, T>> (the iteration surface) and resolves
// keys through a power-of-two open-addressed slot table with linear
// probing and backward-shift deletion — one cache line for the common
// one-probe hit, in the spirit of the CSR parent-set refactor.
//
// Determinism contract: iteration order is the insertion order, except
// that erasing swaps the last entry into the vacated dense slot — a rule
// that depends only on the operation sequence, never on addresses or
// hashing salt, so replays and parallel sweeps observe identical orders.
//
// Surface: the subset of std::unordered_map the engines use — find /
// count / contains / at / operator[] / emplace / erase(key) /
// erase(iterator) / size / empty / clear / begin / end. Iterators are
// std::vector iterators over std::pair<Key, T>; like unordered_map,
// any insert may invalidate them (here: by reallocation), and erase
// invalidates iterators at or past the erased position.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mot {

template <class Key, class T>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
  }

  iterator find(const Key& key) {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? entries_.end()
                             : entries_.begin() + slots_[slot];
  }
  const_iterator find(const Key& key) const {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? entries_.end()
                             : entries_.begin() + slots_[slot];
  }

  std::size_t count(const Key& key) const {
    return find_slot(key) == kNotFound ? 0 : 1;
  }
  bool contains(const Key& key) const { return count(key) != 0; }

  T& at(const Key& key) {
    const std::size_t slot = find_slot(key);
    MOT_CHECK(slot != kNotFound);
    return entries_[slots_[slot]].second;
  }
  const T& at(const Key& key) const {
    const std::size_t slot = find_slot(key);
    MOT_CHECK(slot != kNotFound);
    return entries_[slots_[slot]].second;
  }

  T& operator[](const Key& key) {
    return emplace(key, T{}).first->second;
  }

  // Inserts {key, value} if the key is absent; returns the entry's
  // iterator and whether an insert happened (unordered_map::emplace for
  // the two-argument form the engines use).
  std::pair<iterator, bool> emplace(const Key& key, T value) {
    reserve_slot();
    std::size_t slot = probe_start(key);
    while (slots_[slot] != kEmpty) {
      if (entries_[slots_[slot]].first == key) {
        return {entries_.begin() + slots_[slot], false};
      }
      slot = (slot + 1) & mask();
    }
    slots_[slot] = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back(key, std::move(value));
    return {entries_.end() - 1, true};
  }

  std::size_t erase(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNotFound) return 0;
    erase_at(slot);
    return 1;
  }

  iterator erase(iterator pos) {
    const std::size_t dense = static_cast<std::size_t>(
        pos - entries_.begin());
    const std::size_t slot = find_slot(entries_[dense].first);
    MOT_CHECK(slot != kNotFound);
    erase_at(slot);
    return entries_.begin() + dense;
  }

 private:
  static constexpr std::uint32_t kEmpty = ~0u;
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinSlots = 8;

  std::size_t mask() const { return slots_.size() - 1; }

  // splitmix64 finalizer: integral keys (ObjectId) are near-sequential,
  // which linear probing would clump without a full-avalanche mix.
  std::size_t probe_start(const Key& key) const {
    std::uint64_t x =
        static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31)) & mask();
  }

  std::size_t find_slot(const Key& key) const {
    if (entries_.empty()) return kNotFound;
    std::size_t slot = probe_start(key);
    while (slots_[slot] != kEmpty) {
      if (entries_[slots_[slot]].first == key) return slot;
      slot = (slot + 1) & mask();
    }
    return kNotFound;
  }

  void reserve_slot() {
    if (slots_.empty()) {
      slots_.assign(kMinSlots, kEmpty);
      return;
    }
    // Rehash above 3/4 load so probe chains stay short.
    if ((entries_.size() + 1) * 4 <= slots_.size() * 3) return;
    std::vector<std::uint32_t> grown(slots_.size() * 2, kEmpty);
    slots_.swap(grown);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t slot = probe_start(entries_[i].first);
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask();
      slots_[slot] = static_cast<std::uint32_t>(i);
    }
  }

  void erase_at(std::size_t slot) {
    const std::uint32_t dense = slots_[slot];
    // Backward-shift deletion: pull every displaced follower of the probe
    // chain one step back so lookups never need tombstones.
    std::size_t hole = slot;
    std::size_t next = (hole + 1) & mask();
    while (slots_[next] != kEmpty) {
      const std::size_t ideal = probe_start(entries_[slots_[next]].first);
      if (((next - ideal) & mask()) >= ((next - hole) & mask())) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask();
    }
    slots_[hole] = kEmpty;
    // Dense storage: swap the last entry into the vacated index (the
    // deterministic-iteration rule documented above) and repoint its slot.
    const std::uint32_t last = static_cast<std::uint32_t>(
        entries_.size() - 1);
    if (dense != last) {
      entries_[dense] = std::move(entries_[last]);
      const std::size_t moved_slot = find_slot(entries_[dense].first);
      MOT_CHECK(moved_slot != kNotFound);
      slots_[moved_slot] = dense;
    }
    entries_.pop_back();
  }

  std::vector<value_type> entries_;     // dense, iteration order
  std::vector<std::uint32_t> slots_;    // open-addressed index (or kEmpty)
};

}  // namespace mot
