#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
  MOT_EXPECTS(!columns_.empty());
}

Table& Table::begin_row() {
  MOT_EXPECTS(rows_.empty() || rows_.back().size() == columns_.size());
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  MOT_EXPECTS(!rows_.empty() && rows_.back().size() < columns_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return cell(out.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  MOT_EXPECTS(row < rows_.size() && col < rows_[row].size());
  return rows_[row][col];
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      out << "  " << std::left << std::setw(static_cast<int>(widths[c]))
          << text;
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t rule_width = 0;
  for (const auto w : widths) rule_width += w + 2;
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out << ',';
    out << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  }
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

bool write_text_file(const std::string& path, const std::string& contents,
                     bool append) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      MOT_LOG_WARN("cannot create directory %s: %s", parent.c_str(),
                   ec.message().c_str());
      return false;
    }
  }
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) {
    MOT_LOG_WARN("cannot open %s for writing", path.c_str());
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

bool CsvStacker::write(const std::string& path, const std::string& title,
                       const Table& table) {
  // weakly_canonical resolves dot segments and symlinks for the existing
  // prefix without requiring the file itself to exist yet.
  std::error_code ec;
  std::filesystem::path canonical =
      std::filesystem::weakly_canonical(path, ec);
  const std::string key = ec ? path : canonical.string();
  const bool append = !started_.insert(key).second;
  std::ostringstream csv;
  if (append) csv << "\n# " << title << "\n";
  table.write_csv(csv);
  return write_text_file(path, csv.str(), append);
}

}  // namespace mot
