// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the library (Luby MIS rounds, mobility
// models, hash salts, tie-breaks) draws from an Rng seeded through a
// SeedTree, so an experiment seed fully determines a run. Substreams are
// derived with splitmix64 so that changing the number of draws in one
// component never perturbs another (stream independence).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace mot {

// splitmix64: the canonical 64-bit seeding mixer (Vigna). Used both as a
// standalone mixer for deriving substream seeds and to seed xoshiro256**.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality, tiny state.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Bernoulli trial.
  bool chance(double p);

  // Geometric-ish heavy-tail draw used by the Levy-flight mobility model:
  // returns k >= 1 with P(k) ~ k^-alpha truncated at max_value.
  std::uint64_t truncated_pareto(double alpha, std::uint64_t max_value);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

// Derives independent named substreams from a root seed. The stream for a
// given (root, label, index) triple is stable across runs and across code
// changes in unrelated components.
class SeedTree {
 public:
  explicit SeedTree(std::uint64_t root_seed) : root_(root_seed) {}

  // A stable 64-bit seed for the substream identified by label and index.
  std::uint64_t seed_for(std::string_view label, std::uint64_t index = 0) const;

  // Convenience: an Rng already seeded for the substream.
  Rng stream(std::string_view label, std::uint64_t index = 0) const {
    return Rng(seed_for(label, index));
  }

  std::uint64_t root() const { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace mot
