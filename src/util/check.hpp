// Lightweight contract checking in the spirit of the C++ Core Guidelines
// Expects()/Ensures() (I.6, I.8). Checks are always on: tracking-structure
// invariants are cheap relative to simulation work, and a silently corrupt
// detection list would invalidate every measured cost ratio downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mot::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace mot::detail

#define MOT_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mot::detail::contract_failure("Precondition", #cond,        \
                                            __FILE__, __LINE__))

#define MOT_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mot::detail::contract_failure("Postcondition", #cond,       \
                                            __FILE__, __LINE__))

#define MOT_CHECK(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mot::detail::contract_failure("Invariant", #cond,           \
                                            __FILE__, __LINE__))
