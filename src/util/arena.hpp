// Bump-pointer arena for per-operation scratch (message batches, group
// tables). Allocation is a pointer increment into geometrically growing
// blocks; nothing is freed individually — reset() retires the whole
// batch at a quiescence point and keeps the largest block for reuse, so
// a steady-state workload stops touching the system allocator entirely.
//
// Only trivially destructible element types are supported: reset() does
// not run destructors, which is exactly what makes it O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace mot {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 4096)
      : initial_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw bump allocation. `align` must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    MOT_EXPECTS(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t at =
        reinterpret_cast<std::uintptr_t>(cursor_) + align - 1;
    at &= ~static_cast<std::uintptr_t>(align - 1);
    if (blocks_.empty() ||
        at + bytes > reinterpret_cast<std::uintptr_t>(block_end_)) {
      grow(bytes + align);
      at = reinterpret_cast<std::uintptr_t>(cursor_) + align - 1;
      at &= ~static_cast<std::uintptr_t>(align - 1);
    }
    cursor_ = reinterpret_cast<std::byte*>(at + bytes);
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(at);
  }

  // Uninitialized span of n elements.
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena reset() never runs destructors");
    if (n == 0) return {};
    T* data = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {data, n};
  }

  // Arena-resident copy of an existing range.
  template <typename T>
  std::span<T> copy(std::span<const T> source) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<T> out = make_span<T>(source.size());
    if (!source.empty()) {
      std::memcpy(out.data(), source.data(), source.size_bytes());
    }
    return out;
  }

  // Retires every live allocation at once. The largest block is kept so
  // the next batch of the same shape allocates without new memory.
  void reset() {
    if (blocks_.size() > 1) {
      // Keep only the newest (largest) block; capacities grow
      // geometrically, so one generation of churn reaches steady state.
      Block keep = std::move(blocks_.back());
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    if (!blocks_.empty()) {
      cursor_ = blocks_.back().data.get();
      block_end_ = cursor_ + blocks_.back().size;
    }
    bytes_used_ = 0;
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size =
        blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
    cursor_ = blocks_.back().data.get();
    block_end_ = cursor_ + size;
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::byte* cursor_ = nullptr;
  std::byte* block_end_ = nullptr;
  std::size_t bytes_used_ = 0;
};

}  // namespace mot
