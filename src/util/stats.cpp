#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace mot {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  const double total =
      std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return total / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  MOT_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

void Histogram::add(std::size_t bin, std::uint64_t weight) {
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += weight;
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  return bin < bins_.size() ? bins_[bin] : 0;
}

std::uint64_t Histogram::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0});
}

std::uint64_t Histogram::count_above(std::size_t bin) const {
  std::uint64_t count = 0;
  for (std::size_t i = bin + 1; i < bins_.size(); ++i) count += bins_[i];
  return count;
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    out << i << ":" << bins_[i] << " ";
  }
  return out.str();
}

}  // namespace mot
