// A tiny command-line flag parser for bench/example binaries.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are an error (catches typos in sweep scripts);
// --help prints registered flags with defaults and exits 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mot {

class Flags {
 public:
  Flags(std::string program_description);

  // Registration: pointers must outlive parse(). The default value is the
  // value already stored at the pointer.
  void register_flag(const std::string& name, std::string* value,
                     const std::string& help);
  void register_flag(const std::string& name, std::int64_t* value,
                     const std::string& help);
  void register_flag(const std::string& name, std::uint64_t* value,
                     const std::string& help);
  void register_flag(const std::string& name, double* value,
                     const std::string& help);
  void register_flag(const std::string& name, bool* value,
                     const std::string& help);

  // Parses argv. Returns false on error (message on stderr). Calls
  // std::exit(0) after printing usage if --help is present.
  bool parse(int argc, char** argv);

  std::string usage() const;

 private:
  enum class Kind { kString, kInt, kUint, kDouble, kBool };

  struct FlagInfo {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
  };

  FlagInfo* find(const std::string& name);
  bool assign(FlagInfo& flag, const std::string& text);

  std::string description_;
  std::vector<FlagInfo> flags_;
};

}  // namespace mot
