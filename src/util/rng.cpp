#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mot {

std::uint64_t Rng::below(std::uint64_t bound) {
  MOT_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MOT_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi].
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MOT_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::truncated_pareto(double alpha, std::uint64_t max_value) {
  MOT_EXPECTS(alpha > 0.0);
  MOT_EXPECTS(max_value >= 1);
  // Inverse-CDF sampling of a Pareto(1, alpha), truncated to [1, max_value].
  const double u = uniform01();
  const double value = std::pow(1.0 - u, -1.0 / alpha);
  const double clamped = std::min(value, static_cast<double>(max_value));
  return static_cast<std::uint64_t>(clamped);
}

std::uint64_t SeedTree::seed_for(std::string_view label,
                                 std::uint64_t index) const {
  // FNV-1a over the label folded into the root, then mixed with the index
  // through splitmix64. Collisions across distinct labels are astronomically
  // unlikely and harmless (streams would merely coincide).
  std::uint64_t h = 0xcbf29ce484222325ULL ^ root_;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = h + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

}  // namespace mot
