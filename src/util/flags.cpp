#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace mot {

Flags::Flags(std::string program_description)
    : description_(std::move(program_description)) {}

namespace {

std::string bool_text(bool value) { return value ? "true" : "false"; }

}  // namespace

void Flags::register_flag(const std::string& name, std::string* value,
                          const std::string& help) {
  MOT_EXPECTS(value != nullptr && find(name) == nullptr);
  flags_.push_back({name, Kind::kString, value, help, *value});
}

void Flags::register_flag(const std::string& name, std::int64_t* value,
                          const std::string& help) {
  MOT_EXPECTS(value != nullptr && find(name) == nullptr);
  flags_.push_back({name, Kind::kInt, value, help, std::to_string(*value)});
}

void Flags::register_flag(const std::string& name, std::uint64_t* value,
                          const std::string& help) {
  MOT_EXPECTS(value != nullptr && find(name) == nullptr);
  flags_.push_back({name, Kind::kUint, value, help, std::to_string(*value)});
}

void Flags::register_flag(const std::string& name, double* value,
                          const std::string& help) {
  MOT_EXPECTS(value != nullptr && find(name) == nullptr);
  flags_.push_back({name, Kind::kDouble, value, help, std::to_string(*value)});
}

void Flags::register_flag(const std::string& name, bool* value,
                          const std::string& help) {
  MOT_EXPECTS(value != nullptr && find(name) == nullptr);
  flags_.push_back({name, Kind::kBool, value, help, bool_text(*value)});
}

Flags::FlagInfo* Flags::find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool Flags::assign(FlagInfo& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = text;
      return true;
    case Kind::kInt: {
      const long long parsed = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
      *static_cast<std::int64_t*>(flag.target) = parsed;
      return true;
    }
    case Kind::kUint: {
      if (!text.empty() && text[0] == '-') return false;
      const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
      *static_cast<std::uint64_t*>(flag.target) = parsed;
      return true;
    }
    case Kind::kDouble: {
      const double parsed = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
      *static_cast<double*>(flag.target) = parsed;
      return true;
    }
    case Kind::kBool: {
      if (text == "true" || text == "1" || text == "yes") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (text == "false" || text == "0" || text == "no") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);

    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    FlagInfo* flag = find(name);
    // --no-name sugar for booleans.
    if (flag == nullptr && name.rfind("no-", 0) == 0 && !inline_value) {
      flag = find(name.substr(3));
      if (flag != nullptr && flag->kind == Kind::kBool) {
        *static_cast<bool*>(flag->target) = false;
        continue;
      }
      flag = nullptr;
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }

    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else if (flag->kind == Kind::kBool) {
      value = "true";
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
      return false;
    }

    if (!assign(*flag, value)) {
      std::fprintf(stderr, "invalid value '%s' for flag --%s\n", value.c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

std::string Flags::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    out << "  --" << flag.name << "  (default: " << flag.default_value
        << ")\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace mot
