#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace mot {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace detail {

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // Format the whole line locally and write it in one call: interleaved
  // fprintf calls from concurrent threads would shred messages mid-line.
  char buffer[2048];
  int offset = std::snprintf(buffer, sizeof(buffer), "[%s] ",
                             level_name(level));
  if (offset < 0) return;
  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(buffer + offset,
                                  sizeof(buffer) - 1 - offset, fmt, args);
  va_end(args);
  if (body > 0) {
    offset += std::min(body, static_cast<int>(sizeof(buffer)) - 1 - offset);
  }
  buffer[offset] = '\n';
  std::fwrite(buffer, 1, static_cast<std::size_t>(offset) + 1, stderr);
}

}  // namespace detail

}  // namespace mot
