#include "util/log.hpp"

#include <cstdio>

namespace mot {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

namespace detail {

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail

}  // namespace mot
