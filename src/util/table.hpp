// Result presentation: aligned plain-text tables for terminal output and
// CSV emission for downstream plotting. Every bench binary prints its
// figure/table through this so all outputs share one format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace mot {

class Table {
 public:
  explicit Table(std::vector<std::string> column_names);

  // Row-building interface. Numeric cells are formatted on insertion.
  Table& begin_row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::string& at(std::size_t row, std::size_t col) const;

  // Aligned fixed-width rendering with a header rule.
  void print(std::ostream& out) const;

  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& out) const;

  std::string to_string() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes `contents` to `path`, creating parent directories if needed.
// With `append` set, adds to an existing file instead of truncating it
// (multi-table benches stack their tables in one CSV this way).
// Returns false (and logs) on failure instead of throwing: losing a CSV
// must not abort a half-day experiment run.
bool write_text_file(const std::string& path, const std::string& contents,
                     bool append = false);

// Stacks several tables into one CSV file: the first table written to a
// path truncates the file, later tables append under a `# <title>`
// comment line. Paths are keyed canonically, so "out.csv", "./out.csv"
// and "sub/../out.csv" name the same stack and cannot truncate it twice.
// The guard is instance state, not a process-wide set: a fresh stacker
// (or reset()) always starts by truncating, so re-running a multi-table
// bench into an existing file can never duplicate its table blocks.
class CsvStacker {
 public:
  // Appends `table` to the stack at `path` (truncating on the first
  // write). Returns false on I/O failure, like write_text_file.
  bool write(const std::string& path, const std::string& title,
             const Table& table);

  // Forgets every path: the next write to each truncates again.
  void reset() { started_.clear(); }

 private:
  std::set<std::string> started_;  // canonical paths already truncated
};

}  // namespace mot
