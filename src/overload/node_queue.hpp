// Bounded per-node inbox with class-based admission control.
//
// Admission runs at arrival time, before the reliable link layer acks the
// frame: a shed message was never acknowledged, so the sender's
// retransmission timer recovers it later — shedding is backpressure, not
// loss. Once admitted a message is never evicted (it has been acked; the
// sender forgot it), so the queue only ever sheds at the front door.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "overload/overload.hpp"
#include "util/rng.hpp"

namespace mot::overload {

// Outcome of offering a message to a node's inbox.
enum class Admit : std::uint8_t {
  kAdmit,         // queued (or taken straight into service)
  kShedCapacity,  // class admission limit reached
  kShedDeadline,  // projected queueing delay exceeds the class budget
  kShedEarly,     // RED-style probabilistic early drop (query class only)
};

const char* admit_name(Admit outcome);

struct QueueItem {
  double arrival = 0.0;              // simulator time the message arrived
  Priority cls = Priority::kQuery;   // admission class
  std::function<void()> run;         // deferred handler
  std::uint64_t order = 0;           // global arrival order (FIFO tiebreak)
};

// One node's inbox. Not thread-safe; the simulator is single-threaded.
class BoundedNodeQueue {
 public:
  explicit BoundedNodeQueue(const OverloadConfig* config) : config_(config) {}

  // Admission decision for a class-`cls` message arriving at `now`. On
  // kAdmit the item is queued; any other outcome leaves the queue
  // untouched. `red` is the shared deterministic stream for the RED ramp
  // (consumed only when the ramp is actually consulted, so the draw order
  // is a pure function of the admission sequence).
  Admit offer(double now, Priority cls, std::function<void()> run, Rng& red);

  // Pops the next item to service: highest class first (FIFO within a
  // class) under kPriority, strict arrival order under kFifo. Requires
  // depth() > 0.
  QueueItem take();

  std::size_t depth() const { return depth_; }
  std::size_t depth_of(Priority cls) const {
    return lanes_[static_cast<std::size_t>(cls)].size();
  }
  std::size_t max_depth() const { return max_depth_; }
  bool empty() const { return depth_ == 0; }

 private:
  const OverloadConfig* config_;
  std::deque<QueueItem> lanes_[kNumClasses];
  std::size_t depth_ = 0;
  std::size_t max_depth_ = 0;
  std::uint64_t next_order_ = 0;
};

}  // namespace mot::overload
