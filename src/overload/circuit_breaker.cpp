#include "overload/circuit_breaker.hpp"

namespace mot::overload {

CircuitBreaker::Gate CircuitBreaker::gate(double now, std::uint64_t seq) {
  if (!open_) return Gate::kPass;
  if (probing_) {
    // The elected probe retrying itself stays the probe; everyone else
    // waits for its verdict.
    return seq == probe_token_ ? Gate::kProbe : Gate::kBlocked;
  }
  if (now - opened_at_ >= cooldown_) {
    probing_ = true;
    probe_token_ = seq;
    return Gate::kProbe;
  }
  return Gate::kBlocked;
}

bool CircuitBreaker::on_timeout(double now, std::uint64_t seq) {
  if (open_) {
    // Only the probe's fate matters while open; a straggler timeout from
    // before the trip carries no fresh evidence.
    if (probing_ && seq == probe_token_) {
      probing_ = false;
      opened_at_ = now;  // restart the cooldown clock
      ++trips_;
      return true;
    }
    return false;
  }
  if (++consecutive_ >= threshold_) {
    open_ = true;
    probing_ = false;
    opened_at_ = now;
    ++trips_;
    return true;
  }
  return false;
}

bool CircuitBreaker::on_success() {
  consecutive_ = 0;
  if (open_) {
    open_ = false;
    probing_ = false;
    return true;
  }
  return false;
}

}  // namespace mot::overload
