#include "overload/overload.hpp"

#include <algorithm>
#include <cmath>

namespace mot::overload {

const char* priority_name(Priority cls) {
  switch (cls) {
    case Priority::kRecovery: return "recovery";
    case Priority::kTransport: return "transport";
    case Priority::kMaintenance: return "maintenance";
    case Priority::kQuery: return "query";
  }
  return "unknown";
}

std::size_t OverloadConfig::admit_limit(Priority cls) const {
  const double fraction = admit_fraction[static_cast<std::size_t>(cls)];
  const double raw = fraction * static_cast<double>(queue_capacity);
  const auto limit = static_cast<std::size_t>(std::floor(raw));
  return std::max<std::size_t>(1, std::min(limit, queue_capacity));
}

std::size_t OverloadConfig::high_watermark() const {
  const double raw = degrade_fraction * static_cast<double>(queue_capacity);
  const auto mark = static_cast<std::size_t>(std::floor(raw));
  return std::max<std::size_t>(1, std::min(mark, queue_capacity));
}

std::size_t OverloadConfig::red_threshold() const {
  // The ramp is only a valid probability when the onset sits at or below
  // the query admit limit; a threshold exactly at the limit disables RED
  // (the queue requires onset < limit to ramp). Misconfigs must land in
  // that range too: red_fraction > 1 clamps to the limit (ramp off, like
  // red_fraction == 1), and a negative or NaN fraction — which would be
  // undefined behavior if the raw product were cast to unsigned — also
  // disables the ramp instead of wrapping to a huge threshold.
  const std::size_t limit = admit_limit(Priority::kQuery);
  const double raw = red_fraction * static_cast<double>(queue_capacity);
  if (!(raw >= 0.0)) return limit;
  if (raw >= static_cast<double>(limit)) return limit;
  return static_cast<std::size_t>(std::floor(raw));
}

}  // namespace mot::overload
