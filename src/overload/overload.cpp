#include "overload/overload.hpp"

#include <algorithm>
#include <cmath>

namespace mot::overload {

const char* priority_name(Priority cls) {
  switch (cls) {
    case Priority::kRecovery: return "recovery";
    case Priority::kTransport: return "transport";
    case Priority::kMaintenance: return "maintenance";
    case Priority::kQuery: return "query";
  }
  return "unknown";
}

std::size_t OverloadConfig::admit_limit(Priority cls) const {
  const double fraction = admit_fraction[static_cast<std::size_t>(cls)];
  const double raw = fraction * static_cast<double>(queue_capacity);
  const auto limit = static_cast<std::size_t>(std::floor(raw));
  return std::max<std::size_t>(1, std::min(limit, queue_capacity));
}

std::size_t OverloadConfig::high_watermark() const {
  const double raw = degrade_fraction * static_cast<double>(queue_capacity);
  const auto mark = static_cast<std::size_t>(std::floor(raw));
  return std::max<std::size_t>(1, std::min(mark, queue_capacity));
}

std::size_t OverloadConfig::red_threshold() const {
  const double raw = red_fraction * static_cast<double>(queue_capacity);
  const auto mark = static_cast<std::size_t>(std::floor(raw));
  return std::min(mark, admit_limit(Priority::kQuery));
}

}  // namespace mot::overload
