// Overload-resilience primitives for the distributed MOT runtime.
//
// Section 6 of the paper argues bounded per-node load: detection lists
// are hashed across de Bruijn clusters precisely so no sensor saturates.
// This module supplies the machinery that makes finite capacity real —
// priority classes for admission control, bounded per-node queues with
// deadline-aware load shedding, and a per-link circuit breaker — so the
// runtime can be driven past capacity and observed shedding, redirecting
// and degrading instead of queueing without bound.
//
// Everything here is deterministic: shed decisions that are probabilistic
// (the RED-style early-drop ramp) draw from a SeedTree substream handed
// in via OverloadConfig::seed, so the same seed + config replays the same
// shed pattern bit for bit.
//
// Layering: this module sits below src/sim (the ServiceModel that
// executes queues on the simulator lives there) and src/proto (which
// wires admission, credits and breakers into the reliable link layer), so
// it depends only on util. Times are plain doubles (simulator time).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mot::overload {

// Admission classes, most protected first. The ordering is the paper's
// operational hierarchy under stress: recovery traffic (replica mirrors
// that keep failover possible) must survive any load that queries
// survive; retransmitted frames carry work the sender already paid for;
// maintenance keeps the structure converging; fresh query walkers are the
// load that is safe to shed because the sender-side retransmission layer
// (or the query deadline policy) retries them.
enum class Priority : std::uint8_t {
  kRecovery = 0,     // replica add/remove: the failover plane
  kTransport = 1,    // retransmitted frames: already-paid-for work
  kMaintenance = 2,  // publish / insert / delete / SDL bookkeeping
  kQuery = 3,        // query walkers and replies
};
inline constexpr std::size_t kNumClasses = 4;

const char* priority_name(Priority cls);

// How a node's inbox orders service once messages are queued.
enum class QueueDiscipline : std::uint8_t {
  kPriority,  // strict class priority, FIFO within a class
  kFifo,      // arrival order regardless of class
};

struct OverloadConfig {
  // Messages one node services per simulator time unit.
  double service_rate = 4.0;
  // Bounded inbox: total messages a node may hold (waiting + in service).
  std::size_t queue_capacity = 64;
  QueueDiscipline discipline = QueueDiscipline::kPriority;
  // Class admission thresholds as fractions of queue_capacity: class c is
  // admitted only while the node's depth is below admit_fraction[c] *
  // capacity. Monotone non-increasing from kRecovery to kQuery, which is
  // what makes priority inversion structurally impossible — at any depth
  // where recovery is shed, every other class is shed too.
  double admit_fraction[kNumClasses] = {1.0, 0.9, 0.75, 0.5};
  // RED-style early shedding for the query class: between red_fraction *
  // capacity and the query admit limit, a fresh query is shed with
  // probability ramping linearly 0 -> 1 (drawn from the seeded stream).
  double red_fraction = 0.25;
  // Deadline-aware admission: shed a class-c message whose estimated
  // queueing delay (depth / service_rate) already exceeds this budget.
  // 0 disables the budget for that class.
  double delay_budget[kNumClasses] = {0.0, 0.0, 0.0, 0.0};
  // Graceful query degradation: a node whose depth has reached
  // high_watermark() answers queries from its (possibly stale) detection
  // entry with an explicit degraded flag instead of forwarding.
  bool degrade_queries = true;
  double degrade_fraction = 0.5;  // high watermark as a capacity fraction
  // Staleness bound attached to a degraded answer from a level-L entry:
  // staleness_scale * 2^L (the chain hop below level L spans O(2^L)).
  double staleness_scale = 8.0;
  // Hot next hop on a query descent: redirect to the de Bruijn cluster
  // sibling holding the replicated detection entry (requires
  // replicate_detection_lists in the runtime).
  bool sibling_redirect = true;
  // Sender-side credit window: outstanding unacked frames toward one
  // receiver are capped at the credit its last ack granted, clamped to
  // [1, max_window]. Excess frames park untransmitted until credit frees.
  std::size_t max_window = 8;
  // Circuit breaker: consecutive timeouts on a directed link before it
  // opens, and how long it stays open before probing half-open.
  int breaker_threshold = 4;
  double breaker_cooldown = 64.0;
  // Seed for the RED early-drop stream (derive via SeedTree).
  std::uint64_t seed = 0;

  // Derived thresholds, in messages. Every limit admits at least one
  // message so a completely idle node can always make progress.
  std::size_t admit_limit(Priority cls) const;
  std::size_t high_watermark() const;
  std::size_t red_threshold() const;
};

}  // namespace mot::overload
