#include "overload/node_queue.hpp"

#include <utility>

#include "util/check.hpp"

namespace mot::overload {

const char* admit_name(Admit outcome) {
  switch (outcome) {
    case Admit::kAdmit: return "admit";
    case Admit::kShedCapacity: return "shed_capacity";
    case Admit::kShedDeadline: return "shed_deadline";
    case Admit::kShedEarly: return "shed_early";
  }
  return "unknown";
}

Admit BoundedNodeQueue::offer(double now, Priority cls,
                              std::function<void()> run, Rng& red) {
  const auto idx = static_cast<std::size_t>(cls);
  // Class admission limit: depth (including the in-service slot) must be
  // strictly below the class threshold for the message to enter.
  if (depth_ >= config_->admit_limit(cls)) return Admit::kShedCapacity;
  // Deadline-aware admission: projected wait is everything already queued
  // divided by the service rate; a message that would blow its class
  // budget is shed now rather than aged to death in the queue.
  const double budget = config_->delay_budget[idx];
  if (budget > 0.0 && config_->service_rate > 0.0) {
    const double projected = static_cast<double>(depth_) / config_->service_rate;
    if (projected > budget) return Admit::kShedDeadline;
  }
  // RED-style early drop for fresh queries: shed probability ramps 0 -> 1
  // between red_threshold() and the query admit limit. The draw happens
  // only when the ramp region is actually entered, keeping the stream a
  // deterministic function of the admission sequence.
  if (cls == Priority::kQuery) {
    const std::size_t lo = config_->red_threshold();
    const std::size_t hi = config_->admit_limit(Priority::kQuery);
    if (depth_ >= lo && hi > lo) {
      const double ramp = static_cast<double>(depth_ - lo) /
                          static_cast<double>(hi - lo);
      if (red.uniform01() < ramp) return Admit::kShedEarly;
    }
  }
  lanes_[idx].push_back(
      QueueItem{now, cls, std::move(run), next_order_++});
  ++depth_;
  max_depth_ = std::max(max_depth_, depth_);
  return Admit::kAdmit;
}

QueueItem BoundedNodeQueue::take() {
  MOT_EXPECTS(depth_ > 0);
  std::size_t pick = kNumClasses;
  if (config_->discipline == QueueDiscipline::kPriority) {
    for (std::size_t idx = 0; idx < kNumClasses; ++idx) {
      if (!lanes_[idx].empty()) {
        pick = idx;
        break;
      }
    }
  } else {
    std::uint64_t best = 0;
    for (std::size_t idx = 0; idx < kNumClasses; ++idx) {
      if (lanes_[idx].empty()) continue;
      if (pick == kNumClasses || lanes_[idx].front().order < best) {
        pick = idx;
        best = lanes_[idx].front().order;
      }
    }
  }
  MOT_CHECK(pick < kNumClasses);
  QueueItem item = std::move(lanes_[pick].front());
  lanes_[pick].pop_front();
  --depth_;
  return item;
}

}  // namespace mot::overload
