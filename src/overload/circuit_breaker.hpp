// Per-directed-link circuit breaker for the reliable link layer.
//
// Classic three-state machine adapted to a simulated network: kPass while
// the link is healthy, kBlocked after `threshold` consecutive transfer
// timeouts (retries toward the peer are parked instead of burning backoff
// attempts), and a half-open probe after `cooldown` time units — exactly
// one in-flight frame is elected the probe; its ack closes the breaker
// and releases the parked frames, its timeout re-opens for another
// cooldown. Timeouts of frames that were never transmitted (parked by the
// breaker itself, or suppressed by partition carrier-sense) must not be
// reported here — they carry no evidence about the link.
#pragma once

#include <cstdint>

namespace mot::overload {

class CircuitBreaker {
 public:
  enum class Gate : std::uint8_t {
    kPass,     // closed breaker: transmit normally
    kProbe,    // half-open: this frame is the elected probe
    kBlocked,  // open breaker: park the frame, do not transmit
  };

  CircuitBreaker(int threshold, double cooldown)
      : threshold_(threshold), cooldown_(cooldown) {}

  // Called before (re)transmitting frame `seq` at time `now`. While open,
  // the first caller after the cooldown elapses is elected the probe; the
  // same seq asking again (its own retry) is re-elected so a lost probe
  // cannot wedge the link.
  Gate gate(double now, std::uint64_t seq);

  // Report a genuine transfer timeout (the frame was actually on the
  // wire). Returns true when this report trips the breaker open or
  // re-opens it from half-open.
  bool on_timeout(double now, std::uint64_t seq);

  // Report an acked transfer. Returns true when this closes an open
  // breaker (probe succeeded) so the caller can release parked frames.
  bool on_success();

  bool open() const { return open_; }
  int consecutive_timeouts() const { return consecutive_; }
  int trips() const { return trips_; }

 private:
  int threshold_;
  double cooldown_;
  int consecutive_ = 0;
  int trips_ = 0;
  bool open_ = false;
  bool probing_ = false;
  std::uint64_t probe_token_ = 0;
  double opened_at_ = 0.0;
};

}  // namespace mot::overload
