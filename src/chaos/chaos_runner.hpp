// The chaos schedule explorer (the harness's tentpole): replays seeded
// random fault schedules — crash-stop failures, timed partitions, node
// isolations — against the distributed MOT runtime while objects move
// and queries fire, checks the structural invariants at every quiescence
// point, and greedily shrinks any violating schedule to a minimal
// deterministic repro.
//
// Invariants checked at quiescence (all partitions healed, simulator
// drained):
//   * every live object is locatable and query answers match its
//     physical position;
//   * the per-object chain invariant holds with no orphaned
//     detection-list entries (DistributedMot::invariant_violations);
//   * every issued query terminated — answered or explicitly aborted;
//   * the channel's conservation ledger balances exactly:
//     transmissions + duplicated == delivered + dropped + dead_on_arrival
//     + severed_in_flight + in_flight, with in_flight == 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/adaptive.hpp"
#include "chaos/schedule.hpp"
#include "chaos/topology.hpp"
#include "durable/store.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "overload/overload.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"

namespace mot::chaos {

struct RunnerParams {
  Topology topology = Topology::kGrid;
  std::uint64_t build_seed = 7;  // hierarchy seed, fixed across schedules
  std::size_t num_objects = 8;
  int rounds = 6;
  int events_per_schedule = 5;
  int moves_per_round = 2;
  int queries_per_round = 3;
  // Simulator time per round; long enough for un-faulted operations to
  // finish, short enough that a 1-3 round partition spans real traffic.
  double round_time = 64.0;
  std::size_t max_sim_events = 4'000'000;  // runaway guard per drain
  // Ambient link chaos on top of the scheduled faults.
  faults::LinkFaults link_faults{0.02, 0.02, 0.10, 4.0};
  // End-to-end query policy: generous enough that post-heal queries
  // always answer, tight enough that cut-off queries abort explicitly.
  proto::QueryPolicy query_policy{/*deadline=*/256.0, /*max_attempts=*/4,
                                  /*backoff=*/2.0, /*hedge_delay=*/48.0};
  // Routes through DistributedMot::break_recovery_for_tests so the
  // explorer's detection + shrinking paths can be exercised against a
  // real, deterministic recovery defect.
  bool inject_recovery_bug = false;
  // Overload resilience under chaos: attach a finite-capacity service
  // model to every node and extend the quiescence audit with the
  // service-conservation ledger and the degraded-staleness bound. Off by
  // default — legacy schedules replay bit-identically.
  bool overload = false;
  overload::OverloadConfig overload_config;
  // kBurst events multiply the round's query traffic, focused on one hot
  // object. Only drawn into schedules when burst_events > 0.
  int burst_events = 0;
  double burst_multiplier = 6.0;
  // Crash-restart-replay (the durability audit): each kRestart event
  // heals every open cut, drains to a quiescence point, then tears the
  // whole runtime down and rebuilds it. With `durability` on the
  // rebuilt runtime is restored from the DurableStore in `snapshot_dir`
  // (snapshot + journal-suffix replay) and the restored image is
  // audited bit-for-bit against the pre-teardown image; with it off the
  // event only drains and waits out `delay` — the timing reference a
  // durable run's answer digest is compared against.
  int restart_events = 0;
  bool durability = false;
  std::string snapshot_dir;  // required when durability is on
  durable::FsyncMode journal_fsync = durable::FsyncMode::kGroup;
  // Flips one journal byte before every restore, forcing the typed
  // corruption error -> rebuild-from-ground-truth fallback (the ci
  // self-check). Answer digests are meaningless in this mode.
  bool corrupt_journal = false;
  // Adaptive control plane under chaos (requires `overload`): attach an
  // AdaptiveController, switch replication to load-aware placement, and
  // step the controller at every PASSING quiescence audit. The oracle
  // then additionally checks that the per-node service ledgers reconcile
  // with the global stats, that every tuned operating point sits inside
  // its clamps with a valid RED ramp, and that the placed replica set
  // respects its budget and only names live owners.
  bool adaptive = false;
  adapt::AdaptiveConfig adaptive_config;
  // Correlated burst+crash+partition groups per schedule (their own
  // substream; legacy schedules replay untouched).
  int correlated_events = 0;
};

struct RunReport {
  std::vector<std::string> violations;
  // Round the violation surfaced in; -1 = the final quiescence point.
  int violation_round = -1;
  std::size_t faults_applied = 0;
  std::size_t faults_skipped = 0;  // fire-time eligibility guard
  std::size_t moves_issued = 0;
  std::size_t queries_issued = 0;
  std::size_t queries_terminated = 0;
  // FNV-1a fold of every query answer (object, found, proxy), audit
  // queries included. Two runs that answered every query identically
  // end with equal digests; costs and meters are deliberately excluded
  // (floating-point sums may differ in the last ulp across a rebuild).
  std::uint64_t answer_digest = 0xcbf29ce484222325ull;
  // Crash-restart-replay accounting (zero unless restart events fired).
  std::size_t restarts = 0;
  std::size_t restores = 0;           // snapshot + journal replays
  std::size_t restore_fallbacks = 0;  // fell back to full rebuild
  std::uint64_t journal_replayed = 0; // records replayed across restores
  proto::ProtocolStats proto_stats;
  faults::ChannelStats channel_stats;
  // All-zero unless RunnerParams::overload.
  ServiceStats service_stats;

  bool ok() const { return violations.empty(); }
};

struct ShrinkOutcome {
  ChaosSchedule schedule;  // minimal still-failing schedule
  std::size_t probes = 0;  // replays spent shrinking
};

struct ExplorerOutcome {
  bool violation_found = false;
  std::uint64_t seed = 0;          // first violating seed
  ChaosSchedule schedule;          // its full schedule
  ChaosSchedule shrunk;            // minimal repro
  RunReport report;                // replay of the shrunk repro
  std::size_t seeds_run = 0;
  std::size_t total_runs = 0;      // including shrink probes
};

class ChaosRunner {
 public:
  explicit ChaosRunner(const RunnerParams& params);

  // Replays one schedule against a fresh simulator + channel + runtime.
  // Deterministic: the same schedule always yields the same report.
  RunReport run(const ChaosSchedule& schedule);

  // Greedy delta-debugging: repeatedly deletes single events whose
  // removal keeps the schedule failing, to a fixed point. The result
  // replays the violation from (seed, events) alone.
  ShrinkOutcome shrink(const ChaosSchedule& failing);

  // Runs generate_schedule(seed) for every seed in [first, last]; stops
  // at the first violation and returns it shrunk.
  ExplorerOutcome explore(std::uint64_t first_seed, std::uint64_t last_seed);

  const ChaosNet& net() const { return net_; }
  std::size_t runs_executed() const { return runs_; }

 private:
  RunnerParams params_;
  ChaosNet net_;
  std::size_t runs_ = 0;
};

}  // namespace mot::chaos
