// Chaos-harness network construction: one prebuilt MOT stack (graph,
// oracle, hierarchy, path provider) per topology, shared read-only by
// every seeded run of the explorer. Building the hierarchy dominates a
// chaos run's cost, so the runner builds a ChaosNet once and spins up a
// fresh simulator + channel + protocol runtime per schedule.
#pragma once

#include <cstdint>
#include <memory>

#include "core/mot.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot::chaos {

// The three acceptance topologies: an 8x8 grid (the paper's evaluation
// shape), the same grid wrapped into a torus (no boundary effects), and
// a 48-node ring (worst-case diameter, long thin chains).
enum class Topology { kGrid, kTorus, kRing };

const char* topology_name(Topology topology);

struct ChaosNet {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;

  std::size_t num_nodes() const { return graph->num_nodes(); }
  NodeId root() const { return provider->root_stop().node; }
};

// Builds the full MOT stack for `topology` with hierarchy seed `seed`.
ChaosNet build_chaos_net(Topology topology, std::uint64_t seed);

}  // namespace mot::chaos
