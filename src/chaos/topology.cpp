#include "chaos/topology.hpp"

#include <utility>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace mot::chaos {

const char* topology_name(Topology topology) {
  switch (topology) {
    case Topology::kGrid:
      return "grid";
    case Topology::kTorus:
      return "torus";
    case Topology::kRing:
      return "ring";
  }
  MOT_CHECK(false);
  return "?";
}

ChaosNet build_chaos_net(Topology topology, std::uint64_t seed) {
  Graph graph;
  switch (topology) {
    case Topology::kGrid:
      graph = make_grid(8, 8);
      break;
    case Topology::kTorus:
      graph = make_torus(8, 8);
      break;
    case Topology::kRing:
      graph = make_ring(48);
      break;
  }

  ChaosNet net;
  net.graph = std::make_unique<Graph>(std::move(graph));
  net.oracle = make_distance_oracle(*net.graph);
  DoublingHierarchy::Params hp;
  hp.seed = seed;
  net.hierarchy = DoublingHierarchy::build(*net.graph, *net.oracle, hp);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = seed;
  net.provider = std::make_unique<MotPathProvider>(*net.hierarchy, options);
  net.chain_options = make_mot_chain_options(options);
  return net;
}

}  // namespace mot::chaos
