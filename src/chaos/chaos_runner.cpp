#include "chaos/chaos_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "sim/event_sim.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot::chaos {
namespace {

std::vector<NodeId> id_range(NodeId first, NodeId last_exclusive) {
  std::vector<NodeId> ids;
  ids.reserve(last_exclusive - first);
  for (NodeId v = first; v < last_exclusive; ++v) ids.push_back(v);
  return ids;
}

// Flips one bit in the middle of the file's record region (past the
// 5-byte header), simulating bit rot for the corruption fallback path.
// Flips one bit inside the payload of the journal's middle record. The
// flip must land in a payload, not a frame length: corrupting a length
// can inflate the frame past EOF, which is byte-for-byte identical to a
// genuine torn tail and is (by design) silently truncated rather than
// detected. A payload flip always trips the per-record CRC, so the
// audit can insist the restore falls back.
bool flip_one_journal_byte(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return false;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  constexpr long kHeader = 5;       // magic + version
  constexpr long kFrame = 8;        // u32 length + u32 crc
  // Walk the frames, remembering each payload's extent.
  std::vector<std::pair<long, long>> payloads;  // (offset, length)
  long pos = kHeader;
  while (pos + kFrame <= size) {
    std::fseek(file, pos, SEEK_SET);
    std::uint8_t len_bytes[4];
    if (std::fread(len_bytes, 1, 4, file) != 4) break;
    const long length = static_cast<long>(len_bytes[0]) |
                        static_cast<long>(len_bytes[1]) << 8 |
                        static_cast<long>(len_bytes[2]) << 16 |
                        static_cast<long>(len_bytes[3]) << 24;
    if (length <= 0 || pos + kFrame + length > size) break;
    payloads.emplace_back(pos + kFrame, length);
    pos += kFrame + length;
  }
  if (payloads.empty()) {
    std::fclose(file);
    return false;
  }
  const auto [offset, length] = payloads[payloads.size() / 2];
  const long at = offset + length / 2;
  std::fseek(file, at, SEEK_SET);
  const int byte = std::fgetc(file);
  std::fseek(file, at, SEEK_SET);
  std::fputc(byte ^ 0x40, file);
  std::fclose(file);
  return true;
}

}  // namespace

ChaosRunner::ChaosRunner(const RunnerParams& params)
    : params_(params),
      net_(build_chaos_net(params.topology, params.build_seed)) {
  MOT_EXPECTS(params_.rounds > 0);
  MOT_EXPECTS(params_.num_objects > 0);
  // The control plane is driven by the service model's load signals;
  // without an overload model there is nothing to adapt to.
  MOT_EXPECTS(!params_.adaptive || params_.overload);
}

RunReport ChaosRunner::run(const ChaosSchedule& schedule) {
  ++runs_;
  RunReport report;
  const SeedTree seeds(schedule.seed);
  const std::size_t n = net_.num_nodes();

  faults::FaultPlan plan;
  if (params_.link_faults.faulty()) {
    plan.set_default_faults(params_.link_faults);
  }
  faults::UnreliableChannel channel(plan, seeds.seed_for("chaos-channel"));
  Simulator sim;
  std::optional<ServiceModel> service;
  if (params_.overload) {
    overload::OverloadConfig cfg = params_.overload_config;
    cfg.seed = seeds.seed_for("overload-red");
    service.emplace(sim, n, cfg);
  }
  std::optional<adapt::AdaptiveController> tuner;
  if (params_.adaptive) {
    adapt::AdaptiveConfig acfg = params_.adaptive_config;
    acfg.seed = seeds.seed_for("adapt-placement");
    tuner.emplace(acfg);
  }
  std::optional<durable::DurableStore> store;
  if (params_.durability) {
    MOT_EXPECTS(!params_.snapshot_dir.empty());
    store.emplace(durable::DurableStore::Options{params_.snapshot_dir,
                                                 params_.journal_fsync});
    MOT_CHECK(store->ok());
  }
  // The runtime is rebuilt from scratch on every kRestart event, with
  // the same attachments, so construction lives in a factory. The
  // channel, simulator, service model and store all survive a restart —
  // they are the network and the disk, not the node software.
  auto make_engine = [&] {
    auto engine = std::make_unique<proto::DistributedMot>(
        *net_.provider, sim, net_.chain_options);
    engine->use_channel(&channel);
    if (tuner) {
      engine->replicate_placed();
    } else {
      engine->replicate_detection_lists(true);
    }
    engine->set_query_policy(params_.query_policy);
    if (params_.inject_recovery_bug) engine->break_recovery_for_tests(true);
    if (service) engine->use_overload(&*service);
    if (tuner) engine->use_adaptive(&*tuner);
    if (store) engine->use_durability(&*store);
    return engine;
  };
  std::unique_ptr<proto::DistributedMot> dist = make_engine();
  // Aborted-query counts of runtimes already torn down by a restart:
  // the termination audit must see the whole run, not just the tail.
  std::uint64_t aborted_before_restart = 0;

  std::vector<bool> dead(n, false);
  std::size_t crashed = 0;
  const std::size_t crash_cap = std::max<std::size_t>(1, n / 6);
  // Bounded rejection sampling; with at most n/6 dead nodes a uniform
  // draw misses with probability < 1/6 per try.
  auto live_node = [&](Rng& rng) {
    for (;;) {
      const NodeId v = rng.below(n);
      if (!dead[v]) return v;
    }
  };

  // Publish everything and settle before the first fault.
  Rng publish_rng = SeedTree(schedule.seed).stream("chaos-publish");
  for (ObjectId object = 0; object < params_.num_objects; ++object) {
    dist->publish(object, publish_rng.below(n));
  }
  sim.run(params_.max_sim_events);
  MOT_CHECK(sim.empty());
  // Ground the store on this run's settled world: overwrites whatever a
  // previous seed left in the directory and compacts the journal, so a
  // later restore can never alias stale state.
  if (store) {
    store->commit();
    store->write_snapshot(*net_.graph, *net_.hierarchy,
                          dist->export_durable_image());
  }

  std::vector<char> move_busy(params_.num_objects, 0);
  // Completed moves per object; a degraded answer is only auditable
  // against the staleness bound when the object held still across the
  // query's lifetime (no completed move, none in flight at either end).
  std::vector<std::uint64_t> move_epoch(params_.num_objects, 0);
  std::size_t moves_done = 0;

  struct OpenCut {
    std::uint64_t id = 0;
    int heal_round = 0;
  };
  std::vector<OpenCut> open;

  // kBurst events accumulate into a faults-layer plan; the runner reads
  // it back each round to inject the focused extra traffic.
  faults::FaultPlan traffic_plan;

  // FNV-1a fold over query answers, in callback order (deterministic:
  // the simulator is). The digest is the cross-run parity oracle — a
  // durable run with restarts must answer exactly like its reference.
  auto fold_answer = [&report](ObjectId object, const QueryResult& r) {
    const auto fold = [&report](std::uint64_t x) {
      report.answer_digest ^= x;
      report.answer_digest *= 1099511628211ull;
    };
    fold(object);
    fold(r.found ? 1 : 0);
    fold(r.found ? r.proxy : 0);
  };

  auto issue_query = [&](ObjectId object, NodeId origin) {
    ++report.queries_issued;
    const std::uint64_t epoch = move_epoch[object];
    const bool busy_at_issue = move_busy[object] != 0;
    dist->query(origin, object,
               [&, object, epoch, busy_at_issue](const QueryResult& r) {
                 ++report.queries_terminated;
                 fold_answer(object, r);
                 if (r.found && r.degraded && !busy_at_issue &&
                     move_busy[object] == 0 &&
                     move_epoch[object] == epoch) {
                   const Weight away = net_.oracle->distance(
                       r.proxy, dist->physical_position(object));
                   if (away > r.staleness_bound) {
                     report.violations.push_back(
                         "degraded answer for object " +
                         std::to_string(object) + " named node " +
                         std::to_string(r.proxy) + " at distance " +
                         std::to_string(away) +
                         " but promised staleness bound " +
                         std::to_string(r.staleness_bound));
                   }
                 }
               });
  };

  // Quiescence audit; returns false (and fills the report) on violation.
  auto check_quiescent = [&](int round) {
    std::vector<std::string>& out = report.violations;
    if (!sim.empty()) {
      out.push_back("did not quiesce within the event budget");
    } else {
      for (std::string& line : dist->invariant_violations()) {
        out.push_back(std::move(line));
      }
      const faults::ChannelStats& cs = channel.stats();
      if (cs.in_flight != 0) {
        out.push_back("channel reports " + std::to_string(cs.in_flight) +
                      " copies in flight at quiescence");
      }
      if (!cs.conserved()) {
        out.push_back(
            "channel conservation ledger violated: " +
            std::to_string(cs.transmissions) + " sent + " +
            std::to_string(cs.duplicated) + " duplicated != " +
            std::to_string(cs.delivered) + " delivered + " +
            std::to_string(cs.dropped) + " dropped + " +
            std::to_string(cs.dead_on_arrival) + " dead + " +
            std::to_string(cs.severed_in_flight) + " severed + " +
            std::to_string(cs.in_flight) + " in flight");
      }
      if (service) {
        const ServiceStats& ss = service->stats();
        if (!service->conserved()) {
          out.push_back(
              "service conservation ledger violated: " +
              std::to_string(ss.arrivals) + " arrivals vs " +
              std::to_string(ss.admitted) + " admitted + " +
              std::to_string(ss.shed_total()) + " shed, with " +
              std::to_string(ss.serviced) + " serviced and " +
              std::to_string(service->total_queued()) + " queued");
        }
        if (service->total_queued() != 0) {
          out.push_back("service queues hold " +
                        std::to_string(service->total_queued()) +
                        " admitted messages at quiescence");
        }
        if (!service->node_ledgers_conserved()) {
          out.push_back(
              "per-node service ledgers do not reconcile with the "
              "global service stats");
        }
        if (tuner) {
          // The controller's own clamp audit, plus: every tuned
          // operating point must still describe a valid RED ramp and a
          // monotone class ladder, and the engine's placed replica set
          // must fit the controller's budget.
          for (std::string& line : tuner->violations(service->config())) {
            out.push_back("controller: " + std::move(line));
          }
          for (std::size_t v = 0; v < service->num_nodes(); ++v) {
            const overload::OverloadConfig& oc = service->node_config(v);
            const std::size_t lo = oc.red_threshold();
            const std::size_t query =
                oc.admit_limit(overload::Priority::kQuery);
            const std::size_t maint =
                oc.admit_limit(overload::Priority::kMaintenance);
            if (lo > query) {
              out.push_back("node " + std::to_string(v) +
                            ": tuned RED onset " + std::to_string(lo) +
                            " sits above the query admit limit " +
                            std::to_string(query));
            }
            if (query > maint) {
              out.push_back("node " + std::to_string(v) +
                            ": tuned query admit limit " +
                            std::to_string(query) +
                            " breaks the class ladder (maintenance " +
                            std::to_string(maint) + ")");
            }
          }
          if (dist->placed_replica_count() >
              tuner->config().max_replicas) {
            out.push_back(
                "engine holds " +
                std::to_string(dist->placed_replica_count()) +
                " placed replica slots but the budget is " +
                std::to_string(tuner->config().max_replicas));
          }
        }
      }
      if (report.moves_issued != moves_done) {
        out.push_back("only " + std::to_string(moves_done) + " of " +
                      std::to_string(report.moves_issued) +
                      " moves completed");
      }
      // Crash-aborted queries die with their requester (no callback to a
      // dead node); every other query must have answered or aborted
      // through its callback. Restarts reset the tail runtime's stats,
      // so aborts of torn-down runtimes ride the accumulated baseline.
      const std::uint64_t terminated = report.queries_terminated +
                                       aborted_before_restart +
                                       dist->stats().queries_aborted;
      if (report.queries_issued != terminated) {
        out.push_back("only " + std::to_string(terminated) + " of " +
                      std::to_string(report.queries_issued) +
                      " queries terminated");
      }
      // Every live object must be locatable at its physical position.
      Rng verify_rng = SeedTree(schedule.seed).stream(
          "chaos-verify", static_cast<std::uint64_t>(round + 1));
      for (ObjectId object = 0; object < params_.num_objects; ++object) {
        if (move_busy[object] != 0) continue;  // mid-run point only
        const NodeId origin = live_node(verify_rng);
        bool answered = false;
        QueryResult result;
        dist->query(origin, object, [&](const QueryResult& r) {
          answered = true;
          result = r;
        });
        sim.run(params_.max_sim_events);
        if (!answered || !sim.empty()) {
          out.push_back("verification query for object " +
                        std::to_string(object) + " never terminated");
          break;
        }
        fold_answer(object, result);
        if (!result.found ||
            result.proxy != dist->physical_position(object)) {
          out.push_back(
              "verification query for object " + std::to_string(object) +
              " answered node " +
              std::to_string(result.found ? result.proxy : kInvalidNode) +
              " but the object is at node " +
              std::to_string(dist->physical_position(object)));
        }
      }
    }
    if (!report.violations.empty()) {
      report.violation_round = round;
      // The last moments before the oracle tripped are usually the
      // interesting ones: preserve the trace ring if a recorder is
      // installed (bench drivers wrap explorations in one).
      if (obs::FlightRecorder* recorder = obs::flight_recorder()) {
        recorder->dump("chaos-oracle");
      }
    }
    return report.violations.empty();
  };

  auto finalize = [&] {
    report.proto_stats = dist->stats();
    report.channel_stats = channel.stats();
    if (service) report.service_stats = service->stats();
  };

  // One control-plane epoch, taken only after a PASSING quiescence
  // audit: the tuner must never advance on signals from a run that is
  // already in violation. The step retires placements whose owners died
  // (they vanish from the live-gauge set), so right after it the placed
  // set naming a dead owner is a controller bug, not a race.
  auto adaptive_epoch = [&](int round) {
    if (!tuner) return true;
    dist->adaptive_step();
    for (const std::uint32_t owner : tuner->placed_owners()) {
      if (owner >= n || dead[owner]) {
        report.violations.push_back(
            "controller kept replicas placed on dead owner " +
            std::to_string(owner) + " across a quiescence step");
      }
    }
    if (!report.violations.empty()) {
      report.violation_round = round;
      return false;
    }
    return true;
  };

  double round_end = sim.now();
  for (int round = 0; round < params_.rounds; ++round) {
    // Heal cuts whose window expired.
    for (auto it = open.begin(); it != open.end();) {
      if (it->heal_round <= round) {
        channel.heal_now(it->id);
        it = open.erase(it);
      } else {
        ++it;
      }
    }

    // Fire this round's fault events, guarded at fire time: never crash
    // the root, a dead node, or a sensor physically hosting an object
    // (the object would die with it), and cap total crashes so the
    // network stays usable.
    for (const FaultEvent& event : schedule.events) {
      if (event.round != round) continue;
      switch (event.kind) {
        case FaultKind::kCrash: {
          const NodeId victim = event.victim % n;
          bool hosts = false;
          for (ObjectId object = 0; object < params_.num_objects;
               ++object) {
            if (dist->physical_position(object) == victim) hosts = true;
          }
          if (dead[victim] || victim == net_.root() || hosts ||
              crashed >= crash_cap) {
            ++report.faults_skipped;
            break;
          }
          channel.crash_now(victim);
          dead[victim] = true;
          ++crashed;
          ++report.faults_applied;
          break;
        }
        case FaultKind::kPartition: {
          const NodeId pivot =
              1 + event.pivot % static_cast<NodeId>(n - 1);
          const std::uint64_t id = channel.cut_now(
              id_range(0, pivot), id_range(pivot, static_cast<NodeId>(n)));
          open.push_back({id, round + event.duration});
          ++report.faults_applied;
          break;
        }
        case FaultKind::kIsolate: {
          const NodeId victim = event.victim % n;
          if (dead[victim]) {
            ++report.faults_skipped;
            break;
          }
          std::vector<NodeId> rest;
          for (NodeId v = 0; v < n; ++v) {
            if (v != victim) rest.push_back(v);
          }
          const std::uint64_t id = channel.cut_now({victim}, std::move(rest));
          open.push_back({id, round + event.duration});
          ++report.faults_applied;
          break;
        }
        case FaultKind::kBurst: {
          // Round numbers double as the plan's time axis; the burst
          // window [round, round + duration) is read back below when
          // this round's traffic is issued.
          traffic_plan.add_burst(
              {static_cast<double>(round),
               static_cast<double>(round + event.duration),
               static_cast<std::uint32_t>(event.victim %
                                          params_.num_objects),
               params_.burst_multiplier});
          ++report.faults_applied;
          break;
        }
        case FaultKind::kRestart: {
          // A runtime cannot restart into a mid-operation world: heal
          // every open cut and drain to a quiescence point first. The
          // durable run and its timing reference both execute this
          // part, so their traffic schedules stay aligned.
          for (const OpenCut& cut : open) channel.heal_now(cut.id);
          open.clear();
          sim.run(params_.max_sim_events);
          if (!check_quiescent(round) || !adaptive_epoch(round)) {
            finalize();
            return report;
          }
          round_end = std::max(round_end, sim.now());
          ++report.restarts;
          if (store) {
            store->commit();
            const durable::StateImage before = dist->export_durable_image();
            aborted_before_restart += dist->stats().queries_aborted;
            // The dying runtime's crash subscription captures it;
            // detach before destruction or the channel would call into
            // freed memory on the next crash event. make_engine()'s
            // use_channel re-subscribes the successor.
            channel.clear_crash_subscribers();
            dist.reset();
            if (params_.corrupt_journal) {
              flip_one_journal_byte(store->journal_path());
            }
            const durable::DurableStore::RestoreResult restored =
                store->restore(*net_.graph);
            dist = make_engine();
            if (restored.restored()) {
              ++report.restores;
              report.journal_replayed += restored.journal_replayed;
              if (!(restored.image == before)) {
                report.violations.push_back(
                    "restart in round " + std::to_string(round) +
                    ": restored image differs from the pre-restart "
                    "image (digest " +
                    std::to_string(restored.image.digest()) + " vs " +
                    std::to_string(before.digest()) + ")");
              }
              if (!(restored.hierarchy == net_.hierarchy->export_state())) {
                report.violations.push_back(
                    "restart in round " + std::to_string(round) +
                    ": restored hierarchy state differs from the live "
                    "hierarchy");
              }
              dist->restore_durable_image(restored.image);
            } else {
              // Typed restore failure (e.g. injected corruption):
              // rebuild from ground truth — republish every object at
              // its pre-restart physical position — then re-ground the
              // store with a fresh snapshot.
              ++report.restore_fallbacks;
              for (const auto& [object, at] : before.physical) {
                dist->publish(object, at);
              }
              sim.run(params_.max_sim_events);
              MOT_CHECK(sim.empty());
              round_end = std::max(round_end, sim.now());
              store->write_snapshot(*net_.graph, *net_.hierarchy,
                                    dist->export_durable_image());
            }
            if (tuner) {
              // The successor runtime rebuilt with an empty placed set;
              // re-mirror the controller's placements before any new
              // traffic touches the restored state.
              dist->apply_replica_placements(tuner->placed_owners(), {});
            }
            // Message-free post-restore audit: structural invariants
            // must hold before any new traffic touches the restored
            // state. (Queries would perturb the channel stream the
            // reference run consumes identically.)
            for (std::string& line : dist->invariant_violations()) {
              report.violations.push_back("post-restore: " +
                                          std::move(line));
            }
            if (!report.violations.empty()) {
              report.violation_round = round;
              finalize();
              return report;
            }
          }
          round_end += event.delay;  // downtime before traffic resumes
          ++report.faults_applied;
          break;
        }
      }
    }

    // Traffic: moves on objects with no maintenance in flight (the
    // one-by-one precondition) and queries from live origins.
    Rng traffic = SeedTree(schedule.seed).stream(
        "chaos-traffic", static_cast<std::uint64_t>(round));
    for (int i = 0; i < params_.moves_per_round; ++i) {
      const ObjectId object = traffic.below(params_.num_objects);
      if (move_busy[object] != 0) continue;
      const NodeId target = live_node(traffic);
      move_busy[object] = 1;
      ++report.moves_issued;
      dist->move(object, target, [&, object](const MoveResult&) {
        move_busy[object] = 0;
        ++move_epoch[object];
        ++moves_done;
      });
    }
    for (int i = 0; i < params_.queries_per_round; ++i) {
      const ObjectId object = traffic.below(params_.num_objects);
      const NodeId origin = live_node(traffic);
      issue_query(object, origin);
    }

    // Burst traffic: extra queries concentrated on each active burst's
    // focus object, drawn from a separate substream so the baseline
    // draws above replay bit-identically when no burst is live.
    if (!traffic_plan.bursts().empty()) {
      Rng burst_traffic = SeedTree(schedule.seed).stream(
          "chaos-burst-traffic", static_cast<std::uint64_t>(round));
      const double here = static_cast<double>(round);
      for (const faults::TrafficBurst& burst : traffic_plan.bursts()) {
        if (here < burst.start || here >= burst.end) continue;
        const int extra = static_cast<int>(
            (burst.multiplier - 1.0) *
            static_cast<double>(params_.queries_per_round));
        for (int i = 0; i < extra; ++i) {
          issue_query(static_cast<ObjectId>(burst.focus),
                      live_node(burst_traffic));
        }
      }
    }

    round_end += params_.round_time;
    sim.run_until(round_end);
    // Group-commit point: one fsync covers the whole round's records.
    if (store) store->commit();

    // Mid-run quiescence point: once the schedule leaves no cut open at
    // the halfway mark, drain and audit before resuming the storm.
    if (open.empty() && round == params_.rounds / 2) {
      sim.run(params_.max_sim_events);
      if (!check_quiescent(round) || !adaptive_epoch(round)) {
        finalize();
        return report;
      }
      // Snapshot-triggered compaction at a settled point: the journal
      // shrinks back to the suffix since here.
      if (store) {
        store->write_snapshot(*net_.graph, *net_.hierarchy,
                              dist->export_durable_image());
      }
      // The drain ran arbitrarily far past the round grid (long
      // retransmission backoffs); re-base so later rounds still execute.
      round_end = std::max(round_end, sim.now());
    }
  }

  // Every partition heals; drain to the final quiescence point.
  for (const OpenCut& cut : open) channel.heal_now(cut.id);
  open.clear();
  sim.run(params_.max_sim_events);
  check_quiescent(-1);
  finalize();
  return report;
}

ShrinkOutcome ChaosRunner::shrink(const ChaosSchedule& failing) {
  ShrinkOutcome out;
  out.schedule = failing;
  // Greedy ddmin at granularity one: delete any single event whose
  // removal keeps the schedule failing; repeat to a fixed point. The
  // traffic and channel streams derive from the seed alone, so removing
  // an event replays everything else bit-identically.
  bool progress = true;
  while (progress && out.schedule.events.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < out.schedule.events.size(); ++i) {
      ChaosSchedule candidate = out.schedule;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      ++out.probes;
      if (!run(candidate).ok()) {
        out.schedule = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return out;
}

ExplorerOutcome ChaosRunner::explore(std::uint64_t first_seed,
                                     std::uint64_t last_seed) {
  ExplorerOutcome out;
  ScheduleParams sp;
  sp.rounds = params_.rounds;
  sp.num_events = params_.events_per_schedule;
  sp.num_nodes = net_.num_nodes();
  sp.burst_events = params_.burst_events;
  sp.restart_events = params_.restart_events;
  sp.correlated_events = params_.correlated_events;
  for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    ++out.seeds_run;
    ChaosSchedule schedule = generate_schedule(seed, sp);
    if (!run(schedule).ok()) {
      out.violation_found = true;
      out.seed = seed;
      out.schedule = std::move(schedule);
      out.shrunk = shrink(out.schedule).schedule;
      out.report = run(out.shrunk);
      MOT_CHECK(!out.report.ok());  // the repro must replay
      break;
    }
    if (seed == last_seed) break;  // avoid wrap at UINT64_MAX
  }
  out.total_runs = runs_;
  return out;
}

}  // namespace mot::chaos
