#include "chaos/churn.hpp"

#include <algorithm>

#include "core/dynamic.hpp"
#include "tracking/chain_tracker.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot::chaos {

ChurnReport run_churn(const ChaosNet& net, const ChurnParams& params) {
  MOT_EXPECTS(params.num_objects > 0);
  ChurnReport report;
  const std::size_t n = net.num_nodes();
  const std::size_t departed_cap = std::max<std::size_t>(1, n / 5);

  ChainTracker tracker("chaos-churn", *net.provider, net.chain_options);
  DynamicClusterSet::Params dyn_params;
  dyn_params.seed = params.seed;
  DynamicClusterSet clusters(*net.hierarchy, dyn_params);

  std::vector<bool> present(n, true);
  std::vector<NodeId> departed;
  std::vector<NodeId> position(params.num_objects, kInvalidNode);

  const SeedTree seeds(params.seed);
  auto present_node = [&](Rng& rng) {
    for (;;) {
      const NodeId v = rng.below(n);
      if (present[v]) return v;
    }
  };
  // A victim is eligible when it is present, does not host the root
  // stop (re-rooting is a hierarchy rebuild, which the paper defers)
  // and no object currently sits there (its proxy would dangle).
  auto eligible_victim = [&](NodeId v) {
    if (!present[v] || v == net.root()) return false;
    return std::find(position.begin(), position.end(), v) ==
           position.end();
  };

  Rng publish_rng = seeds.stream("churn-publish");
  for (ObjectId object = 0; object < params.num_objects; ++object) {
    position[object] = present_node(publish_rng);
    tracker.publish(object, position[object]);
  }

  for (int burst = 0; burst < params.bursts; ++burst) {
    Rng rng = seeds.stream("churn-burst", static_cast<std::uint64_t>(burst));

    for (int i = 0; i < params.churn_per_burst; ++i) {
      const std::uint64_t action = rng.below(3);
      if (action == 2) {  // rejoin the longest-departed node
        if (departed.empty()) {
          ++report.churn_skipped;
          continue;
        }
        const NodeId node = departed.front();
        departed.erase(departed.begin());
        const AdaptabilityReport adapt = clusters.node_joins(node);
        report.cluster_updates += adapt.nodes_updated;
        present[node] = true;
        ++report.rejoins;
        continue;
      }
      const NodeId victim = rng.below(n);
      if (!eligible_victim(victim) || departed.size() >= departed_cap) {
        ++report.churn_skipped;
        continue;
      }
      if (action == 0) {  // graceful leave
        report.entries_repaired += tracker.evacuate_node(victim);
        const AdaptabilityReport adapt = clusters.node_leaves(victim);
        report.cluster_updates += adapt.nodes_updated;
        report.leader_handoffs += adapt.leader_handoffs;
        ++report.leaves;
      } else {  // crash-stop failure
        report.entries_repaired += tracker.crash_node(victim);
        const AdaptabilityReport adapt = clusters.node_crashes(victim);
        report.cluster_updates += adapt.nodes_updated;
        report.leader_handoffs += adapt.leader_handoffs;
        ++report.crashes;
      }
      present[victim] = false;
      departed.push_back(victim);
    }

    for (int i = 0; i < params.moves_per_burst; ++i) {
      const ObjectId object = rng.below(params.num_objects);
      const NodeId target = present_node(rng);
      tracker.move(object, target);
      position[object] = target;
      ++report.moves;
    }
    for (int i = 0; i < params.queries_per_burst; ++i) {
      const ObjectId object = rng.below(params.num_objects);
      const QueryResult result =
          tracker.query(present_node(rng), object);
      ++report.queries;
      if (!result.found || result.proxy != position[object]) {
        report.violations.push_back(
            "burst " + std::to_string(burst) + ": query for object " +
            std::to_string(object) + " answered node " +
            std::to_string(result.found ? result.proxy : kInvalidNode) +
            " but the object is at node " +
            std::to_string(position[object]));
      }
    }

    tracker.validate_all();  // aborts on structural breakage
    for (std::string& line : clusters.validate_membership()) {
      report.violations.push_back("burst " + std::to_string(burst) +
                                  ": " + std::move(line));
    }
  }
  return report;
}

}  // namespace mot::chaos
