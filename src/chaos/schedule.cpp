#include "chaos/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kIsolate:
      return "isolate";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kRestart:
      return "restart";
  }
  MOT_CHECK(false);
  return "?";
}

std::string ChaosSchedule::describe() const {
  std::string out = "seed " + std::to_string(seed);
  for (const FaultEvent& event : events) {
    out += "\n  r" + std::to_string(event.round) + " ";
    out += fault_kind_name(event.kind);
    switch (event.kind) {
      case FaultKind::kCrash:
        out += " node " + std::to_string(event.victim);
        break;
      case FaultKind::kPartition:
        out += " pivot " + std::to_string(event.pivot) + " for " +
               std::to_string(event.duration) + " round(s)";
        break;
      case FaultKind::kIsolate:
        out += " node " + std::to_string(event.victim) + " for " +
               std::to_string(event.duration) + " round(s)";
        break;
      case FaultKind::kBurst:
        out += " focus-draw " + std::to_string(event.victim) + " for " +
               std::to_string(event.duration) + " round(s)";
        break;
      case FaultKind::kRestart:
        out += " after delay " + std::to_string(event.delay);
        break;
    }
  }
  return out;
}

ChaosSchedule generate_schedule(std::uint64_t seed,
                                const ScheduleParams& params) {
  MOT_EXPECTS(params.rounds > 0);
  MOT_EXPECTS(params.num_nodes >= 2);
  ChaosSchedule schedule;
  schedule.seed = seed;
  Rng rng = SeedTree(seed).stream("chaos-schedule");
  for (int i = 0; i < params.num_events; ++i) {
    FaultEvent event;
    const std::uint64_t kind_draw = rng.below(10);
    if (kind_draw < 4) {
      event.kind = FaultKind::kCrash;
    } else if (kind_draw < 8) {
      event.kind = FaultKind::kPartition;
    } else {
      event.kind = FaultKind::kIsolate;
    }
    event.round = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(params.rounds)));
    event.victim = rng.below(params.num_nodes);
    event.pivot = 1 + rng.below(params.num_nodes - 1);
    event.duration = 1 + static_cast<int>(rng.below(3));
    schedule.events.push_back(event);
  }
  // Burst events draw from their own substream, appended before the
  // sort: with burst_events == 0 the legacy schedule is reproduced bit
  // for bit, and enabling bursts never perturbs the crash/partition
  // draws above (stream independence).
  if (params.burst_events > 0) {
    Rng burst_rng = SeedTree(seed).stream("chaos-burst");
    for (int i = 0; i < params.burst_events; ++i) {
      FaultEvent event;
      event.kind = FaultKind::kBurst;
      event.round = static_cast<int>(
          burst_rng.below(static_cast<std::uint64_t>(params.rounds)));
      // The runner maps victim onto an object id (victim % num_objects);
      // drawing a node-range value keeps the event shape uniform.
      event.victim = burst_rng.below(params.num_nodes);
      event.duration = 1 + static_cast<int>(burst_rng.below(2));
      schedule.events.push_back(event);
    }
  }
  // Restart events likewise: their own substream, appended before the
  // sort, so legacy and burst-only schedules replay untouched.
  if (params.restart_events > 0) {
    Rng restart_rng = SeedTree(seed).stream("chaos-restart");
    for (int i = 0; i < params.restart_events; ++i) {
      FaultEvent event;
      event.kind = FaultKind::kRestart;
      event.round = static_cast<int>(
          restart_rng.below(static_cast<std::uint64_t>(params.rounds)));
      event.delay = 1.0 + static_cast<double>(restart_rng.below(16));
      schedule.events.push_back(event);
    }
  }
  // Correlated groups: burst + crash + partition on one round, from
  // their own substream, appended before the sort like the rest — so
  // every pre-existing schedule shape replays untouched, and a group is
  // just three ordinary events the shrinker can take apart.
  if (params.correlated_events > 0) {
    Rng correlated_rng = SeedTree(seed).stream("chaos-correlated");
    for (int i = 0; i < params.correlated_events; ++i) {
      const int round = static_cast<int>(
          correlated_rng.below(static_cast<std::uint64_t>(params.rounds)));
      const int duration = 1 + static_cast<int>(correlated_rng.below(2));
      FaultEvent burst;
      burst.kind = FaultKind::kBurst;
      burst.round = round;
      burst.victim = correlated_rng.below(params.num_nodes);
      burst.duration = duration;
      schedule.events.push_back(burst);
      FaultEvent crash;
      crash.kind = FaultKind::kCrash;
      crash.round = round;
      crash.victim = correlated_rng.below(params.num_nodes);
      schedule.events.push_back(crash);
      FaultEvent partition;
      partition.kind = FaultKind::kPartition;
      partition.round = round;
      partition.pivot = 1 + correlated_rng.below(params.num_nodes - 1);
      partition.duration = duration;
      schedule.events.push_back(partition);
    }
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
  return schedule;
}

}  // namespace mot::chaos
