// Churn driver: a seeded schedule of interleaved node joins, graceful
// leaves, crash-stop failures and rejoins driven through the
// DynamicClusterSet (Section 7 cluster adaptation) and the ChainTracker
// (chain repair via evacuate_node / crash_node) while objects keep
// moving and queries keep firing. After every burst the driver audits
// the tracker's structural invariant (validate_all aborts on breakage),
// the cluster membership index (validate_membership), and that every
// query answered with the object's true position.
//
// Departures are maintenance windows: a departed sensor leaves the
// target pool and its chain entries are repaired away, but the overlay
// address space is unchanged and the node may rejoin later.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/topology.hpp"

namespace mot::chaos {

struct ChurnParams {
  std::uint64_t seed = 1;
  int bursts = 6;
  int churn_per_burst = 2;    // leave/crash/rejoin attempts per burst
  int moves_per_burst = 8;
  int queries_per_burst = 8;
  std::size_t num_objects = 8;
};

struct ChurnReport {
  std::size_t moves = 0;
  std::size_t queries = 0;
  std::size_t leaves = 0;
  std::size_t crashes = 0;
  std::size_t rejoins = 0;
  std::size_t churn_skipped = 0;  // guard-ineligible victims
  std::size_t entries_repaired = 0;  // chain entries evacuated/spliced
  std::size_t cluster_updates = 0;   // de Bruijn relabeling updates
  std::size_t leader_handoffs = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Deterministic for a (net, params) pair.
ChurnReport run_churn(const ChaosNet& net, const ChurnParams& params);

}  // namespace mot::chaos
