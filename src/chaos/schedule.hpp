// Seeded random fault schedules for the chaos explorer. A ChaosSchedule
// is pure data: a seed (which also drives the run's traffic and channel
// randomness) plus a list of timed fault events. (seed, events) fully
// determines a run, so a failing schedule is its own repro, and the
// shrinker can delete events one at a time while replaying the rest
// bit-identically — the traffic streams are derived from the seed, never
// from shared state the events could perturb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mot::chaos {

enum class FaultKind : std::uint8_t {
  kCrash,      // crash-stop one sensor (never heals)
  kPartition,  // cut {id < pivot} from {id >= pivot} for `duration` rounds
  kIsolate,    // cut {victim} from everyone else for `duration` rounds
  kBurst,      // traffic burst on object (victim % num_objects) for
               // `duration` rounds (only generated when
               // ScheduleParams::burst_events > 0)
  kRestart,    // drain to quiescence, then crash-restart the whole
               // runtime: persist, destroy, restore from snapshot +
               // journal, resume after `delay` simulator time (only
               // generated when ScheduleParams::restart_events > 0)
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int round = 0;  // fires before this round's traffic is issued
  NodeId victim = kInvalidNode;  // kCrash / kIsolate target
  NodeId pivot = 1;              // kPartition cut line
  int duration = 1;              // rounds until a cut heals (>= 1)
  double delay = 0.0;            // kRestart downtime before resuming
};

struct ChaosSchedule {
  std::uint64_t seed = 0;  // also seeds traffic + channel streams
  std::vector<FaultEvent> events;

  // One line per event, e.g. "r2 partition pivot 31 for 2 rounds".
  std::string describe() const;
};

struct ScheduleParams {
  int rounds = 6;       // traffic rounds available to place events in
  int num_events = 5;   // fault events per schedule
  std::size_t num_nodes = 64;
  // Extra burst-traffic events appended to the schedule, drawn from a
  // separate SeedTree substream ("chaos-burst") so enabling them never
  // perturbs the crash/partition/isolate draws of existing seeds. 0
  // (the default) keeps legacy schedules bit-identical.
  int burst_events = 0;
  // Crash-restart-replay events, drawn from their own substream
  // ("chaos-restart") under the same contract: 0 keeps every existing
  // schedule bit-identical, and enabling restarts never perturbs the
  // crash / partition / burst draws.
  int restart_events = 0;
  // Correlated failure groups, drawn from the "chaos-correlated"
  // substream. Each group lands a burst + a crash + a partition on the
  // SAME round — the compound condition the adaptive control plane
  // exists for (load spike while capacity and connectivity drop). The
  // group decomposes into three plain events, so describe/replay work
  // unchanged and the shrinker can delete the components independently.
  // 0 keeps every existing schedule bit-identical.
  int correlated_events = 0;
};

// Deterministic: the same (seed, params) always yields the same
// schedule. Victims/pivots are drawn uniformly; eligibility (root, node
// hosting an object, ...) is the runner's job at fire time, so schedules
// stay valid as objects move.
ChaosSchedule generate_schedule(std::uint64_t seed,
                                const ScheduleParams& params);

}  // namespace mot::chaos
