#include "tracking/chain_tracker.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot {

ChainTracker::ChainTracker(std::string name, const PathProvider& provider,
                           const ChainOptions& options)
    : name_(std::move(name)), provider_(&provider), options_(options) {}

Weight ChainTracker::distance(NodeId a, NodeId b) const {
  return provider_->oracle().distance(a, b);
}

void ChainTracker::charge_hop(NodeId from, NodeId to, ObjectId object,
                              obs::Ev kind, std::int32_t level) {
  if (from == to) return;
  const Weight d = distance(from, to);
  meter_.charge(d);
  if (obs::tracing()) {
    obs::emit({.type = kind,
               .object = object,
               .from = from,
               .to = to,
               .level = level,
               .dist = d,
               .charged = d});
  }
}

void ChainTracker::charge_access(OverlayNode owner, ObjectId object) {
  if (!options_.charge_delegate_routing) return;
  const auto access = provider_->delegate(owner, object);
  if (access.route_cost > 0.0) {
    meter_.charge(access.route_cost);
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kAccessRoute,
                 .object = object,
                 .from = owner.node,
                 .to = access.storage,
                 .level = owner.level,
                 .dist = access.route_cost,
                 .charged = access.route_cost});
    }
  }
}

void ChainTracker::add_entry(OverlayNode owner, ObjectId object,
                             OverlayNode child,
                             std::optional<OverlayNode> sp) {
  if (!options_.use_special_lists) sp.reset();
  NodeState& node = state_[owner];
  MOT_CHECK(node.dl.count(object) == 0);
  node.dl.emplace(object, DlEntry{child, sp});
  journal(durable::JournalRecord::make_insert(owner, object, child, sp));
  if (sp) {
    if (options_.charge_special_updates) {
      charge_hop(owner.node, sp->node, object, obs::Ev::kSpHop, sp->level);
      charge_access(*sp, object);
    }
    state_[*sp].sdl[object].push_back(owner);
    journal(durable::JournalRecord::make_sdl_add(*sp, object, owner));
  }
}

void ChainTracker::remove_sdl_record(OverlayNode sp, ObjectId object,
                                     OverlayNode child) {
  auto node_it = state_.find(sp);
  MOT_CHECK(node_it != state_.end());
  auto list_it = node_it->second.sdl.find(object);
  MOT_CHECK(list_it != node_it->second.sdl.end());
  auto& children = list_it->second;
  const auto pos = std::find(children.begin(), children.end(), child);
  MOT_CHECK(pos != children.end());
  children.erase(pos);
  if (children.empty()) node_it->second.sdl.erase(list_it);
  journal(durable::JournalRecord::make_sdl_remove(sp, object, child));
}

void ChainTracker::publish(ObjectId object, NodeId proxy) {
  MOT_EXPECTS(proxy < provider_->num_nodes());
  MOT_EXPECTS(!is_published(object));
  MOT_SPAN("publish", object);
  const auto sequence = provider_->upward_sequence(proxy);
  MOT_CHECK(!sequence.empty() && sequence.front().node.node == proxy);

  // The bottom entry is the proxy sentinel: its child points to itself.
  const OverlayNode bottom = sequence.front().node;
  charge_access(bottom, object);
  add_entry(bottom, object, bottom, provider_->special_parent(proxy, 0));

  OverlayNode previous = bottom;
  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const OverlayNode stop = sequence[i].node;
    charge_hop(previous.node, stop.node, object, obs::Ev::kClimbHop,
               stop.level);
    charge_access(stop, object);
    add_entry(stop, object, previous, provider_->special_parent(proxy, i));
    previous = stop;
  }
  proxies_[object] = proxy;
  journal(durable::JournalRecord::make_publish(object, proxy));
}

MoveResult ChainTracker::move(ObjectId object, NodeId new_proxy) {
  MOT_EXPECTS(new_proxy < provider_->num_nodes());
  MOT_EXPECTS(is_published(object));
  const NodeId old_proxy = proxies_[object];
  if (new_proxy == old_proxy) return {};
  MOT_SPAN("move", object);

  const CostWindow window(meter_);
  const auto sequence = provider_->upward_sequence(new_proxy);

  MoveResult result;
  const OverlayNode bottom = sequence.front().node;
  charge_access(bottom, object);
  bool met = false;
  if (auto bottom_state = state_.find(bottom); bottom_state != state_.end()) {
    if (auto dl_it = bottom_state->second.dl.find(object);
        dl_it != bottom_state->second.dl.end()) {
      // The chain already passes through the new proxy (it is an ancestor
      // of the old one, possible in tree structures): splice here — the
      // entry becomes the proxy sentinel — and tear the fragment below.
      MOT_CHECK(dl_it->second.child != bottom);  // to != old proxy
      const OverlayNode first_victim = dl_it->second.child;
      dl_it->second.child = bottom;
      journal(durable::JournalRecord::make_splice(bottom, object, bottom));
      result.peak_level = bottom.level;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kSplice,
                   .object = object,
                   .from = bottom.node,
                   .level = bottom.level});
      }
      delete_fragment(bottom, first_victim, object);
      met = true;
    }
  }
  if (!met) {
    add_entry(bottom, object, bottom,
              provider_->special_parent(new_proxy, 0));
  }
  OverlayNode previous = bottom;
  for (std::size_t i = 1; i < sequence.size() && !met; ++i) {
    const OverlayNode stop = sequence[i].node;
    charge_hop(previous.node, stop.node, object, obs::Ev::kClimbHop,
               stop.level);
    charge_access(stop, object);
    auto node_it = state_.find(stop);
    if (node_it != state_.end()) {
      if (auto dl_it = node_it->second.dl.find(object);
          dl_it != node_it->second.dl.end()) {
        // Meet node w: splice the chain onto the new fragment and erase
        // the detached old fragment below. If the meet entry is the old
        // proxy's sentinel (the object moved to a structural descendant),
        // there is no fragment to tear.
        const OverlayNode first_victim = dl_it->second.child;
        dl_it->second.child = previous;
        journal(durable::JournalRecord::make_splice(stop, object, previous));
        result.peak_level = stop.level;
        if (obs::tracing()) {
          obs::emit({.type = obs::Ev::kSplice,
                     .object = object,
                     .from = stop.node,
                     .level = stop.level});
        }
        if (first_victim != stop) {
          delete_fragment(stop, first_victim, object);
        }
        met = true;
      }
    }
    if (!met) {
      add_entry(stop, object, previous,
                provider_->special_parent(new_proxy, i));
      previous = stop;
    }
  }
  // The root always holds every published object, so the walk must meet.
  MOT_CHECK(met);
  proxies_[object] = new_proxy;
  // kPublish rather than kProxy: in this engine the proxy map is also
  // the physical position map, and kPublish updates both on replay.
  journal(durable::JournalRecord::make_publish(object, new_proxy));
  result.cost = window.cost();
  return result;
}

void ChainTracker::delete_fragment(OverlayNode meet, OverlayNode first_victim,
                                   ObjectId object) {
  NodeId previous_physical = meet.node;
  OverlayNode current = first_victim;
  while (true) {
    charge_hop(previous_physical, current.node, object, obs::Ev::kDeleteHop,
               current.level);
    charge_access(current, object);
    auto node_it = state_.find(current);
    MOT_CHECK(node_it != state_.end());
    auto dl_it = node_it->second.dl.find(object);
    MOT_CHECK(dl_it != node_it->second.dl.end());
    const DlEntry entry = dl_it->second;
    node_it->second.dl.erase(dl_it);
    journal(durable::JournalRecord::make_delete(current, object));
    if (entry.sp) {
      if (options_.charge_special_updates) {
        charge_hop(current.node, entry.sp->node, object, obs::Ev::kSpHop,
                   entry.sp->level);
        charge_access(*entry.sp, object);
      }
      remove_sdl_record(*entry.sp, object, current);
    }
    if (entry.child == current) break;  // reached the old proxy sentinel
    previous_physical = current.node;
    current = entry.child;
  }
}

NodeId ChainTracker::descend(OverlayNode start, ObjectId object) {
  if (options_.shortcut_descent) {
    // A shortcut pointer gives the discovering node the proxy's address:
    // the result message travels the direct distance only.
    OverlayNode current = start;
    while (true) {
      const auto& entry = state_.at(current).dl.at(object);
      if (entry.child == current) break;  // proxy sentinel
      current = entry.child;
    }
    charge_hop(start.node, current.node, object, obs::Ev::kDescendHop,
               start.level);
    return current.node;
  }
  OverlayNode current = start;
  while (true) {
    const auto& entry = state_.at(current).dl.at(object);
    if (entry.child == current) break;  // proxy sentinel
    charge_hop(current.node, entry.child.node, object, obs::Ev::kDescendHop,
               entry.child.level);
    charge_access(entry.child, object);
    current = entry.child;
  }
  return current.node;
}

QueryResult ChainTracker::query(NodeId from, ObjectId object) {
  MOT_EXPECTS(from < provider_->num_nodes());
  MOT_EXPECTS(is_published(object));
  MOT_SPAN("query", object);
  const CostWindow window(meter_);
  const auto sequence = provider_->upward_sequence(from);

  QueryResult result;
  NodeId previous_physical = from;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const OverlayNode stop = sequence[i].node;
    if (i > 0) {
      charge_hop(previous_physical, stop.node, object, obs::Ev::kClimbHop,
                 stop.level);
      previous_physical = stop.node;
    }
    charge_access(stop, object);
    const auto node_it = state_.find(stop);
    if (node_it == state_.end()) continue;
    if (const auto dl_it = node_it->second.dl.find(object);
        dl_it != node_it->second.dl.end()) {
      result.found = true;
      result.found_level = stop.level;
      ++query_stats_.dl_hits;
      result.proxy = descend(stop, object);
      break;
    }
    if (options_.use_special_lists) {
      if (const auto sdl_it = node_it->second.sdl.find(object);
          sdl_it != node_it->second.sdl.end() && !sdl_it->second.empty()) {
        // Jump to the lowest-level special child: it is the chain node
        // closest to the object.
        const auto best = std::min_element(
            sdl_it->second.begin(), sdl_it->second.end(),
            [](const OverlayNode& a, const OverlayNode& b) {
              return a.level < b.level;
            });
        result.found = true;
        result.found_level = stop.level;
        ++query_stats_.sdl_hits;
        charge_hop(stop.node, best->node, object, obs::Ev::kSdlJump,
                   best->level);
        charge_access(*best, object);
        result.proxy = descend(*best, object);
        break;
      }
    }
  }
  // The root stop ends every sequence and holds every object.
  MOT_CHECK(result.found);
  MOT_CHECK(result.proxy == proxies_.at(object));
  result.cost = window.cost();
  return result;
}

NodeId ChainTracker::proxy_of(ObjectId object) const {
  const auto it = proxies_.find(object);
  MOT_EXPECTS(it != proxies_.end());
  return it->second;
}

std::vector<std::size_t> ChainTracker::load_per_node() const {
  std::vector<std::size_t> load(provider_->num_nodes(), 0);
  for (const auto& [owner, node] : state_) {
    for (const auto& [object, entry] : node.dl) {
      load[provider_->delegate(owner, object).storage] += 1;
    }
    for (const auto& [object, children] : node.sdl) {
      load[provider_->delegate(owner, object).storage] += children.size();
    }
  }
  return load;
}

std::size_t ChainTracker::dl_entries(ObjectId object) const {
  std::size_t count = 0;
  for (const auto& [owner, node] : state_) {
    count += node.dl.count(object);
  }
  return count;
}

std::size_t ChainTracker::sdl_entries(ObjectId object) const {
  std::size_t count = 0;
  for (const auto& [owner, node] : state_) {
    const auto it = node.sdl.find(object);
    if (it != node.sdl.end()) count += it->second.size();
  }
  return count;
}

bool ChainTracker::node_has_dl(OverlayNode owner, ObjectId object) const {
  const auto it = state_.find(owner);
  return it != state_.end() && it->second.dl.count(object) != 0;
}

std::size_t ChainTracker::evacuate_node(NodeId node) {
  MOT_EXPECTS(node < provider_->num_nodes());
  MOT_EXPECTS(provider_->root_stop().node != node);
  for (const auto& [object, proxy] : proxies_) {
    (void)object;
    MOT_EXPECTS(proxy != node);  // move objects off the node first
  }

  // Collect the node's overlay roles that hold state.
  std::vector<OverlayNode> roles;
  for (const auto& [owner, state] : state_) {
    (void)state;
    if (owner.node == node) roles.push_back(owner);
  }

  std::size_t evacuated = 0;
  for (const OverlayNode& role : roles) {
    NodeState& state = state_.at(role);
    // 1. Bypass every chain entry hosted here: find the chain parent (the
    //    unique entry pointing at this role) and splice it to our child.
    for (const auto& [object, entry] : state.dl) {
      OverlayNode parent = {0, kInvalidNode};
      bool found_parent = false;
      for (auto& [owner, other] : state_) {
        if (owner == role) continue;
        const auto it = other.dl.find(object);
        if (it != other.dl.end() && it->second.child == role) {
          parent = owner;
          found_parent = true;
          // The parent's repair message travels to the bypassed child.
          it->second.child = entry.child;
          journal(durable::JournalRecord::make_splice(owner, object,
                                                      entry.child));
          charge_hop(owner.node, entry.child.node, object, obs::Ev::kRepairHop,
                     entry.child.level);
          break;
        }
      }
      MOT_CHECK(found_parent);  // a non-root chain entry has a parent
      (void)parent;
      // 2. Drop our SDL registration at our special parent.
      if (entry.sp) {
        charge_hop(role.node, entry.sp->node, object, obs::Ev::kRepairHop,
                   entry.sp->level);
        remove_sdl_record(*entry.sp, object, role);
      }
      ++evacuated;
    }
    // 3. Special-list records hosted here would dangle: clear the back
    //    pointers of the children that registered with us.
    for (const auto& [object, children] : state.sdl) {
      for (const OverlayNode& child : children) {
        auto child_state = state_.find(child);
        MOT_CHECK(child_state != state_.end());
        auto dl_it = child_state->second.dl.find(object);
        MOT_CHECK(dl_it != child_state->second.dl.end());
        MOT_CHECK(dl_it->second.sp.has_value() && *dl_it->second.sp == role);
        dl_it->second.sp.reset();
        journal(durable::JournalRecord::make_sp_clear(child, object));
        charge_hop(role.node, child.node, object, obs::Ev::kRepairHop,
                   child.level);
      }
    }
    state_.erase(role);
    journal(durable::JournalRecord::make_wipe_role(role));
  }
  return evacuated;
}

std::size_t ChainTracker::crash_node(NodeId node) {
  MOT_EXPECTS(node < provider_->num_nodes());
  MOT_EXPECTS(provider_->root_stop().node != node);
  for (const auto& [object, proxy] : proxies_) {
    (void)object;
    MOT_EXPECTS(proxy != node);  // objects sit on surviving sensors
  }

  std::vector<OverlayNode> roles;
  for (const auto& [owner, state] : state_) {
    (void)state;
    if (owner.node == node) roles.push_back(owner);
  }

  std::size_t repaired = 0;
  for (const OverlayNode& role : roles) {
    NodeState& state = state_.at(role);
    for (const auto& [object, entry] : state.dl) {
      bool found_parent = false;
      for (auto& [owner, other] : state_) {
        if (owner == role) continue;
        const auto it = other.dl.find(object);
        if (it != other.dl.end() && it->second.child == role) {
          found_parent = true;
          it->second.child = entry.child;
          journal(durable::JournalRecord::make_splice(owner, object,
                                                      entry.child));
          // The surviving parent pays the repair hop to the bypassed
          // child; the dead node itself sends nothing.
          charge_hop(owner.node, entry.child.node, object, obs::Ev::kRepairHop,
                     entry.child.level);
          break;
        }
      }
      MOT_CHECK(found_parent);  // a non-root chain entry has a parent
      // The special parent clears the dead child's record locally when
      // the failure is announced — no message from the dead node.
      if (entry.sp) remove_sdl_record(*entry.sp, object, role);
      ++repaired;
    }
    for (const auto& [object, children] : state.sdl) {
      for (const OverlayNode& child : children) {
        auto child_state = state_.find(child);
        MOT_CHECK(child_state != state_.end());
        auto dl_it = child_state->second.dl.find(object);
        MOT_CHECK(dl_it != child_state->second.dl.end());
        MOT_CHECK(dl_it->second.sp.has_value() && *dl_it->second.sp == role);
        dl_it->second.sp.reset();
        journal(durable::JournalRecord::make_sp_clear(child, object));
      }
    }
    state_.erase(role);
    journal(durable::JournalRecord::make_wipe_role(role));
  }
  return repaired;
}

durable::StateImage ChainTracker::export_durable_image() const {
  durable::StateImage image;
  image.roles.reserve(state_.size());
  for (const auto& [owner, node] : state_) {
    durable::RoleImage role;
    role.role = owner;
    for (const auto& [object, entry] : node.dl) {
      role.dl.push_back({object, entry.child, entry.sp});
    }
    for (const auto& [object, children] : node.sdl) {
      if (children.empty()) continue;
      role.sdl.push_back({object, children});
    }
    if (role.dl.empty() && role.sdl.empty()) continue;
    // Canonical order: the FlatMap / hash-map iteration order above
    // depends on insertion history, which is not observable state.
    std::sort(role.dl.begin(), role.dl.end(),
              [](const auto& a, const auto& b) { return a.object < b.object; });
    std::sort(role.sdl.begin(), role.sdl.end(),
              [](const auto& a, const auto& b) { return a.object < b.object; });
    image.roles.push_back(std::move(role));
  }
  std::sort(image.roles.begin(), image.roles.end(),
            [](const durable::RoleImage& a, const durable::RoleImage& b) {
              return std::pair(a.role.node, a.role.level) <
                     std::pair(b.role.node, b.role.level);
            });
  for (const auto& [object, proxy] : proxies_) {
    image.proxies.emplace_back(object, proxy);
  }
  std::sort(image.proxies.begin(), image.proxies.end());
  image.physical = image.proxies;  // sequential engine: no in-flight moves
  return image;
}

void ChainTracker::restore_durable_image(const durable::StateImage& image) {
  state_.clear();
  proxies_.clear();
  for (const durable::RoleImage& role : image.roles) {
    NodeState& node = state_[role.role];
    for (const auto& entry : role.dl) {
      node.dl.emplace(entry.object, DlEntry{entry.child, entry.sp});
    }
    for (const auto& entry : role.sdl) {
      node.sdl.emplace(entry.object, entry.children);
    }
  }
  for (const auto& [object, proxy] : image.proxies) {
    proxies_[object] = proxy;
  }
}

void ChainTracker::validate(ObjectId object) const {
  MOT_EXPECTS(is_published(object));
  // 1. Chain: root -> proxy via child pointers, every hop present.
  const OverlayNode root = provider_->root_stop();
  OverlayNode current = root;
  std::size_t chain_length = 0;
  const std::size_t limit = dl_entries(object) + 1;
  while (true) {
    MOT_CHECK(chain_length < limit);  // no cycles
    const auto node_it = state_.find(current);
    MOT_CHECK(node_it != state_.end());
    const auto dl_it = node_it->second.dl.find(object);
    MOT_CHECK(dl_it != node_it->second.dl.end());
    ++chain_length;
    if (dl_it->second.child == current) {  // proxy sentinel
      MOT_CHECK(current.node == proxies_.at(object));
      break;
    }
    current = dl_it->second.child;
  }
  // 2. No orphan entries: every DL entry for the object is on the chain.
  MOT_CHECK(chain_length == dl_entries(object));
  // 3. DL <-> SDL cross-references agree.
  std::size_t sp_links = 0;
  for (const auto& [owner, node] : state_) {
    const auto dl_it = node.dl.find(object);
    if (dl_it != node.dl.end() && dl_it->second.sp) {
      ++sp_links;
      const auto sp_it = state_.find(*dl_it->second.sp);
      MOT_CHECK(sp_it != state_.end());
      const auto sdl_it = sp_it->second.sdl.find(object);
      MOT_CHECK(sdl_it != sp_it->second.sdl.end());
      MOT_CHECK(std::find(sdl_it->second.begin(), sdl_it->second.end(),
                          owner) != sdl_it->second.end());
    }
  }
  MOT_CHECK(sp_links == sdl_entries(object));
}

void ChainTracker::validate_all() const {
  for (const auto& [object, proxy] : proxies_) {
    (void)proxy;
    validate(object);
  }
}

}  // namespace mot
