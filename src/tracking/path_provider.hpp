// PathProvider abstracts "the structure a detection message climbs".
//
// Every tracking algorithm in this library — MOT over either hierarchy,
// and the spanning-tree baselines — maintains, per object, a chain of
// detection-list entries from the root down to the proxy, and serves
// operations by climbing a node-specific upward visit sequence until the
// chain is met. The provider supplies that sequence plus the
// algorithm-specific extras:
//   * special parents (MOT's SDL mechanism, Definition 3);
//   * storage delegation (MOT's Section 5 load balancing, where an
//     internal node's list entry physically lives on a hashed cluster
//     member reached over the embedded de Bruijn graph).
#pragma once

#include <optional>
#include <span>

#include "graph/distance_oracle.hpp"
#include "hier/hierarchy.hpp"
#include "tracking/tracker.hpp"

namespace mot {

struct PathStop {
  OverlayNode node;
  // Index within the stop's level group (used to pick special parents).
  std::uint32_t rank = 0;
};

class PathProvider {
 public:
  virtual ~PathProvider() = default;

  // Upward visit sequence of bottom node u: element 0 is {level 0, u},
  // the last element is the root stop. The span stays valid for the
  // provider's lifetime.
  virtual std::span<const PathStop> upward_sequence(NodeId u) const = 0;

  // Special parent of the stop at `index` within u's sequence, or nullopt
  // when undefined (near the root) or unsupported (tree baselines).
  virtual std::optional<OverlayNode> special_parent(
      NodeId u, std::size_t index) const = 0;

  // Where `owner`'s entry for `object` physically lives, and the routing
  // cost of reaching that storage from owner.node (0 when local).
  struct DelegateAccess {
    NodeId storage = kInvalidNode;
    Weight route_cost = 0.0;
  };
  virtual DelegateAccess delegate(OverlayNode owner,
                                  ObjectId object) const = 0;

  virtual OverlayNode root_stop() const = 0;
  virtual const DistanceOracle& oracle() const = 0;
  virtual std::size_t num_nodes() const = 0;
};

}  // namespace mot
