// The tracking-algorithm interface the experiment harness drives.
//
// Operation model (Section 1.1 of the paper):
//   * publish(o, v)  — one-time initialization: v becomes o's proxy and
//     the structure records o along v's path to the root;
//   * move(o, v)     — a maintenance operation: o moved from its current
//     proxy to v; optimal cost is dist_G(old proxy, v);
//   * query(u, o)    — locate o's proxy from node u; optimal cost is
//     dist_G(u, proxy).
// Cost is communication cost: total distance traversed by all messages
// of the operation, accumulated on the tracker's CostMeter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/cost_meter.hpp"

namespace mot {

using ObjectId = std::uint32_t;

struct MoveResult {
  Weight cost = 0.0;   // communication cost of this maintenance operation
  int peak_level = 0;  // highest overlay level the operation reached
};

struct QueryResult {
  bool found = false;
  NodeId proxy = kInvalidNode;  // proxy the query located
  Weight cost = 0.0;            // communication cost of the query
  int found_level = 0;          // level where the object was discovered
  // Graceful degradation (overload resilience): an overloaded node may
  // answer from its last-known detection entry instead of forwarding.
  // The answer is then explicitly flagged and bounded — the object moved
  // at most staleness_bound distance since the entry was written.
  bool degraded = false;
  Weight staleness_bound = 0.0;
};

class Tracker {
 public:
  virtual ~Tracker() = default;

  virtual std::string name() const = 0;

  virtual void publish(ObjectId object, NodeId proxy) = 0;
  virtual MoveResult move(ObjectId object, NodeId new_proxy) = 0;
  virtual QueryResult query(NodeId from, ObjectId object) = 0;

  virtual NodeId proxy_of(ObjectId object) const = 0;

  // Storage load per physical node: objects plus bookkeeping entries
  // (detection-list, special-list and pointer records) hosted there.
  virtual std::vector<std::size_t> load_per_node() const = 0;

  virtual const CostMeter& meter() const = 0;
};

}  // namespace mot
