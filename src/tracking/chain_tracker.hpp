// The sequential (one-by-one execution) tracking engine: Algorithm 1 of
// the paper, generalized over a PathProvider so the same verified engine
// serves MOT (doubling or general hierarchy, with or without load
// balancing) and the spanning-tree baselines.
//
// Invariant maintained for every published object o (checked by
// validate()): the overlay nodes holding a detection-list entry for o
// form exactly one chain of child pointers from the root stop down to
// o's current proxy. move() splices the chain at the meet node (the
// lowest stop of the new proxy's sequence already on the chain) and
// deletes the detached old fragment; query() climbs until it sees the
// chain (directly via DL or via a special-parent SDL record) and then
// descends it.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "durable/journal.hpp"
#include "durable/snapshot.hpp"
#include "obs/trace.hpp"
#include "tracking/path_provider.hpp"
#include "tracking/tracker.hpp"
#include "util/flat_map.hpp"

namespace mot {

struct ChainOptions {
  // Maintain special detection lists (MOT's SDL, Definition 3) so queries
  // escape detection-path fragmentation. Requires the provider to define
  // special parents.
  bool use_special_lists = false;
  // Query descent jumps straight from the discovering node to the proxy
  // (the Z-DAT + shortcuts behaviour) instead of walking the chain.
  bool shortcut_descent = false;
  // Charge the provider's delegate routing cost on every entry access
  // (MOT-LB's de Bruijn hops). Off models free local storage.
  bool charge_delegate_routing = true;
  // Charge the hops that keep special-parent SDL records up to date. The
  // paper's analysis excludes them (constant factor); measurements are
  // more honest with them included.
  bool charge_special_updates = true;
  // Section 3's "improved algorithm": delete messages leave a forwarding
  // pointer (the object's new location) at every node they clear, so an
  // overlapping query that finds its descent torn redirects immediately
  // instead of re-climbing — and never needs to reach the incorrect proxy.
  // Only meaningful for the concurrent engine; the sequential engine has
  // no overlap.
  bool forwarding_pointers = false;
};

class ChainTracker final : public Tracker {
 public:
  // `provider` must outlive the tracker.
  ChainTracker(std::string name, const PathProvider& provider,
               const ChainOptions& options);

  std::string name() const override { return name_; }
  void publish(ObjectId object, NodeId proxy) override;
  MoveResult move(ObjectId object, NodeId new_proxy) override;
  QueryResult query(NodeId from, ObjectId object) override;
  NodeId proxy_of(ObjectId object) const override;
  std::vector<std::size_t> load_per_node() const override;
  const CostMeter& meter() const override { return meter_; }

  bool is_published(ObjectId object) const {
    return proxies_.count(object) != 0;
  }

  // Gracefully retires a sensor (Section 7: nodes announce departures).
  // Every chain entry hosted at any of the node's overlay roles is
  // bypassed — its chain parent is spliced straight to its child — and
  // its special-list records are dropped (the pointers would dangle).
  // Preconditions: no object is proxied at the node, and the node does
  // not host the root stop (re-rooting is a hierarchy rebuild, which the
  // paper defers past a threshold). Returns the number of entries
  // evacuated; repair messages are charged to the meter.
  std::size_t evacuate_node(NodeId node);

  // Crash-stop variant of evacuate_node: the sensor dies without sending
  // anything, so survivors do all the repair. Chain parents splice around
  // the dead roles (paying the repair hop); dangling SDL cross-references
  // are cleared locally by their owners once the failure is announced, at
  // no message cost from the dead node. Same preconditions as
  // evacuate_node. Returns the number of chain entries repaired.
  std::size_t crash_node(NodeId node);

  // Structural self-check of the per-object chain invariant and the
  // DL <-> SDL cross-references. Aborts (contract failure) on violation.
  void validate(ObjectId object) const;
  void validate_all() const;

  // Introspection for tests.
  std::size_t dl_entries(ObjectId object) const;
  std::size_t sdl_entries(ObjectId object) const;
  bool node_has_dl(OverlayNode owner, ObjectId object) const;

  // Opt-in durability: every effective DL/SDL/chain mutation is handed
  // to `sink` as a semantic journal record. Off by default; a null sink
  // switches it off again. The journaling path does no work besides the
  // sink call, so disabled runs are bit-identical to pre-durability
  // builds. `sink` must outlive the tracker (or be detached first).
  void use_durability(durable::Sink* sink) { durable_ = sink; }

  // Canonical image of the DL/SDL/proxy state (durable/snapshot.hpp).
  // physical == proxies for this engine: the sequential tracker has no
  // in-flight moves, so the proxy map *is* the physical position map.
  durable::StateImage export_durable_image() const;

  // Replaces all tracking state with `image` (restore path). Meter and
  // query stats are not part of durable state and are left untouched.
  void restore_durable_image(const durable::StateImage& image);

  // How queries discovered their objects (ablation A2 reporting).
  struct QueryStats {
    std::uint64_t dl_hits = 0;   // found via a detection list
    std::uint64_t sdl_hits = 0;  // found via a special detection list
  };
  const QueryStats& query_stats() const { return query_stats_; }

 private:
  struct DlEntry {
    OverlayNode child;                 // next chain node toward the proxy
    std::optional<OverlayNode> sp;     // special parent holding our SDL record
  };
  struct NodeState {
    // Flat open-addressed storage: the dl is probed on every climb hop,
    // so entries live densely (see util/flat_map.hpp).
    FlatMap<ObjectId, DlEntry> dl;
    // SDL: object -> special children (DL holders) that registered here.
    std::unordered_map<ObjectId, std::vector<OverlayNode>> sdl;
  };

  Weight distance(NodeId a, NodeId b) const;
  // Charges one message hop and, when a trace sink is installed, emits
  // an event of kind `kind` attributed to `object` (level optional).
  void charge_hop(NodeId from, NodeId to, ObjectId object, obs::Ev kind,
                  std::int32_t level = -1);
  // Charges the delegate route for touching `owner`'s entry store.
  void charge_access(OverlayNode owner, ObjectId object);

  void add_entry(OverlayNode owner, ObjectId object, OverlayNode child,
                 std::optional<OverlayNode> sp);
  void remove_sdl_record(OverlayNode sp, ObjectId object, OverlayNode child);

  // Removes the chain fragment hanging below `meet` whose top is
  // `first_victim`, charging message hops from meet downwards.
  void delete_fragment(OverlayNode meet, OverlayNode first_victim,
                       ObjectId object);

  // Follows chain pointers from `start` (which must hold a DL entry for
  // `object`) down to the proxy. Charges per-hop unless shortcutting.
  NodeId descend(OverlayNode start, ObjectId object);

  // Forwards one semantic op to the durability sink, if attached.
  void journal(const durable::JournalRecord& record) {
    if (durable_ != nullptr) durable_->record(record);
  }

  std::string name_;
  const PathProvider* provider_;
  ChainOptions options_;
  CostMeter meter_;
  durable::Sink* durable_ = nullptr;

  std::unordered_map<OverlayNode, NodeState, OverlayNodeHash> state_;
  std::unordered_map<ObjectId, NodeId> proxies_;
  QueryStats query_stats_;
};

}  // namespace mot
