// Physical packet routing over the sensor graph.
//
// The paper's cost model assumes that a message between two overlay
// nodes costs their shortest-path distance — i.e., that the network's
// routing layer realizes (near-)shortest paths. This module supplies that
// layer, so the assumption is substantiated rather than postulated:
//
//   * ShortestPathRouter — classic next-hop tables derived from SSSP
//     trees (what a converged distance-vector/link-state protocol
//     yields). Stretch is exactly 1 by construction.
//   * GreedyGeographicRouter — the standard stateless sensor-network
//     scheme (GPSR's greedy mode): forward to the neighbor geographically
//     closest to the destination; fails at local minima ("voids").
//     Needs node positions; stretch and failure rate are measurable.
//
// Routers return the full physical hop sequence, so a simulator can
// charge per-edge traversals; route_cost() sums the edge weights.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mot {

class Router {
 public:
  virtual ~Router() = default;

  // Physical node sequence from `from` to `to`, both inclusive. An empty
  // vector means the router failed (possible for greedy routing).
  virtual std::vector<NodeId> route(NodeId from, NodeId to) const = 0;

  virtual std::string name() const = 0;
};

// Sum of edge weights along a route (0 for empty/self routes). Aborts if
// consecutive hops are not graph neighbors.
Weight route_cost(const Graph& graph, const std::vector<NodeId>& route);

// Next-hop forwarding along shortest-path trees, one SSSP per destination
// computed lazily and cached (the converged-routing-protocol model).
class ShortestPathRouter final : public Router {
 public:
  explicit ShortestPathRouter(const Graph& graph);

  std::vector<NodeId> route(NodeId from, NodeId to) const override;
  std::string name() const override { return "shortest-path"; }

  std::size_t cached_destinations() const { return parents_.size(); }

 private:
  const Graph* graph_;
  // parent-toward-destination per destination (SSSP tree parents).
  mutable std::unordered_map<NodeId, std::vector<NodeId>> parents_;
};

// Stateless greedy geographic forwarding. Each hop strictly decreases the
// Euclidean distance to the destination or the packet is dropped (local
// minimum / void). Requires an embedded graph.
class GreedyGeographicRouter final : public Router {
 public:
  explicit GreedyGeographicRouter(const Graph& graph);

  std::vector<NodeId> route(NodeId from, NodeId to) const override;
  std::string name() const override { return "greedy-geographic"; }

 private:
  double euclidean(NodeId a, NodeId b) const;
  const Graph* graph_;
};

// Empirical routing quality over random source/destination pairs.
struct RouteStretch {
  double mean_stretch = 0.0;  // route cost / shortest-path distance
  double max_stretch = 0.0;
  std::size_t delivered = 0;
  std::size_t failed = 0;     // dropped (greedy voids)

  double delivery_rate() const {
    const std::size_t total = delivered + failed;
    return total == 0 ? 0.0
                      : static_cast<double>(delivered) /
                            static_cast<double>(total);
  }
};

RouteStretch measure_stretch(const Graph& graph,
                             const DistanceOracle& oracle,
                             const Router& router, Rng& rng,
                             std::size_t samples);

}  // namespace mot
