#include "net/router.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mot {

Weight route_cost(const Graph& graph, const std::vector<NodeId>& route) {
  Weight cost = 0.0;
  for (std::size_t i = 1; i < route.size(); ++i) {
    const Weight w = graph.edge_weight(route[i - 1], route[i]);
    MOT_CHECK(w != kInfiniteDistance);  // hops must follow real edges
    cost += w;
  }
  return cost;
}

ShortestPathRouter::ShortestPathRouter(const Graph& graph)
    : graph_(&graph) {}

std::vector<NodeId> ShortestPathRouter::route(NodeId from, NodeId to) const {
  MOT_EXPECTS(from < graph_->num_nodes() && to < graph_->num_nodes());
  if (from == to) return {from};
  auto it = parents_.find(to);
  if (it == parents_.end()) {
    // One SSSP rooted at the destination gives every node its next hop
    // toward it (the tree parent).
    ShortestPathTree tree = has_unit_weights(*graph_)
                                ? bfs_unit(*graph_, to)
                                : dijkstra(*graph_, to);
    it = parents_.emplace(to, std::move(tree.parent)).first;
  }
  const std::vector<NodeId>& next_hop = it->second;
  std::vector<NodeId> path{from};
  NodeId at = from;
  while (at != to) {
    MOT_CHECK(next_hop[at] != kInvalidNode);  // connected graph
    at = next_hop[at];
    path.push_back(at);
    MOT_CHECK(path.size() <= graph_->num_nodes());
  }
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kRouteComputed,
               .from = from,
               .to = to,
               .dist = route_cost(*graph_, path),
               .aux = path.size() - 1,
               .label = "shortest_path"});
  }
  return path;
}

GreedyGeographicRouter::GreedyGeographicRouter(const Graph& graph)
    : graph_(&graph) {
  MOT_EXPECTS(graph.has_positions());
}

double GreedyGeographicRouter::euclidean(NodeId a, NodeId b) const {
  const Position& pa = graph_->position(a);
  const Position& pb = graph_->position(b);
  const double dx = pa.x - pb.x;
  const double dy = pa.y - pb.y;
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<NodeId> GreedyGeographicRouter::route(NodeId from,
                                                  NodeId to) const {
  MOT_EXPECTS(from < graph_->num_nodes() && to < graph_->num_nodes());
  std::vector<NodeId> path{from};
  NodeId at = from;
  while (at != to) {
    double best_distance = euclidean(at, to);
    NodeId best = kInvalidNode;
    for (const Edge& e : graph_->neighbors(at)) {
      const double d = euclidean(e.to, to);
      if (d < best_distance || (d == best_distance && e.to == to)) {
        best_distance = d;
        best = e.to;
      }
    }
    if (best == kInvalidNode) return {};  // void: no strictly closer hop
    at = best;
    path.push_back(at);
    MOT_CHECK(path.size() <= graph_->num_nodes());  // progress => no loop
  }
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kRouteComputed,
               .from = from,
               .to = to,
               .dist = route_cost(*graph_, path),
               .aux = path.size() - 1,
               .label = "greedy_geo"});
  }
  return path;
}

RouteStretch measure_stretch(const Graph& graph,
                             const DistanceOracle& oracle,
                             const Router& router, Rng& rng,
                             std::size_t samples) {
  MOT_EXPECTS(graph.num_nodes() >= 2);
  RouteStretch stretch;
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto from = static_cast<NodeId>(rng.below(graph.num_nodes()));
    auto to = static_cast<NodeId>(rng.below(graph.num_nodes()));
    if (from == to) to = (to + 1) % graph.num_nodes();
    const std::vector<NodeId> route = router.route(from, to);
    if (route.empty()) {
      ++stretch.failed;
      continue;
    }
    MOT_CHECK(route.front() == from && route.back() == to);
    const Weight cost = route_cost(graph, route);
    const Weight optimal = oracle.distance(from, to);
    MOT_CHECK(optimal > 0.0);
    const double ratio = cost / optimal;
    total += ratio;
    stretch.max_stretch = std::max(stretch.max_stretch, ratio);
    ++stretch.delivered;
  }
  if (stretch.delivered > 0) {
    stretch.mean_stretch = total / static_cast<double>(stretch.delivered);
  }
  return stretch;
}

}  // namespace mot
