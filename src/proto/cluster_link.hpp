// The seam between DistributedMot and a multi-process cluster
// (src/netio/): when a runtime shard holds only part of the node space,
// a message addressed to a foreign node is handed to the link instead of
// the simulator, and operation completions are reported back so the
// coordinator (which injected the operation, possibly on another shard)
// learns the result.
//
// The runtime embeds the walker's per-operation context (accumulated
// cost, peak/found level) into the message before forwarding — see the
// op_cost / op_peak fields of proto::Message — and the receiving shard
// re-materializes it via cluster_inject(). Structure state never moves:
// each detection-list entry lives on the shard owning its node.
#pragma once

#include <cstdint>

#include "proto/messages.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot::proto {

class ClusterLink {
 public:
  virtual ~ClusterLink() = default;

  // Whether `node` belongs to this shard. Messages to foreign nodes are
  // forwarded; everything else stays on the local simulator.
  virtual bool owns(NodeId node) const = 0;

  // Ship a message (walker context already embedded) to the owner shard
  // of message.role.node. `from` is the physical sender of the hop.
  virtual void forward(const Message& message, NodeId from) = 0;

  // An operation reached its terminal handler on this shard.
  virtual void complete_publish(ObjectId object) = 0;
  virtual void complete_move(ObjectId object, const MoveResult& result) = 0;
  virtual void complete_query(std::uint64_t query_id,
                              const QueryResult& result) = 0;
};

}  // namespace mot::proto
