#include "proto/distributed_mot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "adapt/adaptive.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "proto/cluster_link.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mot::proto {

namespace {

constexpr int kMaxQueryRestarts = 1000;
// Retransmission gives up only when something is structurally wrong: with
// any loss rate < 1 the expected attempt count is small, so hitting the
// cap means a message is being sent to a node that can never ack (a
// protocol bug — crashes cancel their transfers during recovery).
constexpr int kMaxTransferAttempts = 100;

// Detection-list maintenance traffic: the message kinds the batching
// window may stage and that crash recovery / rebuild epochs gate.
bool is_maintenance_type(MsgType type) {
  switch (type) {
    case MsgType::kPublish:
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kSdlAdd:
    case MsgType::kSdlRemove:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kPublish:
      return "publish";
    case MsgType::kInsert:
      return "insert";
    case MsgType::kDelete:
      return "delete";
    case MsgType::kQueryUp:
      return "query-up";
    case MsgType::kQueryDown:
      return "query-down";
    case MsgType::kQueryReply:
      return "query-reply";
    case MsgType::kSdlAdd:
      return "sdl-add";
    case MsgType::kSdlRemove:
      return "sdl-remove";
    case MsgType::kReplicaAdd:
      return "replica-add";
    case MsgType::kReplicaRemove:
      return "replica-remove";
    case MsgType::kQueryDownReplica:
      return "query-down-replica";
  }
  return "?";
}

DistributedMot::DistributedMot(const PathProvider& provider, Simulator& sim,
                               const ChainOptions& options)
    : provider_(&provider), sim_(&sim), options_(options),
      sensors_(provider.num_nodes()) {
  // Shortcut descent needs a node to read a remote chain locally, which a
  // message-passing node cannot do; the centralized engines model it.
  MOT_EXPECTS(!options.shortcut_descent);
}

void DistributedMot::use_channel(Channel* channel) {
  MOT_EXPECTS(channel != nullptr);
  MOT_EXPECTS(inflight_ == 0);  // attach before injecting traffic
  MOT_EXPECTS(!batching_);      // frames own their delivery path
  channel_ = channel;
  channel->subscribe_crashes(
      [this](NodeId node) { recover_from_crash(node); });
}

void DistributedMot::replicate_detection_lists(bool on) {
  MOT_EXPECTS(inflight_ == 0);  // enable before injecting traffic
  MOT_EXPECTS(proxies_.empty());
  replica_mode_ = on ? ReplicaMode::kAll : ReplicaMode::kOff;
}

void DistributedMot::replicate_placed() {
  MOT_EXPECTS(inflight_ == 0);  // enable before injecting traffic
  MOT_EXPECTS(proxies_.empty());
  replica_mode_ = ReplicaMode::kPlaced;
}

void DistributedMot::use_adaptive(adapt::AdaptiveController* controller) {
  MOT_EXPECTS(controller != nullptr);
  // The AIMD loop rides ack/timeout feedback and the tuner reads the
  // service model's load gauges; both only exist with overload engaged.
  MOT_EXPECTS(service_ != nullptr);
  MOT_EXPECTS(inflight_ == 0);  // attach before injecting traffic
  adapt_ = controller;
  divert_attempts_.assign(sensors_.size(), 0);
  degraded_by_node_.assign(sensors_.size(), 0);
}

void DistributedMot::use_overload(ServiceModel* service) {
  MOT_EXPECTS(service != nullptr);
  // Backpressure rides the link layer: shed frames are recovered by the
  // sender's retransmission, which only exists with a channel attached.
  MOT_EXPECTS(channel_ != nullptr);
  MOT_EXPECTS(inflight_ == 0);  // attach before injecting traffic
  service_ = service;
}

void DistributedMot::use_batching(bool on) {
  MOT_EXPECTS(inflight_ == 0);  // enable before injecting traffic
  MOT_EXPECTS(staged_.empty());
  // Batching coalesces simulator deliveries; the reliable link layer,
  // overload model, and cluster transport each own their own delivery
  // path (frames, admission queues, shard forwarding), so they are
  // mutually exclusive with it.
  MOT_EXPECTS(!on || (channel_ == nullptr && service_ == nullptr &&
                      cluster_ == nullptr));
  batching_ = on;
}

overload::Priority DistributedMot::classify(MsgType type, int attempt) {
  // Retransmitted frames carry work the sender already paid transport
  // for; dropping them again multiplies the waste, so they escalate past
  // fresh maintenance and query traffic.
  if (attempt > 0) return overload::Priority::kTransport;
  switch (type) {
    case MsgType::kReplicaAdd:
    case MsgType::kReplicaRemove:
      return overload::Priority::kRecovery;
    case MsgType::kPublish:
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kSdlAdd:
    case MsgType::kSdlRemove:
      return overload::Priority::kMaintenance;
    case MsgType::kQueryUp:
    case MsgType::kQueryDown:
    case MsgType::kQueryDownReplica:
    case MsgType::kQueryReply:
      return overload::Priority::kQuery;
  }
  return overload::Priority::kQuery;
}

std::size_t DistributedMot::window_cap(NodeId to) const {
  const std::size_t max = service_->config().max_window;
  if (adapt_ != nullptr) return adapt_->window_cap(to, max);
  return max;
}

DistributedMot::LinkCredit& DistributedMot::credit_for(NodeId to) {
  LinkCredit& credit = credit_[to];
  if (credit.window == 0) credit.window = window_cap(to);
  return credit;
}

overload::CircuitBreaker& DistributedMot::breaker_for(NodeId from,
                                                      NodeId to) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | to;
  const auto it = breakers_.find(key);
  if (it != breakers_.end()) return it->second;
  const overload::OverloadConfig& config = service_->config();
  return breakers_
      .emplace(key, overload::CircuitBreaker(config.breaker_threshold,
                                             config.breaker_cooldown))
      .first->second;
}

NodeId DistributedMot::replica_of(OverlayNode role, ObjectId object) const {
  const std::uint64_t n = sensors_.size();
  if (n <= 1) return kInvalidNode;
  // Deterministic rehash: everyone (writer, reader, recovery) derives
  // the same slot from the role and object alone, re-probing past dead
  // hosts. Depends on the current liveness set, which is why recovery
  // rebuilds every replica after a crash (rebuild_replicas).
  std::uint64_t state =
      (static_cast<std::uint64_t>(role.node) << 40) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(role.level))
       << 32) ^
      object ^ 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t probe = 0; probe < n; ++probe) {
    const std::uint64_t h = splitmix64(state);
    const NodeId cand =
        static_cast<NodeId>((role.node + 1 + h % (n - 1)) % n);
    if (cand != role.node && !is_node_dead(cand)) return cand;
  }
  return kInvalidNode;  // everyone else is dead: no replica
}

void DistributedMot::send_replica_update(NodeId self, int level,
                                         ObjectId object, OverlayNode child,
                                         bool present) {
  if (!replica_owner_active(self)) return;
  const NodeId slot = replica_of({level, self}, object);
  if (slot == kInvalidNode) return;
  RoleState& role = local(self).roles[level];
  const std::uint32_t version = ++role.replica_versions[object];
  Message update;
  update.type = present ? MsgType::kReplicaAdd : MsgType::kReplicaRemove;
  update.object = object;
  update.role = {level, slot};
  update.link = child;
  update.walk_source = self;     // owner node
  update.walk_index = version;   // last-writer-wins ordering
  ++stats_.replica_updates;
  send(self, update, nullptr);  // mirrored bookkeeping, not op cost
}

void DistributedMot::rebuild_replicas() {
  if (!replicating()) return;
  // Ground truth wins: wipe every hosted replica and re-derive from the
  // live detection lists. Runs in the recovery control plane, so slots
  // are recomputed against the post-crash liveness set — replicas whose
  // host died re-home automatically. Versions keep climbing so that any
  // post-recovery update still supersedes the rebuilt record.
  for (SensorState& sensor : sensors_) {
    for (auto& [level, role] : sensor.roles) {
      (void)level;
      role.replicas.clear();
    }
  }
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    if (is_node_dead(v) || !replica_owner_active(v)) continue;
    for (auto& [level, role] : sensors_[v].roles) {
      for (const auto& [object, entry] : role.dl) {
        const NodeId slot = replica_of({level, v}, object);
        if (slot == kInvalidNode) continue;
        const std::uint32_t version = ++role.replica_versions[object];
        sensors_[slot].roles[level].replicas[object][v] = {entry.child,
                                                           version, true};
        ++stats_.replica_updates;
      }
    }
  }
}

void DistributedMot::apply_replica_placements(
    const std::vector<NodeId>& place, const std::vector<NodeId>& retire) {
  MOT_EXPECTS(replica_mode_ == ReplicaMode::kPlaced);
  // Placement is control-plane state and moves only at quiescence: with
  // nothing in flight and nothing unacked there is no message to race.
  MOT_EXPECTS(inflight_ == 0);
  MOT_EXPECTS(pending_.empty());
  for (const NodeId owner : retire) {
    if (placed_.erase(owner) == 0) continue;
    ++stats_.replicas_retired;
    for (SensorState& sensor : sensors_) {
      for (auto& [level, role] : sensor.roles) {
        (void)level;
        for (auto it = role.replicas.begin(); it != role.replicas.end();) {
          it->second.erase(owner);
          it = it->second.empty() ? role.replicas.erase(it) : std::next(it);
        }
      }
    }
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kReplicaRetire,
                 .t = sim_->now(),
                 .from = owner,
                 .aux = placed_.size()});
    }
  }
  for (const NodeId owner : place) {
    if (is_node_dead(owner)) continue;
    if (!placed_.insert(owner).second) continue;
    ++stats_.replicas_placed;
    // Mirror the owner's live detection lists into their slots with
    // fresh versions, so an in-flight pre-placement update (there are
    // none at quiescence, but restarts replay through here too) could
    // never supersede the mirrored ground truth.
    for (auto& [level, role] : sensors_[owner].roles) {
      for (const auto& [object, entry] : role.dl) {
        const NodeId slot = replica_of({level, owner}, object);
        if (slot == kInvalidNode) continue;
        const std::uint32_t version = ++role.replica_versions[object];
        sensors_[slot].roles[level].replicas[object][owner] = {entry.child,
                                                               version, true};
        ++stats_.replica_updates;
      }
    }
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kReplicaPlace,
                 .t = sim_->now(),
                 .from = owner,
                 .aux = placed_.size()});
    }
  }
}

void DistributedMot::adaptive_step() {
  if (adapt_ == nullptr || service_ == nullptr) return;
  MOT_EXPECTS(inflight_ == 0);
  // 1. Gradient tuner: the epoch's per-node load signals go in, tuned
  //    operating points come out and are applied to the service model.
  std::vector<adapt::NodeSignal> signals;
  signals.reserve(service_->num_nodes());
  for (std::size_t v = 0; v < service_->num_nodes(); ++v) {
    const NodeLoad& load = service_->load(v);
    adapt::NodeSignal sig;
    sig.node = static_cast<std::uint32_t>(v);
    sig.delay_samples = load.delay_count;
    sig.mean_delay = load.delay_count == 0
                         ? 0.0
                         : load.delay_sum /
                               static_cast<double>(load.delay_count);
    sig.sheds = load.sheds;
    sig.depth_ewma = load.depth_ewma;
    sig.degrades = degraded_by_node_[v];
    signals.push_back(sig);
  }
  const std::vector<adapt::TuneAction> actions =
      adapt_->tune(signals, service_->config());
  for (const adapt::TuneAction& action : actions) {
    service_->set_red_fraction(action.node, action.red_fraction);
    service_->set_query_admit_fraction(action.node, action.admit_fraction);
    ++stats_.tuner_steps;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kTunerStep,
                 .t = sim_->now(),
                 .to = action.node,
                 .aux = service_->node_config(action.node).red_threshold()});
    }
  }
  // 2. Load-aware replica placement from the epoch's divert gauges.
  if (replica_mode_ == ReplicaMode::kPlaced &&
      adapt_->config().place_replicas) {
    std::vector<adapt::LoadGauge> gauges;
    gauges.reserve(sensors_.size());
    for (std::size_t v = 0; v < sensors_.size(); ++v) {
      if (is_node_dead(static_cast<NodeId>(v))) continue;
      const NodeLoad& load = service_->load(v);
      gauges.push_back({static_cast<std::uint32_t>(v), divert_attempts_[v],
                        load.sheds, load.depth_ewma});
    }
    const adapt::PlacementPlan plan = adapt_->plan_placements(gauges);
    apply_replica_placements(plan.place, plan.retire);
  }
  // 3. A fresh epoch for the next quiescence window.
  service_->reset_load_epoch();
  std::fill(divert_attempts_.begin(), divert_attempts_.end(), 0);
  std::fill(degraded_by_node_.begin(), degraded_by_node_.end(), 0);
}

void DistributedMot::export_adaptive_state(
    obs::MetricsRegistry& registry) const {
  if (adapt_ == nullptr || service_ == nullptr) return;
  adapt_->export_metrics(registry, service_->config().max_window);
  const overload::OverloadConfig& base = service_->config();
  for (std::size_t v = 0; v < service_->num_nodes(); ++v) {
    const overload::OverloadConfig& tuned = service_->node_config(v);
    // Only nodes moved off the base operating point get a labeled gauge;
    // hundreds of untouched nodes would be noise.
    if (tuned.red_fraction == base.red_fraction &&
        tuned.admit_fraction[static_cast<std::size_t>(
            overload::Priority::kQuery)] ==
            base.admit_fraction[static_cast<std::size_t>(
                overload::Priority::kQuery)]) {
      continue;
    }
    registry
        .gauge("mot_adapt_red_threshold", {{"node", std::to_string(v)}})
        .set(static_cast<double>(tuned.red_threshold()));
  }
  registry.gauge("mot_adapt_placed_replicas")
      .set(static_cast<double>(placed_.size()));
}

void DistributedMot::on_replica_add(const Message& message) {
  RoleState& role = local(message.role.node).roles[message.role.level];
  // A placement retirement may race an in-flight add from before the
  // owner was retired; installing it would orphan the record, so adds
  // from no-longer-active owners are dropped (their versions are owner
  // state and keep climbing, so a re-placement still supersedes).
  if (!replica_owner_active(message.walk_source)) return;
  ReplicaRecord& record = role.replicas[message.object][message.walk_source];
  if (message.walk_index > record.version) {
    record = {message.link, message.walk_index, true};
  }
}

void DistributedMot::on_replica_remove(const Message& message) {
  RoleState& role = local(message.role.node).roles[message.role.level];
  ReplicaRecord& record = role.replicas[message.object][message.walk_source];
  if (message.walk_index > record.version) {
    record = {OverlayNode{}, message.walk_index, false};
  }
}

Weight DistributedMot::distance(NodeId a, NodeId b) const {
  return a == b ? 0.0 : provider_->oracle().distance(a, b);
}

bool DistributedMot::is_node_dead(NodeId node) const {
  return channel_ != nullptr && channel_->is_dead(node);
}

std::size_t DistributedMot::next_alive_index(
    std::span<const PathStop> sequence, std::size_t index) const {
  // Crashed sensors are skipped on climbs: departures are announced
  // (Section 7), so a live node never forwards into a dead role.
  while (index < sequence.size() &&
         is_node_dead(sequence[index].node.node)) {
    ++index;
  }
  return index;
}

std::size_t DistributedMot::next_reachable_index(
    NodeId self, std::span<const PathStop> sequence,
    std::size_t index) const {
  const std::size_t first_alive = next_alive_index(sequence, index);
  if (channel_ == nullptr) return first_alive;
  // Prefer the first stop we can actually reach: a cut between self and
  // a stop is locally observable (carrier sense), and any higher stop of
  // the walk also meets the object's chain — worst case the root. If
  // everything ahead is across the cut, keep the first alive stop and
  // let the reliable layer wait out the heal; that preserves
  // termination (queries never spin on restarts during a partition).
  std::size_t probe = first_alive;
  while (probe < sequence.size()) {
    const NodeId node = sequence[probe].node.node;
    if (!channel_->link_blocked(sim_->now(), self, node)) return probe;
    probe = next_alive_index(sequence, probe + 1);
  }
  return first_alive;
}

bool DistributedMot::link_unreachable(NodeId from, NodeId to) const {
  return channel_ != nullptr &&
         (channel_->is_dead(to) ||
          channel_->link_blocked(sim_->now(), from, to));
}

DistributedMot::SensorState& DistributedMot::local(NodeId node) {
  // The locality guard: only the node currently handling a message may
  // touch its state. This is what makes the runtime genuinely
  // distributed rather than conveniently centralized.
  MOT_CHECK(node == active_node_);
  return sensors_[node];
}

namespace {

// Walker spine hops advance a trace's span cursor; everything else a
// handler sends (SDL / replica bookkeeping) branches off the current
// spine span without moving it, so a walk's spine reads as one chain
// with leaf branches.
bool is_spine_hop(MsgType type) {
  switch (type) {
    case MsgType::kPublish:
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kQueryUp:
    case MsgType::kQueryDown:
    case MsgType::kQueryDownReplica:
    case MsgType::kQueryReply:
      return true;
    default:
      return false;
  }
}

}  // namespace

void DistributedMot::send(NodeId from, Message message, Weight* op_cost) {
  if (batching_ && is_maintenance_type(message.type)) {
    // Batched maintenance: stage the update instead of scheduling it.
    // All metering / tracing / stats run at flush time, where updates
    // sharing a directed edge collapse into one charged message. The
    // op-cost sink is NOT captured (it may point into a caller's stack
    // frame); the flush re-resolves it against the move in flight.
    staged_.push_back({message, from, op_cost != nullptr});
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      // The window closes at the current instant: one zero-delay event
      // drains everything staged "now", including the follow-up hops
      // handlers stage while it runs.
      sim_->schedule(0.0, [this] { flush_batches(); });
    }
    return;
  }
  const NodeId to = message.role.node;
  const Weight hop = distance(from, to);
  ++stats_.messages_sent;
  if (router_ != nullptr && from != to) {
    // Hop-by-hop physical forwarding. With a shortest-path router the
    // route cost equals the oracle distance charged below, so the cost
    // model is realized rather than assumed.
    const std::vector<NodeId> route = router_->route(from, to);
    MOT_CHECK(!route.empty());  // the overlay requires deliverable routes
    stats_.physical_hops += route.size() - 1;
  }
  if (op_cost != nullptr && hop > 0.0) {
    meter_.charge(hop);
    *op_cost += hop;
  } else if (op_cost != nullptr) {
    meter_.charge(0.0, 1);
  }
  if (obs::tracing()) {
    std::uint64_t span_parent = 0;
    if (TraceCtx* tctx = trace_ctx_for(message);
        tctx != nullptr && tctx->trace_id != 0) {
      // Stamp the hop's span onto the message itself: locally the copy
      // is informational, but if this hop crosses a shard boundary the
      // fields travel on the wire and the owning shard resumes the
      // same span tree (span_seq re-seeds its allocator).
      message.trace_id = tctx->trace_id;
      message.span = tctx->next_span++;
      span_parent = tctx->last_span;
      if (is_spine_hop(message.type)) tctx->last_span = message.span;
      message.span_seq = tctx->next_span;
    }
    obs::emit({.type = obs::Ev::kMsgSend,
               .t = sim_->now(),
               .object = message.object,
               .from = from,
               .to = to,
               .level = message.role.level,
               .dist = hop,
               .charged = op_cost != nullptr ? hop : 0.0,
               .trace = message.trace_id,
               .span = message.span,
               .parent = span_parent,
               .label = msg_type_name(message.type)});
  }
  if (record_) {
    deliveries_.push_back({message, from, to, sim_->now(), hop});
  }
  if (cluster_ != nullptr && !cluster_->owns(to)) {
    // The destination lives on another shard: the cost above is already
    // charged (costs accrue at the sender), so the message leaves this
    // process with the walker's remaining context embedded.
    forward_remote(from, std::move(message));
    return;
  }
  if (channel_ == nullptr) {
    sim_->schedule(hop, [this, message] { handle(message); });
    return;
  }
  if (from == to) {
    // Local handoff: no link crossed, so no frame — but the node may
    // crash before the zero-distance delivery fires, and crash recovery
    // may rebuild the operation out from under a queued handoff. Frames
    // are cancelled by poisoning their sequence number; a handoff has no
    // frame, so maintenance handoffs carry the object's rebuild epoch
    // instead and drop themselves when recovery has moved on.
    const bool maintenance = is_maintenance_type(message.type);
    const std::uint64_t epoch =
        maintenance ? rebuild_epoch(message.object) : 0;
    sim_->schedule(hop, [this, message, maintenance, epoch] {
      if (is_node_dead(message.role.node)) return;
      if (maintenance && epoch != rebuild_epoch(message.object)) {
        ++stats_.stale_maintenance_drops;
        return;
      }
      handle(message);
    });
    return;
  }
  // Reliable link layer: the message becomes a sequence-numbered DATA
  // frame, retransmitted until acknowledged.
  const std::uint64_t seq = next_seq_++;
  PendingTransfer transfer;
  transfer.message = message;
  transfer.from = from;
  transfer.to = to;
  transfer.dist = hop;
  transfer.rto = 2.0 * hop + 1.0;  // round trip + processing slack
  transfer.first_send = sim_->now();
  ++stats_.data_sent;
  if (service_ != nullptr) {
    // Credit flow control: the destination's last ack granted a window of
    // outstanding frames; beyond it the frame parks untransmitted — no
    // timer, no wire traffic — until an ack or poisoning frees a slot.
    LinkCredit& credit = credit_for(to);
    if (credit.outstanding >= credit.window) {
      pending_.emplace(seq, std::move(transfer));
      credit.stalled.push_back(seq);
      ++stats_.credit_stalls;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kCreditStall,
                   .t = sim_->now(),
                   .object = message.object,
                   .from = from,
                   .to = to,
                   .aux = seq,
                   .label = msg_type_name(message.type)});
      }
      return;
    }
    transfer.counted_outstanding = true;
    ++credit.outstanding;
  }
  pending_.emplace(seq, std::move(transfer));
  transmit_data(seq);
}

void DistributedMot::flush_batches() {
  ++stats_.batch_flushes;
  // Drain the window in rounds: group everything staged so far by
  // directed (from, to) edge, deliver group by group — edges in
  // first-staged order, FIFO within a group — and let the handlers
  // stage the follow-up hops that form the next round. The order
  // depends only on the staging sequence, so the flush is fully
  // deterministic. All scratch (the round copy, the chaining tables)
  // lives in the batch arena, retired wholesale once the window drains.
  constexpr std::uint32_t kNoNext = 0xffffffffu;
  struct EdgeGroup {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::uint32_t head = 0;
    std::uint32_t tail = 0;
    std::uint32_t size = 0;
  };
  while (!staged_.empty()) {
    const std::span<const StagedUpdate> round =
        batch_arena_.copy<StagedUpdate>(staged_);
    staged_.clear();
    const std::span<std::uint32_t> next =
        batch_arena_.make_span<std::uint32_t>(round.size());
    const std::span<EdgeGroup> groups =
        batch_arena_.make_span<EdgeGroup>(round.size());
    std::size_t num_groups = 0;
    for (std::uint32_t i = 0; i < round.size(); ++i) {
      const NodeId from = round[i].from;
      const NodeId to = round[i].message.role.node;
      next[i] = kNoNext;
      std::size_t g = 0;
      while (g < num_groups &&
             !(groups[g].from == from && groups[g].to == to)) {
        ++g;
      }
      if (g == num_groups) {
        groups[num_groups++] = {from, to, i, i, 1};
      } else {
        next[groups[g].tail] = i;
        groups[g].tail = i;
        ++groups[g].size;
      }
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      const EdgeGroup& group = groups[g];
      const Weight hop = distance(group.from, group.to);
      // One metered message carries the whole group; its co-riders are
      // the coalescing win.
      ++stats_.messages_sent;
      stats_.messages_coalesced += group.size - 1;
      if (router_ != nullptr && group.from != group.to) {
        const std::vector<NodeId> route =
            router_->route(group.from, group.to);
        MOT_CHECK(!route.empty());
        stats_.physical_hops += route.size() - 1;
      }
      bool edge_paid = false;
      for (std::uint32_t i = group.head; i != kNoNext; i = next[i]) {
        Message message = round[i].message;  // trace stamping mutates it
        Weight scratch = 0.0;
        Weight* sink = nullptr;
        if (round[i].billable) {
          // Re-resolve the cost sink: inserts / deletes / SDL updates
          // bill the move in flight; a publish hop (or an update whose
          // move completed earlier this window) is metered but not
          // attributed to an operation — exactly the unbatched split.
          sink = move_cost(message.object);
          if (sink == nullptr) sink = &scratch;
        }
        Weight charged = 0.0;
        if (sink != nullptr) {
          if (!edge_paid && hop > 0.0) {
            // The first billable update on the edge pays the hop; the
            // riders travel free but still count as meter messages.
            meter_.charge(hop);
            *sink += hop;
            charged = hop;
            edge_paid = true;
          } else {
            meter_.charge(0.0, 1);
          }
        }
        if (obs::tracing()) {
          std::uint64_t span_parent = 0;
          if (TraceCtx* tctx = trace_ctx_for(message);
              tctx != nullptr && tctx->trace_id != 0) {
            message.trace_id = tctx->trace_id;
            message.span = tctx->next_span++;
            span_parent = tctx->last_span;
            if (is_spine_hop(message.type)) tctx->last_span = message.span;
            message.span_seq = tctx->next_span;
          }
          obs::emit({.type = obs::Ev::kMsgSend,
                     .t = sim_->now(),
                     .object = message.object,
                     .from = group.from,
                     .to = group.to,
                     .level = message.role.level,
                     .dist = hop,
                     .charged = charged,
                     .trace = message.trace_id,
                     .span = message.span,
                     .parent = span_parent,
                     .label = msg_type_name(message.type)});
        }
        if (record_) {
          deliveries_.push_back(
              {message, group.from, group.to, sim_->now(), hop});
        }
        handle(message);
      }
    }
  }
  batch_arena_.reset();
  flush_scheduled_ = false;
}

void DistributedMot::transmit_data(std::uint64_t seq) {
  PendingTransfer& transfer = pending_.at(seq);
  const Message message = transfer.message;
  const NodeId from = transfer.from;
  const NodeId to = transfer.to;
  const Weight dist = transfer.dist;
  if (service_ != nullptr) {
    // Circuit breaker: an open link parks the frame instead of burning a
    // guaranteed-futile transmission. The parked frame keeps its wakeup
    // timer (flagged so the timeout is not mistaken for link evidence)
    // and re-consults the gate each round; after the cooldown the gate
    // elects exactly one frame as the half-open probe.
    switch (breaker_for(from, to).gate(sim_->now(), seq)) {
      case overload::CircuitBreaker::Gate::kBlocked:
        transfer.breaker_parked = true;
        ++stats_.breaker_suppressed;
        sim_->schedule(transfer.rto,
                       [this, seq] { on_transfer_timeout(seq); });
        return;
      case overload::CircuitBreaker::Gate::kProbe:
        ++stats_.breaker_probes;
        if (obs::tracing()) {
          obs::emit({.type = obs::Ev::kBreakerProbe,
                     .t = sim_->now(),
                     .object = message.object,
                     .from = from,
                     .to = to,
                     .aux = seq});
        }
        break;
      case overload::CircuitBreaker::Gate::kPass:
        break;
    }
    if (transfer.attempts > 0) {
      // With overload engaged, retransmission accounting moves here so a
      // resend is charged exactly when it reaches the wire (a parked
      // frame costs nothing until its gate opens).
      ++stats_.retransmissions;
      stats_.transport_distance += dist;
      meter_.charge(dist);
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kRetransmit,
                   .t = sim_->now(),
                   .object = message.object,
                   .from = from,
                   .to = to,
                   .dist = dist,
                   .charged = dist,
                   .aux = seq,
                   .label = msg_type_name(message.type)});
      }
    }
  }
  const int attempt = transfer.attempts;
  channel_->transmit(*sim_, from, to, dist,
                     [this, seq, message, from, to, dist, attempt] {
                       deliver_data(seq, message, from, to, dist, attempt);
                     });
  sim_->schedule(transfer.rto,
                 [this, seq] { on_transfer_timeout(seq); });
}

void DistributedMot::deliver_data(std::uint64_t seq, const Message& message,
                                  NodeId from, NodeId to, Weight dist,
                                  int attempt) {
  if (poisoned_.count(seq) != 0) return;  // cancelled by crash recovery
  if (service_ != nullptr) {
    // Finite-capacity receiver: admission control runs BEFORE the ack.
    // A shed frame was never acknowledged, so the sender's retransmission
    // timer retries it later — shedding is backpressure, not loss — and
    // an admitted frame is never evicted (its ack already told the sender
    // to forget it). Duplicates of an admitted frame re-ack without
    // consuming queue space.
    const bool duplicate = delivered_.count(seq) != 0;
    if (!duplicate) {
      const overload::Priority cls = classify(message.type, attempt);
      // Queued handlers outlive crashes and rebuilds, and unlike frames
      // they cannot be poisoned by sequence number — so they carry the
      // same guards as local handoffs (see send()) and drop themselves
      // when the node died or recovery moved the operation on.
      const bool maintenance = is_maintenance_type(message.type);
      const std::uint64_t epoch =
          maintenance ? rebuild_epoch(message.object) : 0;
      const overload::Admit outcome = service_->offer(
          to, cls, [this, message, maintenance, epoch] {
            if (is_node_dead(message.role.node)) return;
            if (maintenance && epoch != rebuild_epoch(message.object)) {
              ++stats_.stale_maintenance_drops;
              return;
            }
            handle(message);
          });
      if (outcome != overload::Admit::kAdmit) {
        ++stats_.messages_shed;
        if (obs::tracing()) {
          obs::emit({.type = obs::Ev::kShed,
                     .t = sim_->now(),
                     .object = message.object,
                     .from = from,
                     .to = to,
                     .aux = seq,
                     .label = overload::admit_name(outcome)});
        }
        return;
      }
      delivered_.insert(seq);
    }
    ++stats_.acks_sent;
    stats_.transport_distance += dist;
    meter_.charge(dist);
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kAck,
                 .t = sim_->now(),
                 .object = message.object,
                 .from = to,
                 .to = from,
                 .dist = dist,
                 .charged = dist,
                 .aux = seq});
    }
    // The ack advertises the receiver's remaining admission headroom as a
    // credit grant, capping how many frames the sender may keep in
    // flight toward this node.
    const std::size_t grant = service_->headroom(to);
    channel_->transmit(*sim_, to, from, dist,
                       [this, seq, grant] { on_ack_credit(seq, grant); });
    if (duplicate) {
      ++stats_.duplicates_suppressed;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kDuplicate,
                   .t = sim_->now(),
                   .object = message.object,
                   .from = from,
                   .to = to,
                   .aux = seq});
      }
    }
    return;
  }
  // Acknowledge every copy: a duplicate DATA regenerates the ack in case
  // the previous one was lost. The ack link is just as unreliable.
  ++stats_.acks_sent;
  stats_.transport_distance += dist;
  meter_.charge(dist);
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kAck,
               .t = sim_->now(),
               .object = message.object,
               .from = to,
               .to = from,
               .dist = dist,
               .charged = dist,
               .aux = seq});
  }
  channel_->transmit(*sim_, to, from, dist,
                     [this, seq] { on_ack(seq); });
  if (!delivered_.insert(seq).second) {
    // Duplicate suppression: handlers are effectively-once.
    ++stats_.duplicates_suppressed;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kDuplicate,
                 .t = sim_->now(),
                 .object = message.object,
                 .from = from,
                 .to = to,
                 .aux = seq});
    }
    return;
  }
  handle(message);
}

void DistributedMot::on_ack(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack
  stats_.ack_rtt_sum += sim_->now() - it->second.first_send;
  ++stats_.ack_rtt_count;
  pending_.erase(it);
}

void DistributedMot::on_ack_credit(std::uint64_t seq, std::size_t grant) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack
  const NodeId from = it->second.from;
  const NodeId to = it->second.to;
  const bool counted = it->second.counted_outstanding;
  const bool clean = it->second.attempts == 0;  // acked without a resend
  stats_.ack_rtt_sum += sim_->now() - it->second.first_send;
  ++stats_.ack_rtt_count;
  pending_.erase(it);
  // AIMD additive increase: a first-transmission ack is a clean epoch
  // sample; a full epoch of them raises the per-link cap one notch.
  if (adapt_ != nullptr && clean &&
      adapt_->on_clean_ack(to, service_->config().max_window)) {
    ++stats_.window_increases;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kWindowRaise,
                 .t = sim_->now(),
                 .from = from,
                 .to = to,
                 .aux = window_cap(to)});
    }
  }
  // Adopt the receiver's advertised headroom as the new window. The
  // clamp to >= 1 guarantees progress: even a saturated receiver accepts
  // one probe frame at a time, and shedding handles the rest. With the
  // adaptive controller attached, the ceiling is its per-link AIMD cap
  // instead of the static max_window.
  LinkCredit& credit = credit_for(to);
  credit.window = std::clamp<std::size_t>(grant, 1, window_cap(to));
  if (counted) {
    MOT_CHECK(credit.outstanding > 0);
    --credit.outstanding;
  }
  // Any ack is proof of life for the link: reset the breaker's failure
  // streak, and close it if this was the half-open probe reporting back.
  if (breaker_for(from, to).on_success()) {
    ++stats_.breaker_closes;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kBreakerClose,
                 .t = sim_->now(),
                 .from = from,
                 .to = to,
                 .aux = seq});
    }
  }
  pump_stalled(to);
}

void DistributedMot::pump_stalled(NodeId to) {
  const auto it = credit_.find(to);
  if (it == credit_.end()) return;
  LinkCredit& credit = it->second;
  while (credit.outstanding < credit.window && !credit.stalled.empty()) {
    const std::uint64_t seq = credit.stalled.front();
    credit.stalled.pop_front();
    const auto pending_it = pending_.find(seq);
    if (pending_it == pending_.end()) continue;  // poisoned while parked
    pending_it->second.counted_outstanding = true;
    // The RTT clock starts when the frame actually reaches the wire, not
    // when the sender first wished it had.
    pending_it->second.first_send = sim_->now();
    ++credit.outstanding;
    transmit_data(seq);
  }
}

void DistributedMot::on_transfer_timeout(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked (or recovered) in time
  PendingTransfer& transfer = it->second;
  if (transfer.breaker_parked) {
    // The frame never reached the wire this round — the breaker parked
    // it — so this wakeup carries no evidence about the link. Re-consult
    // the gate (which may elect it as the half-open probe by now).
    transfer.breaker_parked = false;
    transmit_data(seq);
    return;
  }
  if (channel_->link_blocked(sim_->now(), transfer.from, transfer.to)) {
    // Carrier sense: the link is partitioned, so a resend is guaranteed
    // to be refused at the sender. Hold the frame at its current timeout
    // without burning an attempt or doubling the RTO — a partition
    // lasting thousands of ticks must neither wedge the sender into the
    // attempts cap (that cap is reserved for structural bugs) nor
    // inflate the backoff so far that post-heal recovery stalls.
    ++stats_.retransmits_suppressed;
    sim_->schedule(transfer.rto, [this, seq] { on_transfer_timeout(seq); });
    return;
  }
  ++transfer.attempts;
  MOT_CHECK(transfer.attempts < kMaxTransferAttempts);
  // Capped exponential backoff keeps retransmissions of a persistently
  // unlucky frame from flooding the link.
  transfer.rto = std::min(transfer.rto * 2.0,
                          128.0 * (transfer.dist + 1.0));
  if (service_ != nullptr) {
    // A genuine timeout of a frame that was on the wire: feed the
    // breaker's failure streak (retransmission accounting happens in
    // transmit_data, if the gate lets the resend out).
    if (breaker_for(transfer.from, transfer.to)
            .on_timeout(sim_->now(), seq)) {
      ++stats_.breaker_trips;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kBreakerTrip,
                   .t = sim_->now(),
                   .object = transfer.message.object,
                   .from = transfer.from,
                   .to = transfer.to,
                   .aux = seq});
      }
      // AIMD multiplicative decrease, keyed to the breaker trip rather
      // than the raw timeout: under deep receiver queues a single RTO is
      // mostly delay evidence, and halving on every one collapses the
      // window spuriously. A trip means a whole failure streak — real
      // congestion. The live window shrinks with the cap immediately
      // (never below 1; outstanding frames above it drain without
      // replacement — the pump only releases while outstanding < window).
      if (adapt_ != nullptr &&
          adapt_->on_link_loss(transfer.to, service_->config().max_window)) {
        ++stats_.window_decreases;
        LinkCredit& credit = credit_for(transfer.to);
        credit.window = std::max<std::size_t>(
            1, std::min(credit.window, window_cap(transfer.to)));
        if (obs::tracing()) {
          obs::emit({.type = obs::Ev::kWindowShrink,
                     .t = sim_->now(),
                     .from = transfer.from,
                     .to = transfer.to,
                     .aux = window_cap(transfer.to)});
        }
      }
    }
    transmit_data(seq);
    return;
  }
  ++stats_.retransmissions;
  stats_.transport_distance += transfer.dist;
  meter_.charge(transfer.dist);
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kRetransmit,
               .t = sim_->now(),
               .object = transfer.message.object,
               .from = transfer.from,
               .to = transfer.to,
               .dist = transfer.dist,
               .charged = transfer.dist,
               .aux = seq,
               .label = msg_type_name(transfer.message.type)});
  }
  transmit_data(seq);
}

void DistributedMot::poison_transfer(std::uint64_t seq) {
  poisoned_.insert(seq);
  if (service_ != nullptr) {
    const auto it = pending_.find(seq);
    if (it != pending_.end()) {
      // Release the credit slot the frame held so stalled frames toward
      // the same destination are not wedged by a cancelled transfer. A
      // frame parked in `stalled` leaves a dangling seq there; the pump
      // skips seqs that are no longer pending.
      const NodeId to = it->second.to;
      const bool counted = it->second.counted_outstanding;
      pending_.erase(it);
      if (counted) {
        LinkCredit& credit = credit_for(to);
        MOT_CHECK(credit.outstanding > 0);
        --credit.outstanding;
        pump_stalled(to);
      }
    }
    return;
  }
  pending_.erase(seq);
}

void DistributedMot::poison_query_transfers(std::uint64_t query_id) {
  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, transfer] : pending_) {
    const MsgType type = transfer.message.type;
    if ((type == MsgType::kQueryUp || type == MsgType::kQueryDown ||
         type == MsgType::kQueryDownReplica ||
         type == MsgType::kQueryReply) &&
        transfer.message.query_id == query_id) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t seq : seqs) poison_transfer(seq);
}

void DistributedMot::poison_object_transfers(ObjectId object) {
  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, transfer] : pending_) {
    const MsgType type = transfer.message.type;
    if ((type == MsgType::kPublish || type == MsgType::kInsert ||
         type == MsgType::kDelete || type == MsgType::kSdlAdd ||
         type == MsgType::kSdlRemove) &&
        transfer.message.object == object) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t seq : seqs) poison_transfer(seq);
}

void DistributedMot::handle(const Message& message) {
  MOT_CHECK(active_node_ == kInvalidNode);
  active_node_ = message.role.node;
  switch (message.type) {
    case MsgType::kPublish:
      on_publish(message);
      break;
    case MsgType::kInsert:
      on_insert(message);
      break;
    case MsgType::kDelete:
      on_delete(message);
      break;
    case MsgType::kQueryUp:
      on_query_up(message);
      break;
    case MsgType::kQueryDown:
      on_query_down(message);
      break;
    case MsgType::kQueryReply:
      on_query_reply(message);
      break;
    case MsgType::kSdlAdd:
      on_sdl_add(message);
      break;
    case MsgType::kSdlRemove:
      on_sdl_remove(message);
      break;
    case MsgType::kReplicaAdd:
      on_replica_add(message);
      break;
    case MsgType::kReplicaRemove:
      on_replica_remove(message);
      break;
    case MsgType::kQueryDownReplica:
      on_query_down_replica(message);
      break;
  }
  active_node_ = kInvalidNode;
}

DistributedMot::Entry* DistributedMot::find_entry(SensorState& sensor,
                                                  int level,
                                                  ObjectId object) {
  const auto role_it = sensor.roles.find(level);
  if (role_it == sensor.roles.end()) return nullptr;
  const auto dl_it = role_it->second.dl.find(object);
  return dl_it == role_it->second.dl.end() ? nullptr : &dl_it->second;
}

Weight* DistributedMot::move_cost(ObjectId object) {
  const auto it = moves_.find(object);
  return it == moves_.end() ? nullptr : &it->second.cost;
}

void DistributedMot::install_entry(const Message& message, NodeId self,
                                   std::optional<OverlayNode> sp,
                                   Weight* op_cost) {
  if (!options_.use_special_lists) sp.reset();
  if (sp && is_node_dead(sp->node)) sp.reset();  // no SDL on the departed
  RoleState& role = local(self).roles[message.role.level];
  MOT_CHECK(role.dl.count(message.object) == 0);
  role.dl.emplace(message.object, Entry{message.link, sp});
  journal(durable::JournalRecord::make_insert(message.role, message.object,
                                              message.link, sp));
  send_replica_update(self, message.role.level, message.object,
                      message.link, /*present=*/true);
  if (sp) {
    Message add;
    add.type = MsgType::kSdlAdd;
    add.object = message.object;
    add.role = *sp;
    add.link = message.role;  // the special child registering itself
    send(self, add, options_.charge_special_updates ? op_cost : nullptr);
  }
}

// ---------------------------------------------------------------------------
// Publish
// ---------------------------------------------------------------------------

void DistributedMot::publish(ObjectId object, NodeId proxy) {
  MOT_EXPECTS(proxy < provider_->num_nodes());
  MOT_EXPECTS(!is_node_dead(proxy));
  MOT_EXPECTS(proxies_.count(object) == 0);
  proxies_[object] = proxy;
  physical_[object] = proxy;
  journal(durable::JournalRecord::make_publish(object, proxy));
  ++inflight_;
  publishing_.insert(object);
  if (obs::tracing()) {
    publish_trace_[object] =
        TraceCtx{make_op_trace_id(object, ++op_trace_seq_[object])};
  }

  const auto sequence = provider_->upward_sequence(proxy);
  Message message;
  message.type = MsgType::kPublish;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel: child == self
  send(proxy, message, nullptr);
}

void DistributedMot::on_publish(const Message& message) {
  const NodeId self = message.role.node;
  install_entry(message, self,
                provider_->special_parent(message.walk_source,
                                          message.walk_index),
                nullptr);
  const auto sequence = provider_->upward_sequence(message.walk_source);
  const std::size_t next_index =
      next_alive_index(sequence, message.walk_index + 1);
  if (next_index >= sequence.size()) {
    ++stats_.publishes_completed;
    publishing_.erase(message.object);
    publish_trace_.erase(message.object);
    --inflight_;
    if (cluster_ != nullptr) cluster_->complete_publish(message.object);
    return;
  }
  Message next = message;
  next.walk_index = static_cast<std::uint32_t>(next_index);
  next.role = sequence[next_index].node;
  next.link = message.role;  // we become the child of the next stop
  Weight publish_cost = 0.0;  // publish cost goes to the meter only
  send(self, next, &publish_cost);
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void DistributedMot::move(ObjectId object, NodeId new_proxy,
                          MoveCallback done) {
  MOT_EXPECTS(new_proxy < provider_->num_nodes());
  MOT_EXPECTS(!is_node_dead(new_proxy));
  MOT_EXPECTS(proxies_.count(object) != 0);
  // One-by-one execution: at most one maintenance operation per object.
  MOT_EXPECTS(moves_.count(object) == 0);
  if (physical_[object] == new_proxy) {
    if (done) sim_->schedule(0.0, [done] { done(MoveResult{}); });
    return;
  }
  // The object moves now; the structure catches up asynchronously.
  physical_[object] = new_proxy;
  journal(durable::JournalRecord::make_physical(object, new_proxy));
  MoveCtx ctx;
  ctx.to = new_proxy;
  ctx.done = std::move(done);
  if (obs::tracing()) {
    ctx.trace.trace_id = make_op_trace_id(object, ++op_trace_seq_[object]);
  }
  auto [it, inserted] = moves_.emplace(object, std::move(ctx));
  MOT_CHECK(inserted);
  ++inflight_;

  const auto sequence = provider_->upward_sequence(new_proxy);
  Message message;
  message.type = MsgType::kInsert;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = new_proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel if installed fresh
  message.new_proxy = new_proxy;
  send(new_proxy, message, &it->second.cost);
}

void DistributedMot::on_insert(const Message& message) {
  const NodeId self = message.role.node;
  const ObjectId object = message.object;
  auto move_it = moves_.find(object);
  MOT_CHECK(move_it != moves_.end());
  MoveCtx& ctx = move_it->second;

  Entry* entry = find_entry(local(self), message.role.level, object);
  if (entry != nullptr) {
    // Meet node: splice the chain onto the new fragment.
    const OverlayNode first_victim = entry->child;
    entry->child =
        message.walk_index == 0 ? message.role : message.link;
    ctx.peak_level = message.role.level;
    proxies_[object] = ctx.to;  // the move commits at the splice
    journal(durable::JournalRecord::make_splice(message.role, object,
                                                entry->child));
    journal(durable::JournalRecord::make_proxy(object, ctx.to));
    send_replica_update(self, message.role.level, object, entry->child,
                        /*present=*/true);
    if (first_victim == message.role) {
      // The meet entry was the old proxy's sentinel (structural
      // ancestor/descendant move): nothing to tear.
      redirect_parked(self, object, ctx.to);
      finish_move(object);
      return;
    }
    Message del;
    del.type = MsgType::kDelete;
    del.object = object;
    del.role = first_victim;
    del.new_proxy = ctx.to;
    send(self, del, &ctx.cost);
    return;
  }

  install_entry(message, self,
                provider_->special_parent(message.walk_source,
                                          message.walk_index),
                &ctx.cost);
  const auto sequence = provider_->upward_sequence(message.walk_source);
  const std::size_t next_index =
      next_alive_index(sequence, message.walk_index + 1);
  // The root always holds every published object, so the climb meets.
  MOT_CHECK(next_index < sequence.size());
  Message next = message;
  next.walk_index = static_cast<std::uint32_t>(next_index);
  next.role = sequence[next_index].node;
  next.link = message.role;
  send(self, next, &ctx.cost);
}

void DistributedMot::on_delete(const Message& message) {
  const NodeId self = message.role.node;
  const ObjectId object = message.object;
  Weight* cost = move_cost(object);
  MOT_CHECK(cost != nullptr);

  SensorState& sensor = local(self);
  auto role_it = sensor.roles.find(message.role.level);
  MOT_CHECK(role_it != sensor.roles.end());
  auto dl_it = role_it->second.dl.find(object);
  MOT_CHECK(dl_it != role_it->second.dl.end());
  const Entry entry = dl_it->second;
  role_it->second.dl.erase(dl_it);
  journal(durable::JournalRecord::make_delete(message.role, object));
  send_replica_update(self, message.role.level, object, OverlayNode{},
                      /*present=*/false);

  if (entry.sp) {
    Message remove;
    remove.type = MsgType::kSdlRemove;
    remove.object = object;
    remove.role = *entry.sp;
    remove.link = message.role;
    send(self, remove, options_.charge_special_updates ? cost : nullptr);
  }

  if (entry.child == message.role) {
    // Old proxy sentinel reached: redirect parked queries to the new
    // location the delete carries (Section 3), then the move is done.
    redirect_parked(self, object, message.new_proxy);
    finish_move(object);
    return;
  }
  Message next = message;
  next.role = entry.child;
  send(self, next, cost);
}

void DistributedMot::finish_move(ObjectId object) {
  auto it = moves_.find(object);
  MOT_CHECK(it != moves_.end());
  MoveCtx ctx = std::move(it->second);
  moves_.erase(it);
  --inflight_;
  ++stats_.moves_completed;
  MoveResult result;
  result.cost = ctx.cost;
  result.peak_level = ctx.peak_level;
  if (ctx.done) ctx.done(result);
  if (cluster_ != nullptr) cluster_->complete_move(object, result);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void DistributedMot::query(NodeId from, ObjectId object,
                           QueryCallback done) {
  MOT_EXPECTS(from < provider_->num_nodes());
  MOT_EXPECTS(!is_node_dead(from));
  MOT_EXPECTS(proxies_.count(object) != 0);
  const std::uint64_t id = next_query_id_++;
  QueryCtx ctx;
  ctx.origin = from;
  ctx.object = object;
  ctx.done = std::move(done);
  if (obs::tracing()) ctx.trace.trace_id = make_query_trace_id(id);
  queries_.emplace(id, std::move(ctx));
  ++inflight_;
  issue_query_walker(id);
  if (policy_.deadline > 0.0) arm_query_watchdog(id);
  if (policy_.hedge_delay > 0.0) {
    sim_->schedule(policy_.hedge_delay, [this, id] { hedge_query(id); });
  }
}

void DistributedMot::issue_query_walker(std::uint64_t query_id) {
  QueryCtx& ctx = queries_.at(query_id);
  const auto sequence = provider_->upward_sequence(ctx.origin);
  Message message;
  message.type = MsgType::kQueryUp;
  message.object = ctx.object;
  message.role = sequence.front().node;
  message.walk_source = ctx.origin;
  message.walk_index = 0;
  message.requester = ctx.origin;
  message.query_id = query_id;
  send(ctx.origin, message, &ctx.cost);
}

void DistributedMot::arm_query_watchdog(std::uint64_t query_id) {
  QueryCtx& ctx = queries_.at(query_id);
  // Bumping the generation orphans any previously armed watchdog; the
  // stale timer fires, sees the mismatch, and does nothing. That stands
  // in for cancellation on a simulator without timer removal.
  const std::uint64_t gen = ++ctx.watchdog_gen;
  double deadline = policy_.deadline;
  for (int i = 0; i < ctx.attempt && i < 6; ++i) {  // cap at 64x
    deadline *= policy_.backoff;
  }
  sim_->schedule(deadline, [this, query_id, gen] {
    on_query_deadline(query_id, gen);
  });
}

void DistributedMot::on_query_deadline(std::uint64_t query_id,
                                       std::uint64_t gen) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) return;     // answered or aborted meanwhile
  QueryCtx& ctx = it->second;
  if (ctx.watchdog_gen != gen) return;  // superseded by a later arm
  ++ctx.attempt;
  if (ctx.attempt >= policy_.max_attempts) {
    // Retry budget exhausted: terminate explicitly rather than leaving
    // the caller hanging — every query either answers or aborts.
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kQueryDeadlineAbort,
                 .t = sim_->now(),
                 .object = ctx.object,
                 .from = ctx.origin,
                 .aux = query_id});
    }
    poison_query_transfers(query_id);
    erase_parked_records(query_id);
    QueryCtx dead = std::move(it->second);
    queries_.erase(it);
    --inflight_;
    ++stats_.queries_deadline_aborted;
    if (dead.done) {
      QueryResult result;  // found stays false: the explicit abort
      result.cost = dead.cost;
      dead.done(result);
    }
    return;
  }
  ++stats_.queries_retried;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kQueryRetry,
               .t = sim_->now(),
               .object = ctx.object,
               .from = ctx.origin,
               .aux = query_id});
  }
  // Drop the stuck walker's leavings and start a fresh climb from home.
  poison_query_transfers(query_id);
  erase_parked_records(query_id);
  issue_query_walker(query_id);
  arm_query_watchdog(query_id);
}

void DistributedMot::hedge_query(std::uint64_t query_id) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) return;  // already answered
  QueryCtx& ctx = it->second;
  ctx.hedged = true;
  ++stats_.queries_hedged;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kQueryHedge,
               .t = sim_->now(),
               .object = ctx.object,
               .from = ctx.origin,
               .aux = query_id});
  }
  // A second walker under the same id: the first reply wins and the
  // loser's messages are dropped as stale.
  issue_query_walker(query_id);
}

void DistributedMot::on_query_up(const Message& message) {
  const NodeId self = message.role.node;
  auto ctx_it = queries_.find(message.query_id);
  if (ctx_it == queries_.end()) {
    // A losing walker of a hedged / retried query: its twin already
    // answered (or the deadline aborted the query). Drop silently.
    ++stats_.stale_query_drops;
    return;
  }
  QueryCtx& ctx = ctx_it->second;

  SensorState& sensor = local(self);
  if (find_entry(sensor, message.role.level, message.object) != nullptr) {
    ctx.found_level = std::max(ctx.found_level, message.role.level);
    Message down = message;
    down.type = MsgType::kQueryDown;
    send(self, down, &ctx.cost);  // self-delivery, zero distance
    return;
  }
  if (options_.use_special_lists) {
    const auto role_it = sensor.roles.find(message.role.level);
    if (role_it != sensor.roles.end()) {
      const auto sdl_it = role_it->second.sdl.find(message.object);
      if (sdl_it != role_it->second.sdl.end() && !sdl_it->second.empty()) {
        const auto best = std::min_element(
            sdl_it->second.begin(), sdl_it->second.end(),
            [](const OverlayNode& a, const OverlayNode& b) {
              return a.level < b.level;
            });
        ctx.found_level = std::max(ctx.found_level, message.role.level);
        Message down = message;
        down.type = MsgType::kQueryDown;
        down.role = *best;
        send(self, down, &ctx.cost);
        return;
      }
    }
  }
  const auto sequence = provider_->upward_sequence(message.walk_source);
  const std::size_t next_index =
      next_reachable_index(self, sequence, message.walk_index + 1);
  MOT_CHECK(next_index < sequence.size());
  Message next = message;
  next.walk_index = static_cast<std::uint32_t>(next_index);
  next.role = sequence[next_index].node;
  send(self, next, &ctx.cost);
}

void DistributedMot::on_query_down(const Message& message) {
  const NodeId self = message.role.node;
  auto ctx_it = queries_.find(message.query_id);
  if (ctx_it == queries_.end()) {
    ++stats_.stale_query_drops;
    return;
  }
  QueryCtx& ctx = ctx_it->second;

  SensorState& sensor = local(self);
  Entry* entry = find_entry(sensor, message.role.level, message.object);
  if (entry == nullptr) {
    // The fragment was torn while we descended: climb again from here.
    ++stats_.queries_restarted;
    restart_query(message.query_id, self);
    return;
  }
  if (entry->child == message.role) {  // proxy sentinel
    if (physical_.at(message.object) == self) {
      finish_query(message.query_id, self);
      return;
    }
    // Stale proxy: the delete en route carries the new location; park.
    ++stats_.queries_parked;
    sensor.parked[message.object].push_back({message.query_id});
    return;
  }
  if (service_ != nullptr && service_->config().degrade_queries &&
      service_->overloaded(self)) {
    // Graceful degradation: past the high watermark this node answers
    // from its last-known detection entry instead of forwarding the
    // walker deeper into a saturated region. The answer is explicit
    // about its quality — degraded, with a staleness bound derived from
    // the chain geometry: the descent below a level-l entry spans
    // O(2^l), so the object is within staleness_scale * 2^l of the
    // reported position.
    ++stats_.queries_degraded;
    if (adapt_ != nullptr) ++degraded_by_node_[self];
    ctx.found_level = std::max(ctx.found_level, message.role.level);
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kQueryDegraded,
                 .t = sim_->now(),
                 .object = message.object,
                 .from = self,
                 .to = entry->child.node,
                 .level = message.role.level,
                 .aux = message.query_id});
    }
    Message reply;
    reply.type = MsgType::kQueryReply;
    reply.object = message.object;
    reply.role = {0, ctx.origin};
    reply.new_proxy = entry->child.node;
    reply.query_id = message.query_id;
    reply.degraded = true;
    reply.staleness = service_->config().staleness_scale *
                      std::ldexp(1.0, message.role.level);
    Weight reply_cost = 0.0;
    send(self, reply, &reply_cost);  // metered, not attributed to the op
    return;
  }
  const OverlayNode next_stop = entry->child;
  // Placement demand gauge: a descent whose next chain hop is running
  // hot is exactly the load a placed replica would absorb. Counted
  // whether or not a redirect is possible yet, so the controller sees
  // demand before the first placement exists.
  if (adapt_ != nullptr && service_ != nullptr &&
      service_->overloaded(next_stop.node)) {
    ++divert_attempts_[next_stop.node];
    ++stats_.divert_attempts;
  }
  if (replicating() && replica_owner_active(next_stop.node) &&
      link_unreachable(self, next_stop.node)) {
    // The next chain hop is across a partition (or crashed): read its
    // replicated detection list instead of waiting for the heal.
    const NodeId slot = replica_of(next_stop, message.object);
    if (slot != kInvalidNode && !link_unreachable(self, slot)) {
      ++stats_.query_failovers;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kQueryFailover,
                   .t = sim_->now(),
                   .object = message.object,
                   .from = self,
                   .to = slot,
                   .level = next_stop.level,
                   .aux = message.query_id});
      }
      Message failover = message;
      failover.type = MsgType::kQueryDownReplica;
      failover.role = {next_stop.level, slot};
      failover.link = next_stop;  // the unreachable owner role
      send(self, failover, &ctx.cost);
      return;
    }
  }
  if (service_ != nullptr && service_->config().sibling_redirect &&
      replicating() && replica_owner_active(next_stop.node) &&
      service_->overloaded(next_stop.node)) {
    // Hot next hop: divert the descent to the de Bruijn cluster sibling
    // hosting the replicated detection entry — the paper's hashed-cluster
    // load balancing used as an active overload escape hatch. The
    // sibling must itself have headroom (redirecting load onto another
    // hot node just moves the queue) and be reachable.
    const NodeId slot = replica_of(next_stop, message.object);
    if (slot != kInvalidNode && !link_unreachable(self, slot) &&
        !service_->overloaded(slot)) {
      ++stats_.sibling_redirects;
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kSiblingRedirect,
                   .t = sim_->now(),
                   .object = message.object,
                   .from = self,
                   .to = slot,
                   .level = next_stop.level,
                   .aux = message.query_id});
      }
      Message redirect = message;
      redirect.type = MsgType::kQueryDownReplica;
      redirect.role = {next_stop.level, slot};
      redirect.link = next_stop;  // the overloaded owner role
      send(self, redirect, &ctx.cost);
      return;
    }
  }
  Message next = message;
  next.role = next_stop;
  send(self, next, &ctx.cost);
}

void DistributedMot::on_query_down_replica(const Message& message) {
  const NodeId self = message.role.node;
  auto ctx_it = queries_.find(message.query_id);
  if (ctx_it == queries_.end()) {
    ++stats_.stale_query_drops;
    return;
  }
  QueryCtx& ctx = ctx_it->second;
  const OverlayNode owner = message.link;
  // Default: relay to the unreachable owner itself. This host was chosen
  // because the sender could reach it, and it may well sit on the
  // owner's side of the cut — in which case the relay routes the walker
  // around the partition; otherwise the reliable layer waits out the
  // heal here instead of at the sender.
  OverlayNode target = owner;
  SensorState& sensor = local(self);
  const auto role_it = sensor.roles.find(message.role.level);
  if (role_it != sensor.roles.end()) {
    const auto obj_it = role_it->second.replicas.find(message.object);
    if (obj_it != role_it->second.replicas.end()) {
      const auto rec_it = obj_it->second.find(owner.node);
      if (rec_it != obj_it->second.end() && rec_it->second.present &&
          !(rec_it->second.child == owner)) {
        // Replica hit with a real child pointer: skip the unreachable
        // stop entirely and resume the normal descent below it. (A
        // sentinel replica means the owner is the proxy — the walker
        // must still reach the owner to answer, so relay.)
        target = rec_it->second.child;
      }
    }
  }
  Message next = message;
  next.type = MsgType::kQueryDown;
  next.role = target;
  next.link = OverlayNode{};
  send(self, next, &ctx.cost);
}

void DistributedMot::restart_query(std::uint64_t query_id, NodeId from) {
  auto ctx_it = queries_.find(query_id);
  MOT_CHECK(ctx_it != queries_.end());
  QueryCtx& ctx = ctx_it->second;
  ++ctx.restarts;
  MOT_CHECK(ctx.restarts < kMaxQueryRestarts);

  const auto sequence = provider_->upward_sequence(from);
  Message message;
  message.type = MsgType::kQueryUp;
  message.object = ctx.object;
  message.role = sequence.front().node;
  message.walk_source = from;
  message.walk_index = 0;
  message.requester = ctx.origin;
  message.query_id = query_id;
  send(from, message, &ctx.cost);
}

void DistributedMot::redirect_parked(NodeId self, ObjectId object,
                                     NodeId new_proxy) {
  SensorState& sensor = local(self);
  const auto it = sensor.parked.find(object);
  if (it == sensor.parked.end()) return;
  std::vector<ParkedQuery> parked = std::move(it->second);
  sensor.parked.erase(it);
  const OverlayNode target =
      provider_->upward_sequence(new_proxy).front().node;
  for (const ParkedQuery& waiting : parked) {
    auto ctx_it = queries_.find(waiting.query_id);
    if (ctx_it == queries_.end()) {
      // A record a winning walker or the deadline watchdog left behind.
      ++stats_.stale_query_drops;
      continue;
    }
    ++stats_.queries_redirected;
    Message down;
    down.type = MsgType::kQueryDown;
    down.object = object;
    down.role = target;
    down.requester = ctx_it->second.origin;
    down.query_id = waiting.query_id;
    send(self, down, &ctx_it->second.cost);
  }
}

void DistributedMot::finish_query(std::uint64_t query_id, NodeId proxy) {
  auto ctx_it = queries_.find(query_id);
  if (ctx_it == queries_.end()) {
    ++stats_.stale_query_drops;  // a losing walker reached the proxy too
    return;
  }
  // The reply travels home as a real message, but the locate cost (what
  // the paper's query cost ratio measures) excludes the response trip.
  Message reply;
  reply.type = MsgType::kQueryReply;
  reply.object = ctx_it->second.object;
  reply.role = {0, ctx_it->second.origin};
  reply.new_proxy = proxy;
  reply.query_id = query_id;
  Weight reply_cost = 0.0;
  send(proxy, reply, &reply_cost);  // metered, not attributed to the op
}

void DistributedMot::on_query_reply(const Message& message) {
  auto ctx_it = queries_.find(message.query_id);
  if (ctx_it == queries_.end()) {
    ++stats_.stale_query_drops;  // the losing reply of a hedged query
    return;
  }
  QueryCtx ctx = std::move(ctx_it->second);
  queries_.erase(ctx_it);
  --inflight_;
  ++stats_.queries_completed;
  if (ctx.hedged || ctx.attempt > 0) {
    // GC the losing walker: frames still in flight and parked records
    // would otherwise linger past quiescence.
    poison_query_transfers(message.query_id);
    erase_parked_records(message.query_id);
  }
  QueryResult result;
  result.found = true;
  result.proxy = message.new_proxy;
  result.cost = ctx.cost;
  result.found_level = ctx.found_level;
  result.degraded = message.degraded;
  result.staleness_bound = message.staleness;
  if (ctx.done) ctx.done(result);
  if (cluster_ != nullptr) {
    cluster_->complete_query(message.query_id, result);
  }
}

// ---------------------------------------------------------------------------
// SDL bookkeeping
// ---------------------------------------------------------------------------

void DistributedMot::on_sdl_add(const Message& message) {
  RoleState& role = local(message.role.node).roles[message.role.level];
  // A reordered SdlRemove may have arrived first; annihilate against its
  // tombstone instead of registering a record that would instantly dangle.
  const auto tomb_it = role.sdl_tombstones.find(message.object);
  if (tomb_it != role.sdl_tombstones.end()) {
    const auto pos = std::find(tomb_it->second.begin(),
                               tomb_it->second.end(), message.link);
    if (pos != tomb_it->second.end()) {
      tomb_it->second.erase(pos);
      if (tomb_it->second.empty()) role.sdl_tombstones.erase(tomb_it);
      return;
    }
  }
  role.sdl[message.object].push_back(message.link);
  journal(durable::JournalRecord::make_sdl_add(message.role, message.object,
                                               message.link));
}

void DistributedMot::on_sdl_remove(const Message& message) {
  RoleState& role = local(message.role.node).roles[message.role.level];
  const auto sdl_it = role.sdl.find(message.object);
  if (sdl_it != role.sdl.end()) {
    const auto pos = std::find(sdl_it->second.begin(),
                               sdl_it->second.end(), message.link);
    if (pos != sdl_it->second.end()) {
      sdl_it->second.erase(pos);
      if (sdl_it->second.empty()) role.sdl.erase(sdl_it);
      journal(durable::JournalRecord::make_sdl_remove(
          message.role, message.object, message.link));
      return;
    }
  }
  // Out-of-order arrival: the matching SdlAdd is still in flight. Only
  // possible on a reordering channel; in-order delivery always finds the
  // record (the previous MOT_CHECK lives on through this assert).
  MOT_CHECK(channel_ != nullptr);
  role.sdl_tombstones[message.object].push_back(message.link);
}

// ---------------------------------------------------------------------------
// Cluster mode (src/netio/): this runtime as one shard of N processes
// ---------------------------------------------------------------------------
//
// Sharding invariant: a node's sensor state lives only on its owner
// shard, and a handler only ever runs on the owner shard of its
// destination node (send() forwards everything else). The cross-cutting
// per-operation context (MoveCtx / QueryCtx) follows the walker: it is
// embedded into the message at the shard boundary (forward_remote) and
// re-materialized on arrival (cluster_inject), so at any instant exactly
// one shard holds it. Operations execute one at a time (the coordinator
// waits for completion + mesh quiescence), which is the paper's
// one-by-one maintenance case — parking, hedging and walker races never
// arise across shards.

DistributedMot::TraceCtx* DistributedMot::trace_ctx_for(
    const Message& message) {
  switch (message.type) {
    case MsgType::kPublish: {
      const auto it = publish_trace_.find(message.object);
      return it == publish_trace_.end() ? nullptr : &it->second;
    }
    case MsgType::kInsert:
    case MsgType::kDelete: {
      const auto it = moves_.find(message.object);
      return it == moves_.end() ? nullptr : &it->second.trace;
    }
    case MsgType::kQueryUp:
    case MsgType::kQueryDown:
    case MsgType::kQueryDownReplica:
    case MsgType::kQueryReply: {
      const auto it = queries_.find(message.query_id);
      return it == queries_.end() ? nullptr : &it->second.trace;
    }
    case MsgType::kSdlAdd:
    case MsgType::kSdlRemove:
    case MsgType::kReplicaAdd:
    case MsgType::kReplicaRemove: {
      // Side-branch bookkeeping of whichever walk over this object is
      // executing here — a move if one is in flight, else a publish.
      const auto mv = moves_.find(message.object);
      if (mv != moves_.end()) return &mv->second.trace;
      const auto pb = publish_trace_.find(message.object);
      return pb == publish_trace_.end() ? nullptr : &pb->second;
    }
  }
  return nullptr;
}

// Trace ids must be (a) nonzero, (b) unique per walk, and (c) derived
// identically on every shard without coordination. Publishes and moves
// hash (object, per-object op ordinal); the ordinal advances everywhere
// because cluster mode broadcasts cluster_note_position to all shards
// before each one. Queries hash the coordinator-assigned query id,
// which the single-process runtime assigns in the same sequence.
namespace {

std::uint64_t mix_trace(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0x2545f4914f6cdd1dULL;
  return h;
}

}  // namespace

std::uint64_t DistributedMot::make_op_trace_id(ObjectId object,
                                               std::uint64_t seq) const {
  std::uint64_t h = mix_trace(mix_trace(mix_trace(0x6d6f74ULL, 1), object),
                              seq);
  return h == 0 ? 1 : h;
}

std::uint64_t DistributedMot::make_query_trace_id(
    std::uint64_t query_id) const {
  std::uint64_t h = mix_trace(mix_trace(0x6d6f74ULL, 2), query_id);
  return h == 0 ? 1 : h;
}

void DistributedMot::forward_remote(NodeId from, Message message) {
  switch (message.type) {
    case MsgType::kInsert:
    case MsgType::kDelete: {
      const auto it = moves_.find(message.object);
      MOT_CHECK(it != moves_.end());
      message.op_cost = it->second.cost;
      message.op_peak = it->second.peak_level;
      // message.new_proxy already carries ctx.to (set at move() for the
      // climb, at the splice for the tear).
      moves_.erase(it);
      --inflight_;
      break;
    }
    case MsgType::kQueryUp:
    case MsgType::kQueryDown:
    case MsgType::kQueryDownReplica:
    case MsgType::kQueryReply: {
      const auto it = queries_.find(message.query_id);
      MOT_CHECK(it != queries_.end());
      message.op_cost = it->second.cost;
      message.op_peak = it->second.found_level;
      queries_.erase(it);
      --inflight_;
      break;
    }
    case MsgType::kPublish:
      // The climb leaves this shard; the in-flight marker travels along.
      publishing_.erase(message.object);
      publish_trace_.erase(message.object);
      --inflight_;
      break;
    default:
      break;  // SDL / replica updates carry no walker context
  }
  cluster_->forward(message, from);
}

void DistributedMot::cluster_inject(const Message& message, NodeId from) {
  MOT_CHECK(cluster_ != nullptr);
  MOT_CHECK(cluster_->owns(message.role.node));
  (void)from;
  Message local = message;
  local.op_cost = 0.0;  // context lives in the maps again, not the wire
  local.op_peak = 0;
  local.trace_id = 0;
  local.span = 0;
  local.span_seq = 0;
  // The hop that crossed the boundary already holds span `message.span`
  // (emitted by the sending shard), and the walk's allocator stands at
  // `message.span_seq` — re-seed the context so the next hop here
  // continues the same span tree with no gaps or reuse.
  const TraceCtx arriving{message.trace_id, message.span_seq,
                          message.span};
  switch (message.type) {
    case MsgType::kInsert:
    case MsgType::kDelete: {
      MOT_CHECK(moves_.count(message.object) == 0);
      MoveCtx ctx;
      ctx.to = message.new_proxy;
      ctx.cost = message.op_cost;
      ctx.peak_level = message.op_peak;
      if (message.trace_id != 0) ctx.trace = arriving;
      moves_.emplace(message.object, std::move(ctx));
      ++inflight_;
      break;
    }
    case MsgType::kQueryUp:
    case MsgType::kQueryDown:
    case MsgType::kQueryDownReplica: {
      MOT_CHECK(queries_.count(message.query_id) == 0);
      QueryCtx ctx;
      ctx.origin = message.requester;
      ctx.object = message.object;
      ctx.cost = message.op_cost;
      ctx.found_level = message.op_peak;
      if (message.trace_id != 0) ctx.trace = arriving;
      queries_.emplace(message.query_id, std::move(ctx));
      ++inflight_;
      break;
    }
    case MsgType::kQueryReply: {
      // The reply came home to the origin's shard; the context it needs
      // (final cost, found level) rides in the message.
      MOT_CHECK(queries_.count(message.query_id) == 0);
      QueryCtx ctx;
      ctx.origin = message.role.node;
      ctx.object = message.object;
      ctx.cost = message.op_cost;
      ctx.found_level = message.op_peak;
      if (message.trace_id != 0) ctx.trace = arriving;
      queries_.emplace(message.query_id, std::move(ctx));
      ++inflight_;
      break;
    }
    case MsgType::kPublish:
      publishing_.insert(message.object);
      if (message.trace_id != 0) {
        publish_trace_[message.object] = arriving;
      }
      ++inflight_;
      break;
    default:
      break;
  }
  sim_->schedule(0.0, [this, local] { handle(local); });
}

void DistributedMot::cluster_note_position(ObjectId object,
                                           NodeId position) {
  physical_[object] = position;
  // First sighting is the publish broadcast (proxy == position); moves
  // leave the committed proxy to the splice on the meet shard.
  proxies_.emplace(object, position);
  // Every shard sees this broadcast before the walker starts anywhere,
  // so advancing the op ordinal here keeps trace-id derivation in sync
  // across the whole cluster (and with a single-process reference run).
  if (obs::tracing()) ++op_trace_seq_[object];
}

void DistributedMot::cluster_publish(ObjectId object, NodeId proxy) {
  MOT_CHECK(cluster_ != nullptr && cluster_->owns(proxy));
  MOT_EXPECTS(physical_.at(object) == proxy);  // broadcast came first
  ++inflight_;
  publishing_.insert(object);
  if (obs::tracing()) {
    // The note-position broadcast already advanced the ordinal; read it.
    publish_trace_[object] =
        TraceCtx{make_op_trace_id(object, op_trace_seq_[object])};
  }
  const auto sequence = provider_->upward_sequence(proxy);
  Message message;
  message.type = MsgType::kPublish;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel: child == self
  send(proxy, message, nullptr);
}

void DistributedMot::cluster_move(ObjectId object, NodeId new_proxy) {
  MOT_CHECK(cluster_ != nullptr && cluster_->owns(new_proxy));
  MOT_EXPECTS(physical_.at(object) == new_proxy);  // broadcast came first
  MOT_EXPECTS(moves_.count(object) == 0);
  MoveCtx seed;
  seed.to = new_proxy;
  if (obs::tracing()) {
    seed.trace.trace_id = make_op_trace_id(object, op_trace_seq_[object]);
  }
  auto [it, inserted] = moves_.emplace(object, std::move(seed));
  MOT_CHECK(inserted);
  ++inflight_;
  const auto sequence = provider_->upward_sequence(new_proxy);
  Message message;
  message.type = MsgType::kInsert;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = new_proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel if installed fresh
  message.new_proxy = new_proxy;
  send(new_proxy, message, &it->second.cost);
}

void DistributedMot::cluster_query(NodeId origin, ObjectId object,
                                   std::uint64_t query_id) {
  MOT_CHECK(cluster_ != nullptr && cluster_->owns(origin));
  MOT_EXPECTS(proxies_.count(object) != 0);
  MOT_CHECK(queries_.count(query_id) == 0);
  QueryCtx ctx;
  ctx.origin = origin;
  ctx.object = object;
  if (obs::tracing()) ctx.trace.trace_id = make_query_trace_id(query_id);
  queries_.emplace(query_id, std::move(ctx));
  ++inflight_;
  issue_query_walker(query_id);
}

// ---------------------------------------------------------------------------
// Crash recovery (Section 7, crash-stop failures)
// ---------------------------------------------------------------------------

void DistributedMot::recover_from_crash(NodeId victim) {
  // Recovery is the control plane: it runs between message handlers (a
  // crash is a simulator event of its own), touches state directly like
  // ChainTracker::evacuate_node does, and charges every repair hop to the
  // meter as recovery traffic.
  MOT_CHECK(active_node_ == kInvalidNode);
  MOT_CHECK(victim < sensors_.size());
  MOT_CHECK(provider_->root_stop().node != victim);  // re-rooting = rebuild
  for (const auto& [object, at] : physical_) {
    (void)object;
    MOT_CHECK(at != victim);  // objects sit on live sensors
  }
  ++stats_.crash_recoveries;
  MOT_PHASE("recovery");

  // 1. Freeze traffic that involved the dead node and classify what the
  //    lost frames were doing.
  std::vector<std::uint64_t> stalled;
  for (const auto& [seq, transfer] : pending_) {
    if (transfer.from == victim || transfer.to == victim) {
      stalled.push_back(seq);
    }
  }
  std::sort(stalled.begin(), stalled.end());
  std::vector<ObjectId> damaged;
  std::vector<std::uint64_t> queries_to_restart;
  for (const std::uint64_t seq : stalled) {
    const Message& lost = pending_.at(seq).message;
    switch (lost.type) {
      case MsgType::kPublish:
      case MsgType::kInsert:
      case MsgType::kDelete:
        damaged.push_back(lost.object);
        break;
      case MsgType::kSdlAdd:
      case MsgType::kSdlRemove:
      case MsgType::kReplicaAdd:
      case MsgType::kReplicaRemove:
        break;  // cross-references are restored by the sweep below
      case MsgType::kQueryUp:
      case MsgType::kQueryDown:
      case MsgType::kQueryDownReplica:
      case MsgType::kQueryReply:
        queries_to_restart.push_back(lost.query_id);
        break;
    }
    poison_transfer(seq);
  }
  // An in-flight maintenance chain touching the victim must be rebuilt
  // even when no lost frame implicates it: the victim may hold the
  // chain's bottom sentinel (an old proxy dying mid-move, its walker
  // parked elsewhere — possibly across a partition), which splice_around
  // cannot bypass because there is nothing below it to splice to.
  for (const ObjectId object : objects_through(victim)) {
    damaged.push_back(object);
  }
  // Only objects whose maintenance walker is still in flight need a
  // rebuild; a lingering unacked frame of a completed operation is noise.
  std::sort(damaged.begin(), damaged.end());
  damaged.erase(std::unique(damaged.begin(), damaged.end()), damaged.end());
  std::erase_if(damaged, [this](ObjectId object) {
    return moves_.count(object) == 0 && publishing_.count(object) == 0;
  });

  // 2. Queries issued from the dead node die with their requester.
  std::vector<std::uint64_t> orphaned;
  for (const auto& [id, ctx] : queries_) {
    if (ctx.origin == victim) orphaned.push_back(id);
  }
  std::sort(orphaned.begin(), orphaned.end());
  for (const std::uint64_t id : orphaned) {
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kQueryAbort,
                 .t = sim_->now(),
                 .object = queries_.at(id).object,
                 .from = victim,
                 .aux = id});
    }
    poison_query_transfers(id);
    erase_parked_records(id);
    queries_.erase(id);
    --inflight_;
    ++stats_.queries_aborted;
  }

  // 3. Rebuild objects whose maintenance died mid-flight.
  for (const ObjectId object : damaged) {
    poison_object_transfers(object);
    rebuild_object(object, &queries_to_restart);
    if (moves_.count(object) != 0) {
      finish_move(object);
    } else {
      MOT_CHECK(publishing_.erase(object) == 1);
      --inflight_;
      ++stats_.publishes_completed;
    }
  }

  // 4. Splice the victim's surviving chain entries out of their chains.
  splice_around(victim);

  // 5. Sweep dangling references and collect queries parked at the dead
  //    sensor, then erase its state entirely.
  for (const auto& [object, parked] : sensors_[victim].parked) {
    (void)object;
    for (const ParkedQuery& waiting : parked) {
      queries_to_restart.push_back(waiting.query_id);
    }
  }
  if (!break_recovery_) {
    sensors_[victim] = SensorState{};
    journal(durable::JournalRecord::make_wipe_node(victim));
  }
  // The victim's detection-list entries are now (supposed to be) gone
  // and its chains spliced, so the ground truth is stable: cancel every
  // in-flight replica update (a late write could only clobber fresher
  // state) and re-derive the replica stores from the live lists. This
  // also re-homes replicas whose host just died.
  if (replicating()) {
    std::vector<std::uint64_t> replica_frames;
    for (const auto& [seq, transfer] : pending_) {
      const MsgType type = transfer.message.type;
      if (type == MsgType::kReplicaAdd || type == MsgType::kReplicaRemove) {
        replica_frames.push_back(seq);
      }
    }
    std::sort(replica_frames.begin(), replica_frames.end());
    for (const std::uint64_t seq : replica_frames) poison_transfer(seq);
    rebuild_replicas();
  }
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (auto& [level, role] : sensors_[v].roles) {
      for (auto& [object, entry] : role.dl) {
        if (entry.sp && entry.sp->node == victim) {
          entry.sp.reset();
          journal(durable::JournalRecord::make_sp_clear(
              OverlayNode{level, v}, object));
        }
      }
      for (auto it = role.sdl.begin(); it != role.sdl.end();) {
        std::erase_if(it->second, [&](const OverlayNode& child) {
          if (child.node != victim) return false;
          journal(durable::JournalRecord::make_sdl_remove(
              OverlayNode{level, v}, it->first, child));
          return true;
        });
        it = it->second.empty() ? role.sdl.erase(it) : std::next(it);
      }
      // Tombstones are transient reordering state, not durable state: a
      // crash-cut tombstone entry is never journaled.
      for (auto it = role.sdl_tombstones.begin();
           it != role.sdl_tombstones.end();) {
        std::erase_if(it->second, [victim](const OverlayNode& child) {
          return child.node == victim;
        });
        it = it->second.empty() ? role.sdl_tombstones.erase(it)
                                : std::next(it);
      }
    }
  }

  // 6. Restart queries that lost their walker (or their parking spot).
  std::sort(queries_to_restart.begin(), queries_to_restart.end());
  queries_to_restart.erase(
      std::unique(queries_to_restart.begin(), queries_to_restart.end()),
      queries_to_restart.end());
  for (const std::uint64_t id : queries_to_restart) {
    const auto it = queries_.find(id);
    if (it == queries_.end()) continue;  // completed or aborted meanwhile
    poison_query_transfers(id);
    erase_parked_records(id);
    ++stats_.queries_rescued;
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kQueryRescue,
                 .t = sim_->now(),
                 .object = it->second.object,
                 .from = it->second.origin,
                 .aux = id});
    }
    restart_query(id, it->second.origin);
  }
}

void DistributedMot::splice_around(NodeId victim) {
  // Collect the objects chained through the victim, in sorted order so
  // recovery replays deterministically.
  std::vector<ObjectId> objects = objects_through(victim);
  for (const ObjectId object : objects) {
    // The victim may appear at several (even consecutive) levels of one
    // chain; resolve each entry's child transitively to the first stop
    // hosted by a live sensor.
    const auto resolve = [&](OverlayNode at) {
      std::size_t hops = 0;
      while (at.node == victim) {
        const Entry& entry =
            sensors_[victim].roles.at(at.level).dl.at(object);
        MOT_CHECK(!(entry.child == at));  // the victim proxies nothing
        at = entry.child;
        MOT_CHECK(++hops <= sensors_.size());
      }
      return at;
    };
    std::size_t spliced = 0;
    for (NodeId v = 0; v < sensors_.size(); ++v) {
      if (v == victim) continue;
      for (auto& [level, role] : sensors_[v].roles) {
        const auto dl_it = role.dl.find(object);
        if (dl_it == role.dl.end() || dl_it->second.child.node != victim) {
          continue;
        }
        const OverlayNode target = resolve(dl_it->second.child);
        dl_it->second.child = target;
        journal(durable::JournalRecord::make_splice(OverlayNode{level, v},
                                                    object, target));
        // The repair message: parent tells the bypassed child directly.
        const Weight hop = distance(v, target.node);
        stats_.recovery_distance += hop;
        meter_.charge(hop);
        if (obs::tracing()) {
          obs::emit({.type = obs::Ev::kRecoverySplice,
                     .t = sim_->now(),
                     .object = object,
                     .from = v,
                     .to = target.node,
                     .level = target.level,
                     .dist = hop,
                     .charged = hop});
        }
        ++spliced;
      }
    }
    // Every maximal run of victim-hosted entries hangs below one live
    // parent (the root is always live), so each was reachable above.
    MOT_CHECK(spliced >= 1);
    for (const auto& [level, role] : sensors_[victim].roles) {
      (void)level;
      stats_.chain_splices += role.dl.count(object);
    }
  }
}

void DistributedMot::rebuild_object(
    ObjectId object, std::vector<std::uint64_t>* queries_to_restart) {
  // Invalidate queued local handoffs of the torn operation (frames are
  // poisoned by sequence number; handoffs are gated by this epoch).
  ++rebuild_epoch_[object];
  // Tear every trace of the object: its chain may be mid-splice with
  // fragments on both the old and new paths, so surgical repair is not
  // worth the case analysis — re-publishing costs O(D) like any publish.
  journal(durable::JournalRecord::make_wipe_object(object));
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (auto& [level, role] : sensors_[v].roles) {
      (void)level;
      role.dl.erase(object);
      role.sdl.erase(object);
      role.sdl_tombstones.erase(object);
    }
    const auto parked_it = sensors_[v].parked.find(object);
    if (parked_it != sensors_[v].parked.end()) {
      for (const ParkedQuery& waiting : parked_it->second) {
        queries_to_restart->push_back(waiting.query_id);
      }
      sensors_[v].parked.erase(parked_it);
    }
  }

  // Reinstall the chain along the physical position's upward sequence
  // (dead stops skipped), charging the climb as recovery traffic.
  const NodeId at = physical_.at(object);
  MOT_CHECK(!is_node_dead(at));
  const auto sequence = provider_->upward_sequence(at);
  OverlayNode child = sequence.front().node;  // sentinel: child == self
  std::size_t index = 0;
  while (index < sequence.size()) {
    const OverlayNode stop = sequence[index].node;
    const Weight hop = distance(child.node, stop.node);
    stats_.recovery_distance += hop;
    meter_.charge(hop);
    if (obs::tracing()) {
      obs::emit({.type = obs::Ev::kRecoveryHop,
                 .t = sim_->now(),
                 .object = object,
                 .from = child.node,
                 .to = stop.node,
                 .level = stop.level,
                 .dist = hop,
                 .charged = hop});
    }
    RoleState& role = sensors_[stop.node].roles[stop.level];
    std::optional<OverlayNode> sp;
    if (options_.use_special_lists) {
      sp = provider_->special_parent(at, index);
      if (sp && is_node_dead(sp->node)) sp.reset();
    }
    MOT_CHECK(role.dl.count(object) == 0);
    role.dl.emplace(object, Entry{child, sp});
    journal(durable::JournalRecord::make_insert(stop, object, child, sp));
    if (sp) {
      sensors_[sp->node].roles[sp->level].sdl[object].push_back(stop);
      journal(durable::JournalRecord::make_sdl_add(*sp, object, stop));
      const Weight sp_hop = distance(stop.node, sp->node);
      stats_.recovery_distance += sp_hop;
      meter_.charge(sp_hop);
      if (obs::tracing()) {
        obs::emit({.type = obs::Ev::kRecoveryHop,
                   .t = sim_->now(),
                   .object = object,
                   .from = stop.node,
                   .to = sp->node,
                   .level = sp->level,
                   .dist = sp_hop,
                   .charged = sp_hop});
      }
    }
    child = stop;
    index = next_alive_index(sequence, index + 1);
  }
  proxies_[object] = at;
  journal(durable::JournalRecord::make_proxy(object, at));
  ++stats_.objects_rebuilt;
  if (obs::tracing()) {
    obs::emit({.type = obs::Ev::kRecoveryRebuild,
               .t = sim_->now(),
               .object = object,
               .to = at});
  }
}

void DistributedMot::erase_parked_records(std::uint64_t query_id) {
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    auto& parked = sensors_[v].parked;
    for (auto it = parked.begin(); it != parked.end();) {
      std::erase_if(it->second, [query_id](const ParkedQuery& waiting) {
        return waiting.query_id == query_id;
      });
      it = it->second.empty() ? parked.erase(it) : std::next(it);
    }
  }
}

// ---------------------------------------------------------------------------

NodeId DistributedMot::proxy_of(ObjectId object) const {
  const auto it = proxies_.find(object);
  MOT_EXPECTS(it != proxies_.end());
  return it->second;
}

NodeId DistributedMot::physical_position(ObjectId object) const {
  const auto it = physical_.find(object);
  MOT_EXPECTS(it != physical_.end());
  return it->second;
}

std::vector<std::size_t> DistributedMot::load_per_node() const {
  std::vector<std::size_t> load(sensors_.size(), 0);
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (const auto& [level, role] : sensors_[v].roles) {
      load[v] += role.dl.size();
      for (const auto& [object, children] : role.sdl) {
        load[v] += children.size();
      }
    }
  }
  return load;
}

std::vector<ObjectId> DistributedMot::objects_through(NodeId node) const {
  MOT_EXPECTS(node < sensors_.size());
  std::vector<ObjectId> objects;
  for (const auto& [level, role] : sensors_[node].roles) {
    (void)level;
    for (const auto& [object, entry] : role.dl) {
      (void)entry;
      objects.push_back(object);
    }
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  return objects;
}

durable::StateImage DistributedMot::export_durable_image() const {
  durable::StateImage image;
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (const auto& [level, role_state] : sensors_[v].roles) {
      durable::RoleImage role;
      role.role = OverlayNode{level, v};
      for (const auto& [object, entry] : role_state.dl) {
        role.dl.push_back({object, entry.child, entry.sp});
      }
      for (const auto& [object, children] : role_state.sdl) {
        if (children.empty()) continue;
        role.sdl.push_back({object, children});
      }
      if (role.dl.empty() && role.sdl.empty()) continue;
      // Canonical order: FlatMap / hash-map iteration order above depends
      // on insertion history, which is not observable state.
      std::sort(role.dl.begin(), role.dl.end(), [](const auto& a,
                                                   const auto& b) {
        return a.object < b.object;
      });
      std::sort(role.sdl.begin(), role.sdl.end(), [](const auto& a,
                                                     const auto& b) {
        return a.object < b.object;
      });
      image.roles.push_back(std::move(role));
    }
  }
  std::sort(image.roles.begin(), image.roles.end(),
            [](const durable::RoleImage& a, const durable::RoleImage& b) {
              return std::pair(a.role.node, a.role.level) <
                     std::pair(b.role.node, b.role.level);
            });
  for (const auto& [object, proxy] : proxies_) {
    image.proxies.emplace_back(object, proxy);
  }
  std::sort(image.proxies.begin(), image.proxies.end());
  for (const auto& [object, at] : physical_) {
    image.physical.emplace_back(object, at);
  }
  std::sort(image.physical.begin(), image.physical.end());
  return image;
}

void DistributedMot::restore_durable_image(const durable::StateImage& image) {
  // Restore replaces quiescent state only: nothing in flight, nothing
  // unacknowledged, no staged batches.
  MOT_EXPECTS(inflight_ == 0);
  MOT_EXPECTS(pending_.empty());
  MOT_EXPECTS(staged_.empty());
  for (SensorState& sensor : sensors_) sensor = SensorState{};
  proxies_.clear();
  physical_.clear();
  for (const durable::RoleImage& role : image.roles) {
    MOT_CHECK(role.role.node < sensors_.size());
    RoleState& state = sensors_[role.role.node].roles[role.role.level];
    for (const auto& entry : role.dl) {
      state.dl.emplace(entry.object, Entry{entry.child, entry.sp});
    }
    for (const auto& entry : role.sdl) {
      state.sdl.emplace(entry.object, entry.children);
    }
  }
  for (const auto& [object, proxy] : image.proxies) {
    proxies_[object] = proxy;
  }
  for (const auto& [object, at] : image.physical) {
    physical_[object] = at;
  }
  // Replica stores are runtime state re-derived from the lists (the same
  // re-homing sweep crash recovery uses).
  if (replicating()) rebuild_replicas();
}

std::vector<std::string> DistributedMot::invariant_violations() const {
  std::vector<std::string> out;
  if (inflight_ != 0) {
    out.push_back("operations still in flight: " + std::to_string(inflight_));
  }
  if (!pending_.empty()) {
    out.push_back("unacknowledged transfers: " +
                  std::to_string(pending_.size()));
  }
  if (service_ != nullptr) {
    // Service-model conservation ledger: every arrival was admitted or
    // shed, every admitted message was serviced or is still queued — and
    // at quiescence nothing may still be queued.
    if (!service_->conserved()) {
      const ServiceStats& s = service_->stats();
      out.push_back("service ledger does not reconcile: arrivals " +
                    std::to_string(s.arrivals) + " != admitted " +
                    std::to_string(s.admitted) + " + shed " +
                    std::to_string(s.shed_total()) + ", or admitted != serviced " +
                    std::to_string(s.serviced) + " + queued " +
                    std::to_string(service_->total_queued()));
    }
    if (service_->total_queued() != 0) {
      out.push_back("service queues not drained: " +
                    std::to_string(service_->total_queued()) +
                    " messages still queued");
    }
    std::size_t stalled = 0;
    for (const auto& [to, credit] : credit_) {
      (void)to;
      stalled += credit.outstanding;
      for (const std::uint64_t seq : credit.stalled) {
        if (pending_.count(seq) != 0) ++stalled;
      }
    }
    if (stalled != 0) {
      out.push_back("credit windows not drained: " +
                    std::to_string(stalled) +
                    " frames outstanding or stalled");
    }
  }
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (const auto& [level, role] : sensors_[v].roles) {
      if (!role.sdl_tombstones.empty()) {
        out.push_back("sdl tombstones at node " + std::to_string(v) +
                      " level " + std::to_string(level));
      }
    }
  }
  for (const auto& [object, proxy] : proxies_) {
    std::size_t total = 0;
    for (const SensorState& sensor : sensors_) {
      for (const auto& [level, role] : sensor.roles) {
        (void)level;
        total += role.dl.count(object);
      }
    }
    // Walk root -> proxy; every detection-list entry must sit on the
    // walked chain, otherwise entries are orphaned.
    OverlayNode current = provider_->root_stop();
    std::size_t chain = 0;
    bool walk_ok = true;
    while (true) {
      if (chain > total) {
        out.push_back("object " + std::to_string(object) +
                      ": chain longer than its entry count (cycle?)");
        walk_ok = false;
        break;
      }
      const Entry* entry = nullptr;
      const auto& roles = sensors_[current.node].roles;
      const auto role_it = roles.find(current.level);
      if (role_it != roles.end()) {
        const auto dl_it = role_it->second.dl.find(object);
        if (dl_it != role_it->second.dl.end()) entry = &dl_it->second;
      }
      if (entry == nullptr) {
        out.push_back("object " + std::to_string(object) +
                      ": chain broken at node " +
                      std::to_string(current.node) + " level " +
                      std::to_string(current.level));
        walk_ok = false;
        break;
      }
      ++chain;
      if (entry->child == current) {  // proxy sentinel
        if (current.node != proxy) {
          out.push_back("object " + std::to_string(object) +
                        ": chain ends at node " +
                        std::to_string(current.node) +
                        " but the committed proxy is " +
                        std::to_string(proxy));
        }
        break;
      }
      current = entry->child;
    }
    if (walk_ok && chain != total) {
      out.push_back("object " + std::to_string(object) + ": " +
                    std::to_string(total - chain) +
                    " orphaned detection-list entries (chain " +
                    std::to_string(chain) + " of " + std::to_string(total) +
                    ")");
    }
  }
  if (replicating()) {
    // Every live detection-list entry of an actively replicated owner
    // must be mirrored at its slot... (in placed mode only the placed
    // owners replicate, so only they are audited here)
    for (NodeId v = 0; v < sensors_.size(); ++v) {
      if (is_node_dead(v) || !replica_owner_active(v)) continue;
      for (const auto& [level, role] : sensors_[v].roles) {
        for (const auto& [object, entry] : role.dl) {
          const NodeId slot = replica_of({level, v}, object);
          if (slot == kInvalidNode) continue;
          const ReplicaRecord* record = nullptr;
          const auto slot_role_it = sensors_[slot].roles.find(level);
          if (slot_role_it != sensors_[slot].roles.end()) {
            const auto obj_it = slot_role_it->second.replicas.find(object);
            if (obj_it != slot_role_it->second.replicas.end()) {
              const auto rec_it = obj_it->second.find(v);
              if (rec_it != obj_it->second.end()) record = &rec_it->second;
            }
          }
          if (record == nullptr || !record->present ||
              !(record->child == entry.child)) {
            out.push_back("object " + std::to_string(object) +
                          ": replica at node " + std::to_string(slot) +
                          " out of sync with owner " + std::to_string(v) +
                          " level " + std::to_string(level));
          }
        }
      }
    }
    // ...and no replica may outlive its detection-list entry — or its
    // owner's placement: a retired owner's records must all be gone.
    for (NodeId host = 0; host < sensors_.size(); ++host) {
      for (const auto& [level, role] : sensors_[host].roles) {
        for (const auto& [object, owners] : role.replicas) {
          for (const auto& [owner, record] : owners) {
            if (!record.present) continue;
            bool backed = false;
            if (!is_node_dead(owner) && replica_owner_active(owner)) {
              const auto& roles = sensors_[owner].roles;
              const auto role_it = roles.find(level);
              backed = role_it != roles.end() &&
                       role_it->second.dl.count(object) != 0;
            }
            if (!backed) {
              out.push_back("object " + std::to_string(object) +
                            ": orphaned replica of owner " +
                            std::to_string(owner) + " at node " +
                            std::to_string(host) + " level " +
                            std::to_string(level));
            }
          }
        }
      }
    }
  }
  return out;
}

void DistributedMot::validate_quiescent() const {
  // A drained simulator implies a drained batch window: the flush event
  // was scheduled when the first update was staged.
  MOT_CHECK(staged_.empty());
  const std::vector<std::string> violations = invariant_violations();
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "[mot] invariant violation: %s\n",
                 violation.c_str());
  }
  MOT_CHECK(violations.empty());
}

namespace {

void set_counter(obs::MetricsRegistry& registry, const std::string& name,
                 const obs::Labels& labels, std::uint64_t value) {
  obs::Counter& counter = registry.counter(name, labels);
  counter.reset();
  counter.increment(value);
}

}  // namespace

void export_protocol_stats(const ProtocolStats& stats,
                           obs::MetricsRegistry& registry,
                           const obs::Labels& labels) {
  set_counter(registry, "mot_proto_messages_sent_total", labels,
              stats.messages_sent);
  set_counter(registry, "mot_proto_physical_hops_total", labels,
              stats.physical_hops);
  set_counter(registry, "mot_proto_messages_coalesced_total", labels,
              stats.messages_coalesced);
  set_counter(registry, "mot_proto_batch_flushes_total", labels,
              stats.batch_flushes);
  set_counter(registry, "mot_proto_publishes_total", labels,
              stats.publishes_completed);
  set_counter(registry, "mot_proto_moves_total", labels,
              stats.moves_completed);
  set_counter(registry, "mot_proto_queries_total", labels,
              stats.queries_completed);
  set_counter(registry, "mot_proto_queries_parked_total", labels,
              stats.queries_parked);
  set_counter(registry, "mot_proto_queries_redirected_total", labels,
              stats.queries_redirected);
  set_counter(registry, "mot_proto_queries_restarted_total", labels,
              stats.queries_restarted);
  set_counter(registry, "mot_proto_data_sent_total", labels,
              stats.data_sent);
  set_counter(registry, "mot_proto_retransmissions_total", labels,
              stats.retransmissions);
  set_counter(registry, "mot_proto_acks_sent_total", labels,
              stats.acks_sent);
  set_counter(registry, "mot_proto_duplicates_suppressed_total", labels,
              stats.duplicates_suppressed);
  registry.gauge("mot_proto_mean_ack_rtt", labels)
      .set(stats.mean_ack_rtt());
  registry.gauge("mot_proto_transport_distance", labels)
      .set(stats.transport_distance);
  set_counter(registry, "mot_proto_crash_recoveries_total", labels,
              stats.crash_recoveries);
  set_counter(registry, "mot_proto_chain_splices_total", labels,
              stats.chain_splices);
  set_counter(registry, "mot_proto_objects_rebuilt_total", labels,
              stats.objects_rebuilt);
  set_counter(registry, "mot_proto_queries_rescued_total", labels,
              stats.queries_rescued);
  set_counter(registry, "mot_proto_queries_aborted_total", labels,
              stats.queries_aborted);
  registry.gauge("mot_proto_recovery_distance", labels)
      .set(stats.recovery_distance);
  set_counter(registry, "mot_proto_queries_retried_total", labels,
              stats.queries_retried);
  set_counter(registry, "mot_proto_queries_hedged_total", labels,
              stats.queries_hedged);
  set_counter(registry, "mot_proto_queries_deadline_aborted_total", labels,
              stats.queries_deadline_aborted);
  set_counter(registry, "mot_proto_query_failovers_total", labels,
              stats.query_failovers);
  set_counter(registry, "mot_proto_replica_updates_total", labels,
              stats.replica_updates);
  set_counter(registry, "mot_proto_stale_query_drops_total", labels,
              stats.stale_query_drops);
  set_counter(registry, "mot_proto_stale_maintenance_drops_total", labels,
              stats.stale_maintenance_drops);
  set_counter(registry, "mot_proto_retransmits_suppressed_total", labels,
              stats.retransmits_suppressed);
  set_counter(registry, "mot_proto_messages_shed_total", labels,
              stats.messages_shed);
  set_counter(registry, "mot_proto_queries_degraded_total", labels,
              stats.queries_degraded);
  set_counter(registry, "mot_proto_sibling_redirects_total", labels,
              stats.sibling_redirects);
  set_counter(registry, "mot_proto_credit_stalls_total", labels,
              stats.credit_stalls);
  set_counter(registry, "mot_proto_breaker_trips_total", labels,
              stats.breaker_trips);
  set_counter(registry, "mot_proto_breaker_probes_total", labels,
              stats.breaker_probes);
  set_counter(registry, "mot_proto_breaker_closes_total", labels,
              stats.breaker_closes);
  set_counter(registry, "mot_proto_breaker_suppressed_total", labels,
              stats.breaker_suppressed);
  set_counter(registry, "mot_proto_window_increases_total", labels,
              stats.window_increases);
  set_counter(registry, "mot_proto_window_decreases_total", labels,
              stats.window_decreases);
  set_counter(registry, "mot_proto_divert_attempts_total", labels,
              stats.divert_attempts);
  set_counter(registry, "mot_proto_tuner_steps_total", labels,
              stats.tuner_steps);
  set_counter(registry, "mot_proto_replicas_placed_total", labels,
              stats.replicas_placed);
  set_counter(registry, "mot_proto_replicas_retired_total", labels,
              stats.replicas_retired);
}

}  // namespace mot::proto
