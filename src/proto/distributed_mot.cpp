#include "proto/distributed_mot.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mot::proto {

namespace {

constexpr int kMaxQueryRestarts = 1000;

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kPublish:
      return "publish";
    case MsgType::kInsert:
      return "insert";
    case MsgType::kDelete:
      return "delete";
    case MsgType::kQueryUp:
      return "query-up";
    case MsgType::kQueryDown:
      return "query-down";
    case MsgType::kQueryReply:
      return "query-reply";
    case MsgType::kSdlAdd:
      return "sdl-add";
    case MsgType::kSdlRemove:
      return "sdl-remove";
  }
  return "?";
}

DistributedMot::DistributedMot(const PathProvider& provider, Simulator& sim,
                               const ChainOptions& options)
    : provider_(&provider), sim_(&sim), options_(options),
      sensors_(provider.num_nodes()) {
  // Shortcut descent needs a node to read a remote chain locally, which a
  // message-passing node cannot do; the centralized engines model it.
  MOT_EXPECTS(!options.shortcut_descent);
}

Weight DistributedMot::distance(NodeId a, NodeId b) const {
  return a == b ? 0.0 : provider_->oracle().distance(a, b);
}

DistributedMot::SensorState& DistributedMot::local(NodeId node) {
  // The locality guard: only the node currently handling a message may
  // touch its state. This is what makes the runtime genuinely
  // distributed rather than conveniently centralized.
  MOT_CHECK(node == active_node_);
  return sensors_[node];
}

void DistributedMot::send(NodeId from, Message message, Weight* op_cost) {
  const NodeId to = message.role.node;
  const Weight hop = distance(from, to);
  ++stats_.messages_sent;
  if (router_ != nullptr && from != to) {
    // Hop-by-hop physical forwarding. With a shortest-path router the
    // route cost equals the oracle distance charged below, so the cost
    // model is realized rather than assumed.
    const std::vector<NodeId> route = router_->route(from, to);
    MOT_CHECK(!route.empty());  // the overlay requires deliverable routes
    stats_.physical_hops += route.size() - 1;
  }
  if (op_cost != nullptr && hop > 0.0) {
    meter_.charge(hop);
    *op_cost += hop;
  } else if (op_cost != nullptr) {
    meter_.charge(0.0, 1);
  }
  if (record_) {
    deliveries_.push_back({message, from, to, sim_->now(), hop});
  }
  sim_->schedule(hop, [this, message] { handle(message); });
}

void DistributedMot::handle(const Message& message) {
  MOT_CHECK(active_node_ == kInvalidNode);
  active_node_ = message.role.node;
  switch (message.type) {
    case MsgType::kPublish:
      on_publish(message);
      break;
    case MsgType::kInsert:
      on_insert(message);
      break;
    case MsgType::kDelete:
      on_delete(message);
      break;
    case MsgType::kQueryUp:
      on_query_up(message);
      break;
    case MsgType::kQueryDown:
      on_query_down(message);
      break;
    case MsgType::kQueryReply:
      on_query_reply(message);
      break;
    case MsgType::kSdlAdd:
      on_sdl_add(message);
      break;
    case MsgType::kSdlRemove:
      on_sdl_remove(message);
      break;
  }
  active_node_ = kInvalidNode;
}

DistributedMot::Entry* DistributedMot::find_entry(SensorState& sensor,
                                                  int level,
                                                  ObjectId object) {
  const auto role_it = sensor.roles.find(level);
  if (role_it == sensor.roles.end()) return nullptr;
  const auto dl_it = role_it->second.dl.find(object);
  return dl_it == role_it->second.dl.end() ? nullptr : &dl_it->second;
}

Weight* DistributedMot::move_cost(ObjectId object) {
  const auto it = moves_.find(object);
  return it == moves_.end() ? nullptr : &it->second.cost;
}

void DistributedMot::install_entry(const Message& message, NodeId self,
                                   std::optional<OverlayNode> sp,
                                   Weight* op_cost) {
  if (!options_.use_special_lists) sp.reset();
  RoleState& role = local(self).roles[message.role.level];
  MOT_CHECK(role.dl.count(message.object) == 0);
  role.dl.emplace(message.object, Entry{message.link, sp});
  if (sp) {
    Message add;
    add.type = MsgType::kSdlAdd;
    add.object = message.object;
    add.role = *sp;
    add.link = message.role;  // the special child registering itself
    send(self, add, options_.charge_special_updates ? op_cost : nullptr);
  }
}

// ---------------------------------------------------------------------------
// Publish
// ---------------------------------------------------------------------------

void DistributedMot::publish(ObjectId object, NodeId proxy) {
  MOT_EXPECTS(proxy < provider_->num_nodes());
  MOT_EXPECTS(proxies_.count(object) == 0);
  proxies_[object] = proxy;
  physical_[object] = proxy;
  ++inflight_;
  ++pending_publishes_;

  const auto sequence = provider_->upward_sequence(proxy);
  Message message;
  message.type = MsgType::kPublish;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel: child == self
  send(proxy, message, nullptr);
}

void DistributedMot::on_publish(const Message& message) {
  const NodeId self = message.role.node;
  install_entry(message, self,
                provider_->special_parent(message.walk_source,
                                          message.walk_index),
                nullptr);
  const auto sequence = provider_->upward_sequence(message.walk_source);
  if (message.walk_index + 1 >= sequence.size()) {
    ++stats_.publishes_completed;
    --pending_publishes_;
    --inflight_;
    return;
  }
  Message next = message;
  next.walk_index = message.walk_index + 1;
  next.role = sequence[next.walk_index].node;
  next.link = message.role;  // we become the child of the next stop
  Weight publish_cost = 0.0;  // publish cost goes to the meter only
  send(self, next, &publish_cost);
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void DistributedMot::move(ObjectId object, NodeId new_proxy,
                          MoveCallback done) {
  MOT_EXPECTS(new_proxy < provider_->num_nodes());
  MOT_EXPECTS(proxies_.count(object) != 0);
  // One-by-one execution: at most one maintenance operation per object.
  MOT_EXPECTS(moves_.count(object) == 0);
  if (physical_[object] == new_proxy) {
    if (done) sim_->schedule(0.0, [done] { done(MoveResult{}); });
    return;
  }
  // The object moves now; the structure catches up asynchronously.
  physical_[object] = new_proxy;
  MoveCtx ctx;
  ctx.to = new_proxy;
  ctx.done = std::move(done);
  auto [it, inserted] = moves_.emplace(object, std::move(ctx));
  MOT_CHECK(inserted);
  ++inflight_;

  const auto sequence = provider_->upward_sequence(new_proxy);
  Message message;
  message.type = MsgType::kInsert;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = new_proxy;
  message.walk_index = 0;
  message.link = sequence.front().node;  // sentinel if installed fresh
  message.new_proxy = new_proxy;
  send(new_proxy, message, &it->second.cost);
}

void DistributedMot::on_insert(const Message& message) {
  const NodeId self = message.role.node;
  const ObjectId object = message.object;
  auto move_it = moves_.find(object);
  MOT_CHECK(move_it != moves_.end());
  MoveCtx& ctx = move_it->second;

  Entry* entry = find_entry(local(self), message.role.level, object);
  if (entry != nullptr) {
    // Meet node: splice the chain onto the new fragment.
    const OverlayNode first_victim = entry->child;
    entry->child =
        message.walk_index == 0 ? message.role : message.link;
    ctx.peak_level = message.role.level;
    proxies_[object] = ctx.to;  // the move commits at the splice
    if (first_victim == message.role) {
      // The meet entry was the old proxy's sentinel (structural
      // ancestor/descendant move): nothing to tear.
      redirect_parked(self, object, ctx.to);
      finish_move(object);
      return;
    }
    Message del;
    del.type = MsgType::kDelete;
    del.object = object;
    del.role = first_victim;
    del.new_proxy = ctx.to;
    send(self, del, &ctx.cost);
    return;
  }

  install_entry(message, self,
                provider_->special_parent(message.walk_source,
                                          message.walk_index),
                &ctx.cost);
  const auto sequence = provider_->upward_sequence(message.walk_source);
  // The root always holds every published object, so the climb meets.
  MOT_CHECK(message.walk_index + 1 < sequence.size());
  Message next = message;
  next.walk_index = message.walk_index + 1;
  next.role = sequence[next.walk_index].node;
  next.link = message.role;
  send(self, next, &ctx.cost);
}

void DistributedMot::on_delete(const Message& message) {
  const NodeId self = message.role.node;
  const ObjectId object = message.object;
  Weight* cost = move_cost(object);
  MOT_CHECK(cost != nullptr);

  SensorState& sensor = local(self);
  auto role_it = sensor.roles.find(message.role.level);
  MOT_CHECK(role_it != sensor.roles.end());
  auto dl_it = role_it->second.dl.find(object);
  MOT_CHECK(dl_it != role_it->second.dl.end());
  const Entry entry = dl_it->second;
  role_it->second.dl.erase(dl_it);

  if (entry.sp) {
    Message remove;
    remove.type = MsgType::kSdlRemove;
    remove.object = object;
    remove.role = *entry.sp;
    remove.link = message.role;
    send(self, remove, options_.charge_special_updates ? cost : nullptr);
  }

  if (entry.child == message.role) {
    // Old proxy sentinel reached: redirect parked queries to the new
    // location the delete carries (Section 3), then the move is done.
    redirect_parked(self, object, message.new_proxy);
    finish_move(object);
    return;
  }
  Message next = message;
  next.role = entry.child;
  send(self, next, cost);
}

void DistributedMot::finish_move(ObjectId object) {
  auto it = moves_.find(object);
  MOT_CHECK(it != moves_.end());
  MoveCtx ctx = std::move(it->second);
  moves_.erase(it);
  --inflight_;
  ++stats_.moves_completed;
  if (ctx.done) {
    MoveResult result;
    result.cost = ctx.cost;
    result.peak_level = ctx.peak_level;
    ctx.done(result);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void DistributedMot::query(NodeId from, ObjectId object,
                           QueryCallback done) {
  MOT_EXPECTS(from < provider_->num_nodes());
  MOT_EXPECTS(proxies_.count(object) != 0);
  const std::uint64_t id = next_query_id_++;
  QueryCtx ctx;
  ctx.origin = from;
  ctx.object = object;
  ctx.done = std::move(done);
  queries_.emplace(id, std::move(ctx));
  ++inflight_;

  const auto sequence = provider_->upward_sequence(from);
  Message message;
  message.type = MsgType::kQueryUp;
  message.object = object;
  message.role = sequence.front().node;
  message.walk_source = from;
  message.walk_index = 0;
  message.requester = from;
  message.query_id = id;
  send(from, message, &queries_.at(id).cost);
}

void DistributedMot::on_query_up(const Message& message) {
  const NodeId self = message.role.node;
  auto ctx_it = queries_.find(message.query_id);
  MOT_CHECK(ctx_it != queries_.end());
  QueryCtx& ctx = ctx_it->second;

  SensorState& sensor = local(self);
  if (find_entry(sensor, message.role.level, message.object) != nullptr) {
    ctx.found_level = std::max(ctx.found_level, message.role.level);
    Message down = message;
    down.type = MsgType::kQueryDown;
    send(self, down, &ctx.cost);  // self-delivery, zero distance
    return;
  }
  if (options_.use_special_lists) {
    const auto role_it = sensor.roles.find(message.role.level);
    if (role_it != sensor.roles.end()) {
      const auto sdl_it = role_it->second.sdl.find(message.object);
      if (sdl_it != role_it->second.sdl.end() && !sdl_it->second.empty()) {
        const auto best = std::min_element(
            sdl_it->second.begin(), sdl_it->second.end(),
            [](const OverlayNode& a, const OverlayNode& b) {
              return a.level < b.level;
            });
        ctx.found_level = std::max(ctx.found_level, message.role.level);
        Message down = message;
        down.type = MsgType::kQueryDown;
        down.role = *best;
        send(self, down, &ctx.cost);
        return;
      }
    }
  }
  const auto sequence = provider_->upward_sequence(message.walk_source);
  MOT_CHECK(message.walk_index + 1 < sequence.size());
  Message next = message;
  next.walk_index = message.walk_index + 1;
  next.role = sequence[next.walk_index].node;
  send(self, next, &ctx.cost);
}

void DistributedMot::on_query_down(const Message& message) {
  const NodeId self = message.role.node;
  auto ctx_it = queries_.find(message.query_id);
  MOT_CHECK(ctx_it != queries_.end());
  QueryCtx& ctx = ctx_it->second;

  SensorState& sensor = local(self);
  Entry* entry = find_entry(sensor, message.role.level, message.object);
  if (entry == nullptr) {
    // The fragment was torn while we descended: climb again from here.
    ++stats_.queries_restarted;
    restart_query(message.query_id, self);
    return;
  }
  if (entry->child == message.role) {  // proxy sentinel
    if (physical_.at(message.object) == self) {
      finish_query(message.query_id, self);
      return;
    }
    // Stale proxy: the delete en route carries the new location; park.
    ++stats_.queries_parked;
    sensor.parked[message.object].push_back({message.query_id});
    return;
  }
  Message next = message;
  next.role = entry->child;
  send(self, next, &ctx.cost);
}

void DistributedMot::restart_query(std::uint64_t query_id, NodeId from) {
  auto ctx_it = queries_.find(query_id);
  MOT_CHECK(ctx_it != queries_.end());
  QueryCtx& ctx = ctx_it->second;
  ++ctx.restarts;
  MOT_CHECK(ctx.restarts < kMaxQueryRestarts);

  const auto sequence = provider_->upward_sequence(from);
  Message message;
  message.type = MsgType::kQueryUp;
  message.object = ctx.object;
  message.role = sequence.front().node;
  message.walk_source = from;
  message.walk_index = 0;
  message.requester = ctx.origin;
  message.query_id = query_id;
  send(from, message, &ctx.cost);
}

void DistributedMot::redirect_parked(NodeId self, ObjectId object,
                                     NodeId new_proxy) {
  SensorState& sensor = local(self);
  const auto it = sensor.parked.find(object);
  if (it == sensor.parked.end()) return;
  std::vector<ParkedQuery> parked = std::move(it->second);
  sensor.parked.erase(it);
  const OverlayNode target =
      provider_->upward_sequence(new_proxy).front().node;
  for (const ParkedQuery& waiting : parked) {
    ++stats_.queries_redirected;
    auto ctx_it = queries_.find(waiting.query_id);
    MOT_CHECK(ctx_it != queries_.end());
    Message down;
    down.type = MsgType::kQueryDown;
    down.object = object;
    down.role = target;
    down.requester = ctx_it->second.origin;
    down.query_id = waiting.query_id;
    send(self, down, &ctx_it->second.cost);
  }
}

void DistributedMot::finish_query(std::uint64_t query_id, NodeId proxy) {
  auto ctx_it = queries_.find(query_id);
  MOT_CHECK(ctx_it != queries_.end());
  // The reply travels home as a real message, but the locate cost (what
  // the paper's query cost ratio measures) excludes the response trip.
  Message reply;
  reply.type = MsgType::kQueryReply;
  reply.object = ctx_it->second.object;
  reply.role = {0, ctx_it->second.origin};
  reply.new_proxy = proxy;
  reply.query_id = query_id;
  Weight reply_cost = 0.0;
  send(proxy, reply, &reply_cost);  // metered, not attributed to the op
}

void DistributedMot::on_query_reply(const Message& message) {
  auto ctx_it = queries_.find(message.query_id);
  MOT_CHECK(ctx_it != queries_.end());
  QueryCtx ctx = std::move(ctx_it->second);
  queries_.erase(ctx_it);
  --inflight_;
  ++stats_.queries_completed;
  if (ctx.done) {
    QueryResult result;
    result.found = true;
    result.proxy = message.new_proxy;
    result.cost = ctx.cost;
    result.found_level = ctx.found_level;
    ctx.done(result);
  }
}

// ---------------------------------------------------------------------------
// SDL bookkeeping
// ---------------------------------------------------------------------------

void DistributedMot::on_sdl_add(const Message& message) {
  RoleState& role = local(message.role.node).roles[message.role.level];
  role.sdl[message.object].push_back(message.link);
}

void DistributedMot::on_sdl_remove(const Message& message) {
  SensorState& sensor = local(message.role.node);
  const auto role_it = sensor.roles.find(message.role.level);
  MOT_CHECK(role_it != sensor.roles.end());
  const auto sdl_it = role_it->second.sdl.find(message.object);
  MOT_CHECK(sdl_it != role_it->second.sdl.end());
  const auto pos = std::find(sdl_it->second.begin(), sdl_it->second.end(),
                             message.link);
  MOT_CHECK(pos != sdl_it->second.end());
  sdl_it->second.erase(pos);
  if (sdl_it->second.empty()) role_it->second.sdl.erase(sdl_it);
}

// ---------------------------------------------------------------------------

NodeId DistributedMot::proxy_of(ObjectId object) const {
  const auto it = proxies_.find(object);
  MOT_EXPECTS(it != proxies_.end());
  return it->second;
}

NodeId DistributedMot::physical_position(ObjectId object) const {
  const auto it = physical_.find(object);
  MOT_EXPECTS(it != physical_.end());
  return it->second;
}

std::vector<std::size_t> DistributedMot::load_per_node() const {
  std::vector<std::size_t> load(sensors_.size(), 0);
  for (NodeId v = 0; v < sensors_.size(); ++v) {
    for (const auto& [level, role] : sensors_[v].roles) {
      load[v] += role.dl.size();
      for (const auto& [object, children] : role.sdl) {
        load[v] += children.size();
      }
    }
  }
  return load;
}

void DistributedMot::validate_quiescent() const {
  MOT_CHECK(inflight_ == 0);
  for (const auto& [object, proxy] : proxies_) {
    std::size_t total = 0;
    for (const SensorState& sensor : sensors_) {
      for (const auto& [level, role] : sensor.roles) {
        total += role.dl.count(object);
      }
    }
    OverlayNode current = provider_->root_stop();
    std::size_t chain = 0;
    while (true) {
      MOT_CHECK(chain < total + 1);
      const auto& roles = sensors_[current.node].roles;
      const auto role_it = roles.find(current.level);
      MOT_CHECK(role_it != roles.end());
      const auto dl_it = role_it->second.dl.find(object);
      MOT_CHECK(dl_it != role_it->second.dl.end());
      ++chain;
      if (dl_it->second.child == current) {
        MOT_CHECK(current.node == proxy);
        break;
      }
      current = dl_it->second.child;
    }
    MOT_CHECK(chain == total);
  }
}

}  // namespace mot::proto
