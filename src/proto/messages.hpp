// Wire-level message vocabulary of the distributed MOT protocol
// (footnote 2 of the paper: Algorithm 1 "can be immediately converted to
// a message-passing based distributed algorithm by modifying the
// procedures from the perspective of what a node does when it receives a
// publish, maintenance, or query message").
//
// Every message is addressed to a specific *role* of a sensor (its
// level-l overlay identity); walker state that the centralized engines
// keep in C++ objects travels inside the messages instead.
//
// Handlers may assume effectively-once delivery: when the runtime rides
// an unreliable channel (src/faults/), its link layer wraps each message
// in a sequence-numbered DATA frame, retransmits until acked, and
// suppresses duplicates at the receiver, so the vocabulary here needs no
// idempotence of its own. Ordering between independent messages is NOT
// guaranteed under reordering faults — only SdlAdd/SdlRemove pairs need
// (and get) special handling via tombstones.
#pragma once

#include <cstdint>

#include "hier/hierarchy.hpp"
#include "tracking/tracker.hpp"

namespace mot::proto {

enum class MsgType : std::uint8_t {
  kPublish,     // climb and install entries up to the root
  kInsert,      // climb, install, splice at the meet (maintenance, up)
  kDelete,      // tear the detached fragment (maintenance, down)
  kQueryUp,     // climb looking for DL/SDL
  kQueryDown,   // descend chain pointers toward the proxy
  kQueryReply,  // result traveling back to the requester
  kSdlAdd,      // register a special child with its special parent
  kSdlRemove,   // deregister on delete
  // Detection-list replication (opt-in, see replicate_detection_lists):
  // each DL write is mirrored to a deterministically rehashed replica
  // slot so queries can fail over when the primary is unreachable.
  kReplicaAdd,         // upsert a replica record (walk_index = version)
  kReplicaRemove,      // retract a replica record (walk_index = version)
  kQueryDownReplica,   // descend via the replica of an unreachable stop
};

const char* msg_type_name(MsgType type);

struct Message {
  MsgType type = MsgType::kPublish;
  ObjectId object = 0;

  // Role the message is addressed to. The physical destination is
  // role.node; the handler must touch only that node's state.
  OverlayNode role;

  // Climbing state (kPublish / kInsert / kQueryUp): the bottom node whose
  // upward sequence is being walked and the index of `role` within it.
  NodeId walk_source = kInvalidNode;
  std::uint32_t walk_index = 0;

  // Chain state: the previous overlay stop (the child to record), or the
  // next victim for kDelete / next hop for kQueryDown.
  OverlayNode link;

  // kDelete carries the object's new proxy so queries parked at the old
  // proxy can be redirected (Section 3). kQueryReply carries the located
  // proxy as well.
  NodeId new_proxy = kInvalidNode;

  // Querying: who asked, so the reply can travel home.
  NodeId requester = kInvalidNode;
  std::uint64_t query_id = 0;

  // Graceful degradation (kQueryReply only): the answer came from an
  // overloaded node's last-known detection entry instead of the proxy
  // sentinel, and is stale by at most `staleness` distance.
  bool degraded = false;
  Weight staleness = 0.0;

  // Cluster mode (src/netio/): when a walker crosses a shard boundary its
  // per-operation context travels with it — accumulated communication
  // cost and the peak/found level — because no single process holds the
  // MoveCtx/QueryCtx for a walk that spans OS processes. Always zero in
  // single-process runs (the context lives in the runtime's maps).
  Weight op_cost = 0.0;
  std::int32_t op_peak = 0;

  // Causal trace context (src/obs/): the walk's deterministic trace id,
  // this hop's span id, and the walk's span-allocator cursor, so the
  // owning shard resumes the same span tree after a cross-process hop.
  // Always zero when no trace sink is installed, keeping untraced wire
  // bytes bit-identical (the fields are omitted-by-default on the wire).
  std::uint64_t trace_id = 0;
  std::uint64_t span = 0;
  std::uint64_t span_seq = 0;

  bool operator==(const Message&) const = default;
};

// Number of MsgType values (dense from kPublish), for wire fuzzing and
// tag validation.
inline constexpr std::uint8_t kNumMsgTypes =
    static_cast<std::uint8_t>(MsgType::kQueryDownReplica) + 1;

// Per-message accounting record (for protocol traces and tests).
struct Delivery {
  Message message;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double send_time = 0.0;
  Weight distance = 0.0;
};

}  // namespace mot::proto
