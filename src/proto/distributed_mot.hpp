// The message-passing form of Algorithm 1 (footnote 2 of the paper).
//
// Unlike ChainTracker (a centralized walk over the structure) and
// ConcurrentEngine (centralized state, event-timed walkers), this runtime
// stores every detection-list entry at the sensor that owns it and makes
// ALL coordination travel in typed messages (proto::Message) over the
// discrete-event simulator. A handler may only touch the state of the
// node a message was delivered to — enforced at runtime by a locality
// guard — so the implementation is a constructive proof that the
// algorithm runs distributed.
//
// Routing knowledge: a node handling a climbing message computes the next
// stop of the walk from the PathProvider, which stands in for the local
// routing tables (parents, parent sets) every node keeps after the
// hierarchy construction phase.
//
// Execution model: maintenance operations execute one-by-one per object
// (the paper's Section 4.1.1 case; enforce_one_by_one asserts it).
// Queries may overlap maintenance: a query that lands on a stale proxy
// parks there and is redirected by the delete message that carries the
// new location (Section 3).
//
// Fault tolerance (src/faults/): attaching a Channel via use_channel()
// engages a reliable link layer — every inter-node message becomes a
// sequence-numbered DATA frame that is retransmitted on a capped
// exponential-backoff timer until an ACK returns, and the receiver
// suppresses duplicate sequence numbers, so delivery over a dropping /
// duplicating / reordering channel is at-least-once + dedup =
// effectively-once. Crash-stop node failures (announced, Section 7)
// trigger recovery: chains through the dead sensor are spliced, objects
// with a maintenance walker lost in the crash are rebuilt from their
// physical position, and stranded queries are restarted from their
// origin. Without a channel the runtime behaves exactly as before —
// bit-identical costs and placement versus the centralized engine.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/router.hpp"
#include "obs/metrics_registry.hpp"
#include "overload/circuit_breaker.hpp"
#include "proto/messages.hpp"
#include "sim/channel.hpp"
#include "sim/cost_meter.hpp"
#include "sim/event_sim.hpp"
#include "sim/service_model.hpp"
#include "tracking/chain_tracker.hpp"
#include "tracking/path_provider.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"

namespace mot::adapt {
class AdaptiveController;
}

namespace mot::proto {

class ClusterLink;

struct ProtocolStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t physical_hops = 0;  // per-edge forwards when routed
  // Batched-maintenance counters (zero unless use_batching is on):
  // maintenance updates that rode an edge frame another update already
  // paid for, and the number of flush windows executed.
  std::uint64_t messages_coalesced = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t publishes_completed = 0;
  std::uint64_t moves_completed = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_parked = 0;
  std::uint64_t queries_redirected = 0;
  std::uint64_t queries_restarted = 0;

  // Reliable-transport counters: all zero unless a Channel is attached.
  std::uint64_t data_sent = 0;               // logical inter-node frames
  std::uint64_t retransmissions = 0;         // timeout-driven resends
  std::uint64_t acks_sent = 0;               // receiver acknowledgements
  std::uint64_t duplicates_suppressed = 0;   // dedup hits at the receiver
  double ack_rtt_sum = 0.0;                  // send -> first-ack times
  std::uint64_t ack_rtt_count = 0;
  Weight transport_distance = 0.0;           // retransmit + ack distance

  // Crash-recovery counters.
  std::uint64_t crash_recoveries = 0;   // dead sensors recovered from
  std::uint64_t chain_splices = 0;      // entries bypassed around the dead
  std::uint64_t objects_rebuilt = 0;    // chains re-published after a loss
  std::uint64_t queries_rescued = 0;    // restarted because of a crash
  std::uint64_t queries_aborted = 0;    // their requester died
  Weight recovery_distance = 0.0;       // repair/rebuild message distance

  // Query-resilience counters (deadline policy, hedging, DL replication,
  // partition carrier sense). All zero with the default configuration.
  std::uint64_t queries_retried = 0;           // deadline-driven re-issues
  std::uint64_t queries_hedged = 0;            // hedged duplicate walkers
  std::uint64_t queries_deadline_aborted = 0;  // retry budget exhausted
  std::uint64_t query_failovers = 0;           // replica-slot descents
  std::uint64_t replica_updates = 0;           // DL writes mirrored out
  std::uint64_t stale_query_drops = 0;         // losing-walker messages
  std::uint64_t stale_maintenance_drops = 0;   // handoffs gated by rebuild
  std::uint64_t retransmits_suppressed = 0;    // resends parked at a cut

  // Overload-resilience counters (all zero unless use_overload engages a
  // ServiceModel): receiver-side admission sheds, degraded answers,
  // sibling redirects, sender-side credit stalls, and the per-link
  // circuit-breaker lifecycle.
  std::uint64_t messages_shed = 0;       // refused by admission (no ack)
  std::uint64_t queries_degraded = 0;    // answered from a stale entry
  std::uint64_t sibling_redirects = 0;   // descents diverted to siblings
  std::uint64_t credit_stalls = 0;       // frames parked awaiting credit
  std::uint64_t breaker_trips = 0;       // breakers opened (or re-opened)
  std::uint64_t breaker_probes = 0;      // half-open probes elected
  std::uint64_t breaker_closes = 0;      // probes that closed a breaker
  std::uint64_t breaker_suppressed = 0;  // sends parked at an open breaker

  // Adaptive control-plane counters (all zero unless use_adaptive):
  // AIMD credit-window moves, query descents that found their next hop
  // overloaded (the placement demand gauge), applied tuner steps, and
  // the load-aware replica placement lifecycle.
  std::uint64_t window_increases = 0;
  std::uint64_t window_decreases = 0;
  std::uint64_t divert_attempts = 0;
  std::uint64_t tuner_steps = 0;
  std::uint64_t replicas_placed = 0;
  std::uint64_t replicas_retired = 0;

  double mean_ack_rtt() const {
    return ack_rtt_count == 0 ? 0.0 : ack_rtt_sum / ack_rtt_count;
  }

  bool operator==(const ProtocolStats&) const = default;
};

// Projects a stats snapshot into a metrics registry (see
// obs/metrics_registry.hpp). Idempotent: counters are reset before being
// set, so re-exporting does not double-count.
void export_protocol_stats(const ProtocolStats& stats,
                           obs::MetricsRegistry& registry,
                           const obs::Labels& labels = {});

// End-to-end query resilience knobs. All disabled by default, in which
// case the runtime behaves bit-identically to the legacy configuration.
struct QueryPolicy {
  // A query that has not answered within `deadline` simulator time is
  // re-issued from its origin; after `max_attempts` total attempts it is
  // aborted explicitly (done fires with found = false). 0 disables.
  double deadline = 0.0;
  int max_attempts = 3;
  // Each re-issue waits deadline * backoff^attempt (capped at 64x).
  double backoff = 2.0;
  // When > 0, a second walker with the same query id is issued from the
  // origin after this delay unless the query already answered; the first
  // reply wins and the loser is dropped as stale. 0 disables.
  double hedge_delay = 0.0;
};

class DistributedMot {
 public:
  using MoveCallback = std::function<void(const MoveResult&)>;
  using QueryCallback = std::function<void(const QueryResult&)>;

  // `provider` and `sim` must outlive the runtime.
  DistributedMot(const PathProvider& provider, Simulator& sim,
                 const ChainOptions& options);

  // Injects a publish message at the proxy. Runs asynchronously; drive
  // the simulator to completion before relying on the structure.
  void publish(ObjectId object, NodeId proxy);

  // Starts a maintenance operation. At most one in flight per object
  // (one-by-one case); violating that is a precondition failure.
  void move(ObjectId object, NodeId new_proxy, MoveCallback done = {});

  // Starts a query; may overlap an in-flight move of the same object.
  void query(NodeId from, ObjectId object, QueryCallback done = {});

  // The committed proxy (updated when the move's insert splices).
  NodeId proxy_of(ObjectId object) const;

  // Where the object physically is (moves take effect when issued;
  // queries are answered against this, chasing if necessary).
  NodeId physical_position(ObjectId object) const;

  const CostMeter& meter() const { return meter_; }
  const ProtocolStats& stats() const { return stats_; }
  std::size_t inflight_operations() const { return inflight_; }

  // Storage load per sensor: every DL/SDL entry lives at its owner node.
  std::vector<std::size_t> load_per_node() const;

  // Attach a physical routing layer: every overlay message is forwarded
  // hop by hop along router-provided paths and the per-edge forwards are
  // counted in stats().physical_hops. With a shortest-path router the
  // total distance is unchanged (the cost model's assumption, asserted by
  // tests). The router must outlive the runtime. Physical hops are
  // counted once per logical message (retransmissions reuse the route).
  void use_router(const Router* router) { router_ = router; }

  // Attach a delivery channel (typically faults::UnreliableChannel) and
  // engage the reliable link layer plus crash recovery. Attach before
  // injecting any traffic; the channel must outlive the runtime.
  void use_channel(Channel* channel);

  // Engage the end-to-end query deadline / retry / hedge policy.
  void set_query_policy(const QueryPolicy& policy) { policy_ = policy; }

  // Batched maintenance (opt-in): detection-list updates staged by
  // maintenance walkers (publish / insert / delete / SDL bookkeeping)
  // are coalesced per directed edge per batch window — one metered
  // message per edge carries every update staged toward that neighbor,
  // the co-riders travel free (stats().messages_coalesced) — and the
  // window flushes in one deterministic sweep of rounds, so climbs of
  // different objects that share tree-path prefixes merge their traffic.
  // Queries are never staged. Only meaningful in single-process,
  // non-channel mode; enable before injecting traffic. Costs still
  // reconcile: the sum of traced `charged` equals the meter total.
  void use_batching(bool on);
  bool batching() const { return batching_; }

  // Attach a finite-capacity service model (see sim/service_model.hpp):
  // delivered frames pass admission control and queue at the receiver
  // instead of executing instantly, a shed frame is simply never acked
  // (the sender's retransmission is the retry — backpressure, not loss),
  // acks carry the receiver's headroom as a credit grant that caps the
  // sender's outstanding window per destination, consecutive genuine
  // timeouts trip a per-link circuit breaker, overloaded nodes answer
  // queries degraded, and hot next hops are bypassed via their replica
  // sibling. Requires a channel; attach before injecting traffic. The
  // model must span provider.num_nodes() nodes and outlive the runtime.
  void use_overload(ServiceModel* service);
  const ServiceModel* service_model() const { return service_; }

  // --- Cluster mode (src/netio/): this runtime is one shard of a ------
  // multi-process deployment. The link decides node ownership; messages
  // to foreign nodes are forwarded with their walker context embedded
  // (op_cost / op_peak in proto::Message) instead of being scheduled
  // locally. Single-process behavior is bit-identical when no link is
  // attached. The link must outlive the runtime.
  void use_cluster(ClusterLink* link) {
    MOT_EXPECTS(!batching_);  // the shard transport owns delivery
    cluster_ = link;
  }

  // Object-position broadcast: every shard mirrors proxies_/physical_
  // bookkeeping before an operation is injected anywhere, so sentinel
  // checks and preconditions hold on whichever shard the walker visits.
  void cluster_note_position(ObjectId object, NodeId position);

  // Operation injection on the shard owning the proxy / origin. These
  // mirror publish()/move()/query() minus the position writes (already
  // broadcast) and with coordinator-assigned query ids (per-shard
  // counters would collide).
  void cluster_publish(ObjectId object, NodeId proxy);
  void cluster_move(ObjectId object, NodeId new_proxy);
  void cluster_query(NodeId origin, ObjectId object,
                     std::uint64_t query_id);

  // Delivery of a forwarded message from a peer shard: re-materializes
  // the walker context carried in the message and schedules the handler.
  void cluster_inject(const Message& message, NodeId from);

  // Mirror every detection-list write to a deterministically rehashed
  // replica slot so queries whose next chain hop is unreachable (crashed
  // or across a partition) can fail over to the replica. Enable before
  // injecting any traffic.
  void replicate_detection_lists(bool on);

  // Load-aware placed replication: the replica machinery (same slots,
  // same versioned updates, same failover/sibling-redirect paths) is
  // armed, but replicas exist only for owners the adaptive controller
  // has placed — apply_replica_placements() mirrors an owner's live
  // entries into its slot and retirement retracts them. Enable before
  // injecting any traffic; mutually exclusive with full replication.
  void replicate_placed();

  // Attach the adaptive control plane (src/adapt/). Requires an attached
  // ServiceModel; the controller must outlive the runtime. With a
  // controller attached the reliable link layer clamps credit grants to
  // the controller's per-link AIMD cap instead of the static max_window,
  // and adaptive_step() advances the tuner/placement state. Without this
  // call the runtime is byte-identical to the static configuration.
  void use_adaptive(adapt::AdaptiveController* controller);
  const adapt::AdaptiveController* adaptive() const { return adapt_; }

  // One control-plane step, legal only at a quiescence point (no
  // in-flight operations or unacked frames): feeds the epoch's per-node
  // load signals to the gradient tuner and applies the returned
  // operating points, plans replica placement/retirement from the
  // divert gauges, and resets the epoch accumulators.
  void adaptive_step();

  // Applies a placement plan directly (also the restart-restore path:
  // the chaos runner re-applies the controller's placed set after a
  // teardown). Place mirrors every live detection-list entry of the
  // owner into its replica slot; retire retracts the slot's records.
  void apply_replica_placements(const std::vector<NodeId>& place,
                                const std::vector<NodeId>& retire);
  std::size_t placed_replica_count() const { return placed_.size(); }

  // Per-node divert gauge for the current epoch: query descents whose
  // next chain hop was overloaded when they reached it.
  const std::vector<std::uint64_t>& divert_attempts_by_node() const {
    return divert_attempts_;
  }
  // Per-node degraded-answer gauge for the current epoch: the goodput
  // the tuner must not trade sheds against.
  const std::vector<std::uint64_t>& degraded_by_node() const {
    return degraded_by_node_;
  }

  // Controller operating point -> labeled gauges (credit_window{link},
  // red_threshold{node}, replica_count), plus the controller counters.
  void export_adaptive_state(obs::MetricsRegistry& registry) const;

  // Opt-in durability (src/durable/): every effective DL/SDL/proxy
  // mutation a handler performs is forwarded to `sink` as one semantic
  // journal record, in execution order. Off by default; a null sink
  // detaches. The hook is a single branch per mutation, so disabled
  // runs are bit-identical to pre-durability builds. `sink` must
  // outlive the runtime (or be detached first). Not supported in
  // cluster mode (each shard would need its own store).
  void use_durability(durable::Sink* sink) {
    MOT_EXPECTS(inflight_ == 0);
    MOT_EXPECTS(cluster_ == nullptr);
    durable_ = sink;
  }

  // Canonical image of the durable state: detection lists, SDLs, proxy
  // and physical maps. Replica stores, tombstones (empty at quiescence)
  // and parked queries are runtime state, not durable state — replicas
  // are re-derived on restore. Call at quiescence only.
  durable::StateImage export_durable_image() const;

  // Replaces all tracking state with `image` (restore path). Stats and
  // the meter are not durable state and are left untouched; replica
  // stores are rebuilt from the restored lists when replication is on.
  void restore_durable_image(const durable::StateImage& image);

  // Non-aborting quiescent invariant audit: returns one human-readable
  // line per violated invariant (empty = healthy). Checks what
  // validate_quiescent() asserts plus orphaned-entry and replica
  // consistency. The chaos explorer calls this at quiescence points.
  std::vector<std::string> invariant_violations() const;

  // Test-only fault: when enabled, crash recovery "forgets" to erase the
  // victim's sensor state, leaving orphaned detection-list entries for
  // invariant_violations() to catch. Exists so the chaos explorer's
  // bug-detection and schedule-shrinking paths can be exercised against
  // a real, deterministic recovery defect.
  void break_recovery_for_tests(bool on) { break_recovery_ = on; }

  // Optional wire trace for debugging / tests.
  void record_deliveries(bool on) { record_ = on; }
  const std::vector<Delivery>& deliveries() const { return deliveries_; }

  // Quiescent check: per object, entries form one root -> proxy chain,
  // no unacknowledged transfers linger, and SDL bookkeeping is settled.
  void validate_quiescent() const;

  // Objects whose detection chain currently stores an entry at any of
  // `node`'s overlay roles (introspection for fault tests and benches).
  std::vector<ObjectId> objects_through(NodeId node) const;

  // Outstanding reliable-transport frames awaiting acknowledgement.
  std::size_t pending_transfers() const { return pending_.size(); }

 private:
  struct Entry {
    OverlayNode child;
    std::optional<OverlayNode> sp;
  };
  // One replicated DL record hosted on behalf of another role. Versioned
  // last-writer-wins: replica updates are unordered messages, so each
  // carries the owner's monotone per-(role, object) version and only a
  // newer version may overwrite (or retract) the record.
  struct ReplicaRecord {
    OverlayNode child;
    std::uint32_t version = 0;
    bool present = false;
  };
  struct RoleState {
    // Flat open-addressed storage (util/flat_map.hpp): the hot-path map
    // every climb hop probes.
    FlatMap<ObjectId, Entry> dl;
    std::unordered_map<ObjectId, std::vector<OverlayNode>> sdl;
    // Reordering guard: an SdlRemove that overtakes its SdlAdd leaves a
    // tombstone the late add annihilates against (empty at quiescence).
    std::unordered_map<ObjectId, std::vector<OverlayNode>> sdl_tombstones;
    // Replicas hosted here, per object per owner node (the owner's level
    // equals this role's level). Only populated when replication is on.
    std::unordered_map<ObjectId, std::unordered_map<NodeId, ReplicaRecord>>
        replicas;
    // Owner-side version counters for replica updates. Never erased on
    // delete so a delete-then-reinstall cannot reuse a version.
    std::unordered_map<ObjectId, std::uint32_t> replica_versions;
  };
  struct ParkedQuery {
    std::uint64_t query_id = 0;
  };
  struct SensorState {
    // One state slice per overlay level this sensor plays.
    std::unordered_map<int, RoleState> roles;
    // Queries parked at this sensor waiting for a delete, per object.
    std::unordered_map<ObjectId, std::vector<ParkedQuery>> parked;
  };

  // Causal trace state of one walk: the deterministic trace id plus the
  // span allocator and the cursor the next spine hop hangs off. Travels
  // with the walk's context across shard boundaries (span/span_seq wire
  // fields) so a distributed walk emits one connected span tree. All
  // zero — and never consulted — unless a trace sink is installed.
  struct TraceCtx {
    std::uint64_t trace_id = 0;
    std::uint64_t next_span = 1;  // next span id to hand out
    std::uint64_t last_span = 0;  // latest spine hop = parent of the next
  };
  struct MoveCtx {
    NodeId to = kInvalidNode;
    Weight cost = 0.0;
    int peak_level = 0;
    TraceCtx trace;
    MoveCallback done;
  };
  struct QueryCtx {
    NodeId origin = kInvalidNode;
    ObjectId object = 0;
    Weight cost = 0.0;
    int found_level = 0;
    int restarts = 0;
    // Deadline policy state: attempts burned, hedge issued, and the
    // generation of the live watchdog (stale watchdogs no-op on
    // mismatch, which stands in for timer cancellation).
    int attempt = 0;
    bool hedged = false;
    std::uint64_t watchdog_gen = 0;
    TraceCtx trace;
    QueryCallback done;
  };

  // One unacknowledged DATA frame of the reliable link layer.
  struct PendingTransfer {
    Message message;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    Weight dist = 0.0;
    double rto = 0.0;  // current retransmission timeout
    int attempts = 0;
    SimTime first_send = 0.0;
    // Overload bookkeeping: whether the frame occupies a slot of its
    // destination's credit window, and whether its pending wakeup belongs
    // to a frame the breaker parked (never on the wire that round, so the
    // wakeup must not be reported to the breaker as a link failure).
    bool counted_outstanding = false;
    bool breaker_parked = false;
  };

  // Sender-side credit state toward one destination node. `window` is
  // the receiver's last advertised headroom (clamped to [1, max_window]);
  // frames beyond it park in `stalled` untransmitted, with no timer, and
  // are released as acks or poisoning free slots.
  struct LinkCredit {
    std::size_t window = 0;  // 0 = not yet initialized from the config
    std::size_t outstanding = 0;
    std::deque<std::uint64_t> stalled;
  };

  // Locality-guarded access to a sensor's state: only legal for the node
  // currently handling a message.
  SensorState& local(NodeId node);

  void send(NodeId from, Message message, Weight* op_cost);
  void handle(const Message& message);
  void forward_remote(NodeId from, Message message);

  // --- Batched maintenance (engaged when batching_ is on). -------------
  // One staged detection-list update: the message plus whether an
  // op-cost sink was attached at send time. The sink itself is NOT
  // stored (it may point at a caller's stack frame); it is re-resolved
  // against moves_ when the flush delivers the message.
  struct StagedUpdate {
    Message message;
    NodeId from = kInvalidNode;
    bool billable = false;
  };
  void flush_batches();

  // Trace context of the walk `message` belongs to (nullptr when the
  // walk is not traced or not resident on this shard), and the
  // deterministic trace-id derivations — identical on every shard, see
  // the definitions for how the per-object op counter stays in sync.
  TraceCtx* trace_ctx_for(const Message& message);
  std::uint64_t make_op_trace_id(ObjectId object,
                                 std::uint64_t seq) const;
  std::uint64_t make_query_trace_id(std::uint64_t query_id) const;

  void on_publish(const Message& message);
  void on_insert(const Message& message);
  void on_delete(const Message& message);
  void on_query_up(const Message& message);
  void on_query_down(const Message& message);
  void on_query_reply(const Message& message);
  void on_sdl_add(const Message& message);
  void on_sdl_remove(const Message& message);
  void on_replica_add(const Message& message);
  void on_replica_remove(const Message& message);
  void on_query_down_replica(const Message& message);

  Entry* find_entry(SensorState& sensor, int level, ObjectId object);
  void install_entry(const Message& message, NodeId self,
                     std::optional<OverlayNode> sp, Weight* op_cost);
  Weight* move_cost(ObjectId object);

  void finish_move(ObjectId object);
  void finish_query(std::uint64_t query_id, NodeId proxy);
  void restart_query(std::uint64_t query_id, NodeId from);
  void redirect_parked(NodeId self, ObjectId object, NodeId new_proxy);

  // --- Query resilience (deadline policy + DL replication). ------------
  bool link_unreachable(NodeId from, NodeId to) const;
  void arm_query_watchdog(std::uint64_t query_id);
  void on_query_deadline(std::uint64_t query_id, std::uint64_t gen);
  void hedge_query(std::uint64_t query_id);
  void issue_query_walker(std::uint64_t query_id);
  NodeId replica_of(OverlayNode role, ObjectId object) const;
  std::uint64_t rebuild_epoch(ObjectId object) const {
    const auto it = rebuild_epoch_.find(object);
    return it == rebuild_epoch_.end() ? 0 : it->second;
  }
  void send_replica_update(NodeId self, int level, ObjectId object,
                           OverlayNode child, bool present);
  void rebuild_replicas();

  Weight distance(NodeId a, NodeId b) const;

  // Forwards one semantic op to the durability sink, if attached.
  void journal(const durable::JournalRecord& record) {
    if (durable_ != nullptr) durable_->record(record);
  }

  // --- Reliable link layer (engaged when channel_ != nullptr). ---------
  bool is_node_dead(NodeId node) const;
  std::size_t next_alive_index(std::span<const PathStop> sequence,
                               std::size_t index) const;
  std::size_t next_reachable_index(NodeId self,
                                   std::span<const PathStop> sequence,
                                   std::size_t index) const;
  void transmit_data(std::uint64_t seq);
  void deliver_data(std::uint64_t seq, const Message& message, NodeId from,
                    NodeId to, Weight dist, int attempt);
  void on_ack(std::uint64_t seq);
  void on_transfer_timeout(std::uint64_t seq);

  // --- Overload resilience (engaged when service_ != nullptr). ---------
  static overload::Priority classify(MsgType type, int attempt);
  // The sender-side credit-window ceiling toward `to`: the static
  // max_window, or the AIMD controller's current per-link cap.
  std::size_t window_cap(NodeId to) const;
  LinkCredit& credit_for(NodeId to);
  overload::CircuitBreaker& breaker_for(NodeId from, NodeId to);
  void on_ack_credit(std::uint64_t seq, std::size_t grant);
  void pump_stalled(NodeId to);
  void poison_transfer(std::uint64_t seq);
  void poison_query_transfers(std::uint64_t query_id);
  void poison_object_transfers(ObjectId object);

  // --- Crash recovery (Section 7, crash-stop). -------------------------
  void recover_from_crash(NodeId victim);
  void splice_around(NodeId victim);
  void rebuild_object(ObjectId object,
                      std::vector<std::uint64_t>* queries_to_restart);
  void erase_parked_records(std::uint64_t query_id);

  const PathProvider* provider_;
  Simulator* sim_;
  ChainOptions options_;
  CostMeter meter_;
  ProtocolStats stats_;

  std::vector<SensorState> sensors_;
  NodeId active_node_ = kInvalidNode;  // locality guard

  std::unordered_map<ObjectId, NodeId> proxies_;   // committed (at splice)
  std::unordered_map<ObjectId, NodeId> physical_;  // actual (at issue)
  std::unordered_map<ObjectId, MoveCtx> moves_;  // at most one per object
  std::unordered_set<ObjectId> publishing_;      // publishes in flight
  std::unordered_map<std::uint64_t, QueryCtx> queries_;
  // Trace state of in-flight publishes (publishes have no MoveCtx to
  // embed it in) and the per-object operation counter trace ids derive
  // from. The counter is bumped on every publish/move issue — in
  // cluster mode via cluster_note_position, which reaches every shard
  // before the walker starts, so all shards agree on it. Only
  // maintained while a trace sink is installed.
  std::unordered_map<ObjectId, TraceCtx> publish_trace_;
  std::unordered_map<ObjectId, std::uint64_t> op_trace_seq_;
  // Bumped when crash recovery rebuilds an object, so queued local
  // handoffs of the torn operation drop themselves (see send()).
  std::unordered_map<ObjectId, std::uint64_t> rebuild_epoch_;
  std::uint64_t next_query_id_ = 1;
  std::size_t inflight_ = 0;

  const Router* router_ = nullptr;
  Channel* channel_ = nullptr;
  ClusterLink* cluster_ = nullptr;
  ServiceModel* service_ = nullptr;
  std::unordered_map<NodeId, LinkCredit> credit_;
  std::unordered_map<std::uint64_t, overload::CircuitBreaker> breakers_;
  QueryPolicy policy_;
  durable::Sink* durable_ = nullptr;
  // Replication can mirror every owner (kAll, the PR 5 behavior) or only
  // the owners the adaptive controller placed (kPlaced).
  enum class ReplicaMode { kOff, kAll, kPlaced };
  bool replicating() const { return replica_mode_ != ReplicaMode::kOff; }
  // Whether `owner`'s detection-list writes are mirrored to its slot.
  bool replica_owner_active(NodeId owner) const {
    return replica_mode_ == ReplicaMode::kAll ||
           (replica_mode_ == ReplicaMode::kPlaced &&
            placed_.find(owner) != placed_.end());
  }
  ReplicaMode replica_mode_ = ReplicaMode::kOff;
  std::unordered_set<NodeId> placed_;
  adapt::AdaptiveController* adapt_ = nullptr;
  std::vector<std::uint64_t> divert_attempts_;
  std::vector<std::uint64_t> degraded_by_node_;
  bool break_recovery_ = false;
  // Batching state: staged maintenance updates of the open window, the
  // pending-flush latch, and the arena the flush's round copies and
  // group tables live in (reset when the window drains — quiescence).
  bool batching_ = false;
  bool flush_scheduled_ = false;
  std::vector<StagedUpdate> staged_;
  Arena batch_arena_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, PendingTransfer> pending_;
  std::unordered_set<std::uint64_t> delivered_;  // receiver-side dedup
  std::unordered_set<std::uint64_t> poisoned_;   // cancelled by recovery
  bool record_ = false;
  std::vector<Delivery> deliveries_;
};

}  // namespace mot::proto
