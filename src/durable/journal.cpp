#include "durable/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "durable/version.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "wire/codec.hpp"

namespace mot::durable {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4a544f4du;  // 'MOTJ' LE
constexpr std::size_t kHeaderBytes = 5;               // magic + version
constexpr std::size_t kFrameHeaderBytes = 8;          // len + crc
// No single semantic op comes close to this; a longer length prefix is
// corruption, not a big record.
constexpr std::uint32_t kMaxRecordBytes = 1u << 16;

// Payload field ids (tagged; unknown ids are skipped by old readers).
enum Field : std::uint32_t {
  kFieldOp = 1,
  kFieldObject = 2,
  kFieldRoleLevel = 3,
  kFieldRoleNode = 4,
  kFieldChildLevel = 5,
  kFieldChildNode = 6,
  kFieldHasSp = 7,
  kFieldSpLevel = 8,
  kFieldSpNode = 9,
  kFieldNode = 10,
};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

const char* journal_op_name(JournalOp op) {
  switch (op) {
    case JournalOp::kPublish: return "publish";
    case JournalOp::kInsert: return "insert";
    case JournalOp::kDelete: return "delete";
    case JournalOp::kSdlAdd: return "sdl_add";
    case JournalOp::kSdlRemove: return "sdl_remove";
    case JournalOp::kSplice: return "splice";
    case JournalOp::kSpClear: return "sp_clear";
    case JournalOp::kProxy: return "proxy";
    case JournalOp::kPhysical: return "physical";
    case JournalOp::kWipeObject: return "wipe_object";
    case JournalOp::kWipeRole: return "wipe_role";
    case JournalOp::kWipeNode: return "wipe_node";
  }
  return "?";
}

const char* journal_error_name(JournalError error) {
  switch (error) {
    case JournalError::kNone: return "none";
    case JournalError::kIoError: return "io_error";
    case JournalError::kBadMagic: return "bad_magic";
    case JournalError::kBadVersion: return "bad_version";
    case JournalError::kCrcMismatch: return "crc_mismatch";
    case JournalError::kBadRecord: return "bad_record";
  }
  return "?";
}

bool parse_fsync_mode(const std::string& text, FsyncMode* mode) {
  if (text == "none") {
    *mode = FsyncMode::kNone;
  } else if (text == "group") {
    *mode = FsyncMode::kGroup;
  } else if (text == "always") {
    *mode = FsyncMode::kAlways;
  } else {
    return false;
  }
  return true;
}

const char* fsync_mode_name(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone: return "none";
    case FsyncMode::kGroup: return "group";
    case FsyncMode::kAlways: return "always";
  }
  return "?";
}

std::vector<std::uint8_t> encode_record(const JournalRecord& record) {
  wire::ByteWriter writer;
  writer.field_varint(kFieldOp, static_cast<std::uint64_t>(record.op));
  writer.field_varint(kFieldObject, record.object);
  writer.field_svarint(kFieldRoleLevel, record.role.level);
  writer.field_varint(kFieldRoleNode, record.role.node);
  writer.field_svarint(kFieldChildLevel, record.child.level);
  writer.field_varint(kFieldChildNode, record.child.node);
  if (record.sp.has_value()) {
    writer.field_varint(kFieldHasSp, 1);
    writer.field_svarint(kFieldSpLevel, record.sp->level);
    writer.field_varint(kFieldSpNode, record.sp->node);
  }
  writer.field_varint(kFieldNode, record.node);
  return writer.take();
}

bool decode_record(std::span<const std::uint8_t> payload,
                   JournalRecord* record) {
  wire::ByteReader reader(payload);
  JournalRecord out;
  OverlayNode sp;
  bool has_sp = false;
  std::uint32_t field_id = 0;
  wire::WireType type{};
  while (reader.next_field(&field_id, &type)) {
    switch (field_id) {
      case kFieldOp: {
        const std::uint64_t op = reader.varint();
        if (op >= kNumJournalOps) reader.fail(wire::DecodeError::kBadValue);
        out.op = static_cast<JournalOp>(op);
        break;
      }
      case kFieldObject:
        out.object = static_cast<std::uint32_t>(reader.varint());
        break;
      case kFieldRoleLevel:
        out.role.level = static_cast<int>(reader.svarint());
        break;
      case kFieldRoleNode:
        out.role.node = static_cast<NodeId>(reader.varint());
        break;
      case kFieldChildLevel:
        out.child.level = static_cast<int>(reader.svarint());
        break;
      case kFieldChildNode:
        out.child.node = static_cast<NodeId>(reader.varint());
        break;
      case kFieldHasSp:
        has_sp = reader.varint() != 0;
        break;
      case kFieldSpLevel:
        sp.level = static_cast<int>(reader.svarint());
        break;
      case kFieldSpNode:
        sp.node = static_cast<NodeId>(reader.varint());
        break;
      case kFieldNode:
        out.node = static_cast<NodeId>(reader.varint());
        break;
      default:
        reader.skip(type);  // future field: step over, keep decoding
        break;
    }
  }
  if (!reader.ok()) return false;
  if (has_sp) out.sp = sp;
  *record = out;
  return true;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, FsyncMode mode) {
  close();
  mode_ = mode;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    MOT_LOG_WARN("journal: open(%s) failed: errno=%d", path.c_str(), errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close();
    return false;
  }
  if (st.st_size == 0) {
    std::array<std::uint8_t, kHeaderBytes> header{};
    put_u32(header.data(), kJournalMagic);
    header[4] = static_cast<std::uint8_t>(kJournalFormatVersion);
    if (!write_all(header)) {
      close();
      return false;
    }
    if (mode_ != FsyncMode::kNone) ::fsync(fd_);
  }
  return true;
}

bool JournalWriter::append(const JournalRecord& record) {
  MOT_EXPECTS(is_open());
  const std::vector<std::uint8_t> payload = encode_record(record);
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  put_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32(frame.data() + 4, crc32(payload));
  std::copy(payload.begin(), payload.end(),
            frame.begin() + kFrameHeaderBytes);
  if (!write_all(frame)) return false;
  ++records_written_;
  if (mode_ == FsyncMode::kAlways && ::fsync(fd_) != 0) return false;
  return true;
}

bool JournalWriter::commit() {
  if (!is_open()) return true;
  if (mode_ != FsyncMode::kGroup) return true;
  return ::fsync(fd_) == 0;
}

bool JournalWriter::reset() {
  MOT_EXPECTS(is_open());
  if (::ftruncate(fd_, 0) != 0) return false;
  std::array<std::uint8_t, kHeaderBytes> header{};
  put_u32(header.data(), kJournalMagic);
  header[4] = static_cast<std::uint8_t>(kJournalFormatVersion);
  if (!write_all(header)) return false;
  if (mode_ != FsyncMode::kNone && ::fsync(fd_) != 0) return false;
  return true;
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    if (mode_ != FsyncMode::kNone) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::write_all(std::span<const std::uint8_t> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      MOT_LOG_WARN("journal: write failed: errno=%d", errno);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  bytes_written_ += data.size();
  return true;
}

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no journal == empty journal
    result.error = JournalError::kIoError;
    return result;
  }
  std::vector<std::uint8_t> data;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      result.error = JournalError::kIoError;
      return result;
    }
    if (n == 0) break;
    data.insert(data.end(), chunk.data(), chunk.data() + n);
  }
  ::close(fd);

  if (data.empty()) return result;  // torn creation: nothing to replay
  if (data.size() < kHeaderBytes) {
    result.truncated_bytes = data.size();  // torn mid-header
    return result;
  }
  if (get_u32(data.data()) != kJournalMagic) {
    result.error = JournalError::kBadMagic;
    return result;
  }
  const unsigned version = data[4];
  if (version < kJournalFormatFloor || version > kJournalFormatVersion) {
    result.error = JournalError::kBadVersion;
    return result;
  }

  std::size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < kFrameHeaderBytes) {
      result.truncated_bytes = remaining;  // torn frame header
      break;
    }
    const std::uint32_t length = get_u32(data.data() + pos);
    if (length > kMaxRecordBytes) {
      result.error = JournalError::kBadRecord;
      break;
    }
    const std::uint32_t expected_crc = get_u32(data.data() + pos + 4);
    if (remaining - kFrameHeaderBytes < length) {
      result.truncated_bytes = remaining;  // torn payload
      break;
    }
    const std::span<const std::uint8_t> payload(
        data.data() + pos + kFrameHeaderBytes, length);
    if (crc32(payload) != expected_crc) {
      result.error = JournalError::kCrcMismatch;
      break;
    }
    JournalRecord record;
    if (!decode_record(payload, &record)) {
      result.error = JournalError::kBadRecord;
      break;
    }
    result.records.push_back(record);
    pos += kFrameHeaderBytes + length;
  }
  return result;
}

}  // namespace mot::durable
