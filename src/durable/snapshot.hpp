// Versioned binary snapshot of the tracking world (DESIGN.md §14):
// the DoublingHierarchy CSR state plus a canonical image of the chain /
// detection-list state either engine (ChainTracker, DistributedMot)
// exports. Restore = decode snapshot + replay the journal suffix onto a
// MutableState, then hand the resulting image back to a fresh engine.
//
// The StateImage is *canonical*: roles sorted by (node, level), DL
// entries sorted by object, proxy/physical maps sorted by object, empty
// roles omitted. Two engines whose observable state is equal export
// byte-equal images regardless of hash-map iteration history, which is
// what makes image equality a usable parity oracle in tests and the
// chaos harness.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "durable/journal.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot::durable {

enum class RestoreError : std::uint8_t {
  kNone = 0,
  kNoSnapshot,     // snapshot file absent
  kIoError,        // open/read syscall failure
  kBadMagic,       // not a snapshot file
  kBadVersion,     // format version 0 or outside [floor, current]
  kCrcMismatch,    // payload bytes fail the whole-file CRC
  kBadRecord,      // payload undecodable despite a good CRC
  kWorldMismatch,  // snapshot was taken over a different graph
  kBadSnapshot,    // decoded but structurally invalid (from_state, image)
  kReplayFailed,   // a journal record did not apply cleanly
  kJournalError,   // journal unreadable (see JournalError)
};

const char* restore_error_name(RestoreError error);

// One overlay role's durable state.
struct RoleImage {
  struct DlEntry {
    std::uint32_t object = 0;
    OverlayNode child;
    std::optional<OverlayNode> sp;

    bool operator==(const DlEntry&) const = default;
  };
  struct SdlEntry {
    std::uint32_t object = 0;
    // Registration order, not sorted: engines append and scan in
    // arrival order, and replayed SdlAdds must reproduce it.
    std::vector<OverlayNode> children;

    bool operator==(const SdlEntry&) const = default;
  };

  OverlayNode role;
  std::vector<DlEntry> dl;    // sorted by object
  std::vector<SdlEntry> sdl;  // sorted by object

  bool operator==(const RoleImage&) const = default;
};

struct StateImage {
  std::vector<RoleImage> roles;  // sorted by (node, level); empties omitted
  // object -> node maps, sorted by object.
  std::vector<std::pair<std::uint32_t, NodeId>> proxies;
  std::vector<std::pair<std::uint32_t, NodeId>> physical;

  // FNV-1a over the canonical encoding: equal images, equal digests.
  std::uint64_t digest() const;

  bool operator==(const StateImage&) const = default;
};

// Indexed, mutable form of a StateImage that journal replay applies to.
// apply() is strict for point ops — a publish/insert/delete/splice that
// does not match the current state returns false (snapshot and journal
// disagree; the caller falls back to rebuild) — and tolerant for the
// wipe ops, which erase whatever is present (their engine counterparts
// are sweeps over possibly-already-empty state).
class MutableState {
 public:
  MutableState() = default;
  explicit MutableState(const StateImage& image);

  bool apply(const JournalRecord& record);
  StateImage to_image() const;

 private:
  struct Entry {
    OverlayNode child;
    std::optional<OverlayNode> sp;
  };
  struct Role {
    std::map<std::uint32_t, Entry> dl;
    std::map<std::uint32_t, std::vector<OverlayNode>> sdl;
  };
  // Keyed (node, level): the canonical role order of StateImage.
  std::map<std::pair<NodeId, int>, Role> roles_;
  std::map<std::uint32_t, NodeId> proxies_;
  std::map<std::uint32_t, NodeId> physical_;
};

// Fingerprint of the network the state lives over (node count plus the
// weighted adjacency). A snapshot only restores onto the same world.
std::uint64_t world_fingerprint(const Graph& graph);

// --- Snapshot file codec ---------------------------------------------
//
//   [u32 magic 'MOTS'][u32 crc32 over payload][payload]
//   payload = u8 version, then tagged fields:
//     1 varint num_nodes           2 fixed64 world_fingerprint
//     3 bytes  hierarchy section   4 bytes  state-image section
// Unknown payload fields are skipped, so additive format growth keeps
// old snapshots loadable (same contract as the wire frames).

std::vector<std::uint8_t> encode_snapshot(
    std::uint64_t fingerprint, const DoublingHierarchy::State& hierarchy,
    const StateImage& image);

struct SnapshotDecodeResult {
  RestoreError error = RestoreError::kNone;
  std::uint64_t fingerprint = 0;
  DoublingHierarchy::State hierarchy;
  StateImage image;
};

SnapshotDecodeResult decode_snapshot(std::span<const std::uint8_t> bytes);

// Whole-file helpers. write_snapshot_file() writes tmp + fsync + rename
// so a crash never leaves a half-written snapshot under the real name.
bool write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> bytes);
SnapshotDecodeResult read_snapshot_file(const std::string& path);

}  // namespace mot::durable
