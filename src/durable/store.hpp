// DurableStore: the durability engine behind the Sink interface the
// trackers journal into. Owns one directory holding
//
//   snapshot.mot   versioned snapshot (hierarchy CSR + state image)
//   journal.mot    append-only semantic journal since that snapshot
//
// and implements the recovery state machine of DESIGN.md §14:
//
//   restore():  read snapshot -> verify CRC/version/world fingerprint
//               -> read journal (torn tail dropped) -> strictly replay
//               the suffix onto the snapshot image. Any typed failure
//               dumps the flight ring and reports the error; the caller
//               falls back to the rebuild-from-physical-positions path
//               and then write_snapshot() to re-ground the store.
//   write_snapshot(): tmp + fsync + rename, then truncate the journal —
//               snapshot-triggered compaction; the journal only ever
//               holds the suffix since the last good snapshot.
#pragma once

#include <cstdint>
#include <string>

#include "durable/journal.hpp"
#include "durable/snapshot.hpp"
#include "obs/metrics_registry.hpp"

namespace mot::durable {

struct DurableStats {
  std::uint64_t snapshot_bytes = 0;      // size of the last snapshot
  std::uint64_t snapshots_written = 0;
  std::uint64_t journal_records = 0;     // appended by this process
  std::uint64_t journal_replayed = 0;    // replayed across restores
  std::uint64_t restore_fallbacks = 0;   // restores that fell back
  std::uint64_t commits = 0;
};

// Projects the stats into the registry (bench telemetry surface), same
// bridge shape as export_protocol_stats.
void export_durable_stats(const DurableStats& stats,
                          obs::MetricsRegistry& registry,
                          const obs::Labels& labels = {});

class DurableStore final : public Sink {
 public:
  struct Options {
    std::string dir;                     // created if absent (one level)
    FsyncMode fsync = FsyncMode::kGroup;
  };

  explicit DurableStore(const Options& options);

  // False if the journal could not be opened; record() is then a no-op
  // (the engine keeps running, durability is just off).
  bool ok() const { return journal_.is_open(); }

  std::string snapshot_path() const { return options_.dir + "/snapshot.mot"; }
  std::string journal_path() const { return options_.dir + "/journal.mot"; }

  // Sink: appends one semantic op to the journal.
  void record(const JournalRecord& record) override;

  // Group-commit point (e.g. end of a chaos round / batch flush).
  void commit();

  // Snapshots the hierarchy + image and compacts the journal.
  bool write_snapshot(const Graph& graph, const DoublingHierarchy& hierarchy,
                      const StateImage& image);

  struct RestoreResult {
    RestoreError error = RestoreError::kNone;
    JournalError journal_error = JournalError::kNone;  // with kJournalError
    DoublingHierarchy::State hierarchy;
    StateImage image;                    // snapshot + replayed suffix
    std::size_t journal_replayed = 0;

    bool restored() const { return error == RestoreError::kNone; }
  };

  // Loads the durable state for a world matching `graph`. On failure the
  // flight ring is dumped (reason "restore-failure") and the caller is
  // expected to rebuild and then write_snapshot() to re-ground.
  RestoreResult restore(const Graph& graph);

  const DurableStats& stats() const { return stats_; }

 private:
  Options options_;
  JournalWriter journal_;
  DurableStats stats_;
};

}  // namespace mot::durable
