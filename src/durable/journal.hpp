// Append-only semantic operation journal (DESIGN.md §14).
//
// The journal records *operations* — publish, detection-list insert and
// delete, SDL add/remove, chain splice — not pages or byte diffs, the
// pronto-style logging the ROADMAP calls for. Replay applies each op to
// a MutableState (snapshot.hpp); because every record describes one
// effective mutation the engines actually performed, replay is strict:
// an op that does not apply cleanly means the journal and snapshot
// disagree, and restore falls back to a full rebuild.
//
// On-disk layout:
//   [u32 magic 'MOTJ'][u8 version]            file header
//   ( [u32 len][u32 crc32][payload] )*        one frame per record
// All integers little-endian. `crc32` covers the payload only. The
// payload is a tagged-field encoding (wire/codec.hpp primitives), so a
// v(N) reader steps over fields a v(N+1) writer added.
//
// Failure model on open/read:
//   * torn tail (file ends inside a frame header or payload): the tail
//     is dropped — exactly what a crash mid-append leaves behind;
//   * CRC mismatch on a *complete* frame: typed kCrcMismatch — bytes
//     rotted, the suffix cannot be trusted;
//   * oversized length prefix or undecodable payload: typed kBadRecord.
// Nothing in this path can crash or read out of bounds: all decoding is
// through the latching ByteReader.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hier/hierarchy.hpp"

namespace mot::durable {

// CRC-32 (IEEE 802.3, poly 0xEDB88320, reflected) over `data`.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// The semantic op vocabulary — the same mutations the proto batcher
// stages, plus the wipe ops recovery paths use. Values are the wire
// encoding; append only.
enum class JournalOp : std::uint8_t {
  kPublish = 0,     // object published at node: proxy + physical = node
  kInsert = 1,      // role's DL gains object -> (child, sp?)
  kDelete = 2,      // role's DL drops object
  kSdlAdd = 3,      // role's SDL for object gains child (append order)
  kSdlRemove = 4,   // role's SDL for object drops child
  kSplice = 5,      // role's DL entry for object retargets child
  kSpClear = 6,     // role's DL entry for object clears its sp
  kProxy = 7,       // proxy map: object -> node
  kPhysical = 8,    // physical map: object -> node
  kWipeObject = 9,  // drop object from every DL and SDL (rebuild sweep)
  kWipeRole = 10,   // drop a role's whole DL + SDL (crash/evacuate)
  kWipeNode = 11,   // drop every role hosted at node (crash recovery)
};
inline constexpr std::uint8_t kNumJournalOps = 12;

const char* journal_op_name(JournalOp op);

// One journaled mutation. Which fields are meaningful depends on `op`;
// unused fields stay at their defaults and encode compactly.
struct JournalRecord {
  JournalOp op = JournalOp::kPublish;
  std::uint32_t object = 0;            // ObjectId (tracking layer)
  OverlayNode role;                    // owning overlay role
  OverlayNode child;                   // DL child / SDL registrant
  std::optional<OverlayNode> sp;       // special parent (kInsert)
  NodeId node = kInvalidNode;          // proxy / physical / wiped node

  bool operator==(const JournalRecord&) const = default;

  // Factories, one per op, so call sites name only the fields the op
  // uses (and cannot forget one).
  static JournalRecord make_publish(std::uint32_t object, NodeId node) {
    JournalRecord r;
    r.op = JournalOp::kPublish;
    r.object = object;
    r.node = node;
    return r;
  }
  static JournalRecord make_insert(OverlayNode role, std::uint32_t object,
                                   OverlayNode child,
                                   std::optional<OverlayNode> sp) {
    JournalRecord r;
    r.op = JournalOp::kInsert;
    r.object = object;
    r.role = role;
    r.child = child;
    r.sp = sp;
    return r;
  }
  static JournalRecord make_delete(OverlayNode role, std::uint32_t object) {
    JournalRecord r;
    r.op = JournalOp::kDelete;
    r.object = object;
    r.role = role;
    return r;
  }
  static JournalRecord make_sdl_add(OverlayNode role, std::uint32_t object,
                                    OverlayNode child) {
    JournalRecord r;
    r.op = JournalOp::kSdlAdd;
    r.object = object;
    r.role = role;
    r.child = child;
    return r;
  }
  static JournalRecord make_sdl_remove(OverlayNode role, std::uint32_t object,
                                       OverlayNode child) {
    JournalRecord r = make_sdl_add(role, object, child);
    r.op = JournalOp::kSdlRemove;
    return r;
  }
  static JournalRecord make_splice(OverlayNode role, std::uint32_t object,
                                   OverlayNode child) {
    JournalRecord r = make_sdl_add(role, object, child);
    r.op = JournalOp::kSplice;
    return r;
  }
  static JournalRecord make_sp_clear(OverlayNode role, std::uint32_t object) {
    JournalRecord r = make_delete(role, object);
    r.op = JournalOp::kSpClear;
    return r;
  }
  static JournalRecord make_proxy(std::uint32_t object, NodeId node) {
    JournalRecord r = make_publish(object, node);
    r.op = JournalOp::kProxy;
    return r;
  }
  static JournalRecord make_physical(std::uint32_t object, NodeId node) {
    JournalRecord r = make_publish(object, node);
    r.op = JournalOp::kPhysical;
    return r;
  }
  static JournalRecord make_wipe_object(std::uint32_t object) {
    JournalRecord r;
    r.op = JournalOp::kWipeObject;
    r.object = object;
    return r;
  }
  static JournalRecord make_wipe_role(OverlayNode role) {
    JournalRecord r;
    r.op = JournalOp::kWipeRole;
    r.role = role;
    return r;
  }
  static JournalRecord make_wipe_node(NodeId node) {
    JournalRecord r;
    r.op = JournalOp::kWipeNode;
    r.node = node;
    return r;
  }
};

// Tagged-field payload codec (no framing). decode() returns false with
// no side effects on malformed input.
std::vector<std::uint8_t> encode_record(const JournalRecord& record);
bool decode_record(std::span<const std::uint8_t> payload,
                   JournalRecord* record);

// Where engines hand off journal records. Engines only ever see this
// interface; the store behind it owns files and fsync policy.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(const JournalRecord& record) = 0;
};

enum class FsyncMode : std::uint8_t {
  kNone = 0,   // never fsync (fastest; crash may lose the buffered tail)
  kGroup = 1,  // fsync at commit points (group commit; default)
  kAlways = 2  // fsync after every record
};

// Parses "none" / "group" / "always". Returns false on anything else.
bool parse_fsync_mode(const std::string& text, FsyncMode* mode);
const char* fsync_mode_name(FsyncMode mode);

enum class JournalError : std::uint8_t {
  kNone = 0,
  kIoError,      // open/read/write syscall failure
  kBadMagic,     // header magic is not 'MOTJ'
  kBadVersion,   // header version 0 or outside [floor, current]
  kCrcMismatch,  // complete frame whose payload fails its CRC
  kBadRecord,    // absurd length prefix or undecodable payload
};

const char* journal_error_name(JournalError error);

// Appends framed records to a journal file via an unbuffered POSIX fd —
// unbuffered so tests (and operators) can corrupt bytes underneath us
// and the reader sees exactly what hit the disk.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Opens (creating + writing the header if new/empty) for append.
  bool open(const std::string& path, FsyncMode mode);
  bool is_open() const { return fd_ >= 0; }

  // Appends one framed record; fsyncs when mode is kAlways.
  bool append(const JournalRecord& record);
  // Group-commit point: fsync when mode is kGroup. No-op otherwise.
  bool commit();
  // Truncates the journal back to a bare header (snapshot compaction).
  bool reset();
  void close();

  std::uint64_t records_written() const { return records_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  bool write_all(std::span<const std::uint8_t> data);

  int fd_ = -1;
  FsyncMode mode_ = FsyncMode::kGroup;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

struct JournalReadResult {
  JournalError error = JournalError::kNone;
  std::vector<JournalRecord> records;  // valid prefix (even on error)
  std::size_t truncated_bytes = 0;     // torn tail dropped on open
};

// Reads every decodable record. A missing file is an empty journal
// (kNone, no records): compaction legitimately leaves none.
JournalReadResult read_journal(const std::string& path);

}  // namespace mot::durable
