#include "durable/store.hpp"

#include <sys/stat.h>

#include <cerrno>

#include "obs/flight_recorder.hpp"
#include "util/log.hpp"

namespace mot::durable {

namespace {

void set_counter(obs::MetricsRegistry& registry, const std::string& name,
                 const obs::Labels& labels, std::uint64_t value) {
  auto& counter = registry.counter(name, labels);
  counter.reset();
  counter.increment(value);
}

}  // namespace

void export_durable_stats(const DurableStats& stats,
                          obs::MetricsRegistry& registry,
                          const obs::Labels& labels) {
  registry.gauge("snapshot_bytes", labels)
      .set(static_cast<double>(stats.snapshot_bytes));
  set_counter(registry, "journal_records", labels, stats.journal_records);
  set_counter(registry, "journal_replayed", labels, stats.journal_replayed);
  set_counter(registry, "restore_fallbacks", labels,
              stats.restore_fallbacks);
  set_counter(registry, "snapshots_written", labels,
              stats.snapshots_written);
}

DurableStore::DurableStore(const Options& options) : options_(options) {
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    MOT_LOG_WARN("durable: mkdir(%s) failed: errno=%d",
                 options_.dir.c_str(), errno);
  }
  if (!journal_.open(journal_path(), options_.fsync)) {
    MOT_LOG_WARN("durable: journal unavailable, durability disabled");
  }
}

void DurableStore::record(const JournalRecord& record) {
  if (!journal_.is_open()) return;
  if (journal_.append(record)) ++stats_.journal_records;
}

void DurableStore::commit() {
  if (!journal_.is_open()) return;
  journal_.commit();
  ++stats_.commits;
}

bool DurableStore::write_snapshot(const Graph& graph,
                                  const DoublingHierarchy& hierarchy,
                                  const StateImage& image) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(
      world_fingerprint(graph), hierarchy.export_state(), image);
  if (!write_snapshot_file(snapshot_path(), bytes)) return false;
  stats_.snapshot_bytes = bytes.size();
  ++stats_.snapshots_written;
  // Compaction: everything journaled so far is folded into the snapshot.
  if (journal_.is_open() && !journal_.reset()) {
    MOT_LOG_WARN("durable: journal compaction failed after snapshot");
    return false;
  }
  return true;
}

DurableStore::RestoreResult DurableStore::restore(const Graph& graph) {
  RestoreResult result;
  SnapshotDecodeResult snapshot = read_snapshot_file(snapshot_path());
  result.error = snapshot.error;
  if (result.error == RestoreError::kNone &&
      snapshot.fingerprint != world_fingerprint(graph)) {
    result.error = RestoreError::kWorldMismatch;
  }
  if (result.error == RestoreError::kNone) {
    JournalReadResult journal = read_journal(journal_path());
    if (journal.error != JournalError::kNone) {
      result.error = RestoreError::kJournalError;
      result.journal_error = journal.error;
    } else {
      if (journal.truncated_bytes > 0) {
        MOT_LOG_INFO("durable: dropped %zu torn journal tail bytes",
                     journal.truncated_bytes);
      }
      MutableState state(snapshot.image);
      for (const JournalRecord& record : journal.records) {
        if (!state.apply(record)) {
          MOT_LOG_WARN("durable: journal op %s did not apply; falling back",
                       journal_op_name(record.op));
          result.error = RestoreError::kReplayFailed;
          break;
        }
        ++result.journal_replayed;
      }
      if (result.error == RestoreError::kNone) {
        result.hierarchy = std::move(snapshot.hierarchy);
        result.image = state.to_image();
        stats_.journal_replayed += result.journal_replayed;
      }
    }
  }
  if (result.error != RestoreError::kNone) {
    result.journal_replayed = 0;
    if (result.error != RestoreError::kNoSnapshot) {
      // Data was present but unusable: preserve the last moments for
      // the post-mortem, then count the rebuild fallback.
      ++stats_.restore_fallbacks;
      if (auto* recorder = obs::flight_recorder()) {
        recorder->dump("restore-failure");
      }
      MOT_LOG_WARN("durable: restore failed (%s), falling back to rebuild",
                   restore_error_name(result.error));
    }
  }
  return result;
}

}  // namespace mot::durable
