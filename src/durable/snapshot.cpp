#include "durable/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <limits>

#include "durable/version.hpp"
#include "util/log.hpp"
#include "wire/codec.hpp"

namespace mot::durable {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x53544f4du;  // 'MOTS' LE

enum Field : std::uint32_t {
  kFieldNumNodes = 1,
  kFieldFingerprint = 2,
  kFieldHierarchy = 3,
  kFieldImage = 4,
};

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                    std::uint64_t hash = kFnvBasis) {
  for (const std::uint8_t byte : data) {
    hash = (hash ^ byte) * kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash = (hash ^ (value & 0xffu)) * kFnvPrime;
    value >>= 8;
  }
  return hash;
}

// A count prefix can promise at most one element per remaining byte;
// anything larger is corruption, not a big snapshot.
bool plausible_count(const wire::ByteReader& reader, std::uint64_t count) {
  return count <= reader.remaining();
}

void encode_overlay(wire::ByteWriter& writer, const OverlayNode& node) {
  writer.svarint(node.level);
  writer.varint(node.node);
}

OverlayNode decode_overlay(wire::ByteReader& reader) {
  OverlayNode node;
  node.level = static_cast<int>(reader.svarint());
  node.node = static_cast<NodeId>(reader.varint());
  return node;
}

void encode_node_vector(wire::ByteWriter& writer,
                        const std::vector<NodeId>& values) {
  writer.varint(values.size());
  for (const NodeId v : values) writer.varint(v);
}

bool decode_node_vector(wire::ByteReader& reader,
                        std::vector<NodeId>* values) {
  const std::uint64_t count = reader.varint();
  if (!reader.ok() || !plausible_count(reader, count)) return false;
  values->resize(static_cast<std::size_t>(count));
  for (auto& v : *values) v = static_cast<NodeId>(reader.varint());
  return reader.ok();
}

std::vector<std::uint8_t> encode_hierarchy(
    const DoublingHierarchy::State& state) {
  wire::ByteWriter writer;
  writer.varint(state.num_nodes);
  writer.varint(state.total_mis_rounds);
  writer.varint(state.levels.size());
  for (const auto& level : state.levels) {
    encode_node_vector(writer, level.member_list);
    writer.varint(level.parent_offsets.size());
    for (const std::size_t offset : level.parent_offsets) {
      writer.varint(offset);
    }
    encode_node_vector(writer, level.parent_data);
    encode_node_vector(writer, level.default_parents);
  }
  return writer.take();
}

bool decode_hierarchy(std::span<const std::uint8_t> bytes,
                      DoublingHierarchy::State* state) {
  wire::ByteReader reader(bytes);
  state->num_nodes = static_cast<std::size_t>(reader.varint());
  state->total_mis_rounds = static_cast<std::size_t>(reader.varint());
  const std::uint64_t num_levels = reader.varint();
  if (!reader.ok() || !plausible_count(reader, num_levels)) return false;
  state->levels.resize(static_cast<std::size_t>(num_levels));
  for (auto& level : state->levels) {
    if (!decode_node_vector(reader, &level.member_list)) return false;
    const std::uint64_t num_offsets = reader.varint();
    if (!reader.ok() || !plausible_count(reader, num_offsets)) return false;
    level.parent_offsets.resize(static_cast<std::size_t>(num_offsets));
    for (auto& offset : level.parent_offsets) {
      offset = static_cast<std::size_t>(reader.varint());
    }
    if (!decode_node_vector(reader, &level.parent_data)) return false;
    if (!decode_node_vector(reader, &level.default_parents)) return false;
  }
  return reader.ok() && reader.at_end();
}

std::vector<std::uint8_t> encode_image(const StateImage& image) {
  wire::ByteWriter writer;
  writer.varint(image.roles.size());
  for (const RoleImage& role : image.roles) {
    encode_overlay(writer, role.role);
    writer.varint(role.dl.size());
    for (const auto& entry : role.dl) {
      writer.varint(entry.object);
      encode_overlay(writer, entry.child);
      writer.varint(entry.sp.has_value() ? 1 : 0);
      if (entry.sp.has_value()) encode_overlay(writer, *entry.sp);
    }
    writer.varint(role.sdl.size());
    for (const auto& entry : role.sdl) {
      writer.varint(entry.object);
      writer.varint(entry.children.size());
      for (const auto& child : entry.children) {
        encode_overlay(writer, child);
      }
    }
  }
  writer.varint(image.proxies.size());
  for (const auto& [object, node] : image.proxies) {
    writer.varint(object);
    writer.varint(node);
  }
  writer.varint(image.physical.size());
  for (const auto& [object, node] : image.physical) {
    writer.varint(object);
    writer.varint(node);
  }
  return writer.take();
}

bool decode_image(std::span<const std::uint8_t> bytes, StateImage* image) {
  wire::ByteReader reader(bytes);
  const std::uint64_t num_roles = reader.varint();
  if (!reader.ok() || !plausible_count(reader, num_roles)) return false;
  image->roles.resize(static_cast<std::size_t>(num_roles));
  for (RoleImage& role : image->roles) {
    role.role = decode_overlay(reader);
    const std::uint64_t num_dl = reader.varint();
    if (!reader.ok() || !plausible_count(reader, num_dl)) return false;
    role.dl.resize(static_cast<std::size_t>(num_dl));
    for (auto& entry : role.dl) {
      entry.object = static_cast<std::uint32_t>(reader.varint());
      entry.child = decode_overlay(reader);
      if (reader.varint() != 0) entry.sp = decode_overlay(reader);
    }
    const std::uint64_t num_sdl = reader.varint();
    if (!reader.ok() || !plausible_count(reader, num_sdl)) return false;
    role.sdl.resize(static_cast<std::size_t>(num_sdl));
    for (auto& entry : role.sdl) {
      entry.object = static_cast<std::uint32_t>(reader.varint());
      const std::uint64_t num_children = reader.varint();
      if (!reader.ok() || !plausible_count(reader, num_children)) {
        return false;
      }
      entry.children.resize(static_cast<std::size_t>(num_children));
      for (auto& child : entry.children) child = decode_overlay(reader);
    }
  }
  const std::uint64_t num_proxies = reader.varint();
  if (!reader.ok() || !plausible_count(reader, num_proxies)) return false;
  image->proxies.resize(static_cast<std::size_t>(num_proxies));
  for (auto& [object, node] : image->proxies) {
    object = static_cast<std::uint32_t>(reader.varint());
    node = static_cast<NodeId>(reader.varint());
  }
  const std::uint64_t num_physical = reader.varint();
  if (!reader.ok() || !plausible_count(reader, num_physical)) return false;
  image->physical.resize(static_cast<std::size_t>(num_physical));
  for (auto& [object, node] : image->physical) {
    object = static_cast<std::uint32_t>(reader.varint());
    node = static_cast<NodeId>(reader.varint());
  }
  return reader.ok() && reader.at_end();
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

const char* restore_error_name(RestoreError error) {
  switch (error) {
    case RestoreError::kNone: return "none";
    case RestoreError::kNoSnapshot: return "no_snapshot";
    case RestoreError::kIoError: return "io_error";
    case RestoreError::kBadMagic: return "bad_magic";
    case RestoreError::kBadVersion: return "bad_version";
    case RestoreError::kCrcMismatch: return "crc_mismatch";
    case RestoreError::kBadRecord: return "bad_record";
    case RestoreError::kWorldMismatch: return "world_mismatch";
    case RestoreError::kBadSnapshot: return "bad_snapshot";
    case RestoreError::kReplayFailed: return "replay_failed";
    case RestoreError::kJournalError: return "journal_error";
  }
  return "?";
}

std::uint64_t StateImage::digest() const {
  return fnv1a(encode_image(*this));
}

std::uint64_t world_fingerprint(const Graph& graph) {
  std::uint64_t hash = fnv1a_u64(graph.num_nodes(), kFnvBasis);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neighbors = graph.neighbors(u);
    hash = fnv1a_u64(neighbors.size(), hash);
    for (const Edge& edge : neighbors) {
      hash = fnv1a_u64(edge.to, hash);
      hash = fnv1a_u64(std::bit_cast<std::uint64_t>(edge.weight), hash);
    }
  }
  return hash;
}

MutableState::MutableState(const StateImage& image) {
  for (const RoleImage& role : image.roles) {
    Role& out = roles_[{role.role.node, role.role.level}];
    for (const auto& entry : role.dl) {
      out.dl.emplace(entry.object, Entry{entry.child, entry.sp});
    }
    for (const auto& entry : role.sdl) {
      out.sdl.emplace(entry.object, entry.children);
    }
  }
  for (const auto& [object, node] : image.proxies) proxies_[object] = node;
  for (const auto& [object, node] : image.physical) physical_[object] = node;
}

bool MutableState::apply(const JournalRecord& record) {
  const std::pair<NodeId, int> key{record.role.node, record.role.level};
  switch (record.op) {
    case JournalOp::kPublish:
      proxies_[record.object] = record.node;
      physical_[record.object] = record.node;
      return true;
    case JournalOp::kProxy:
      proxies_[record.object] = record.node;
      return true;
    case JournalOp::kPhysical:
      physical_[record.object] = record.node;
      return true;
    case JournalOp::kInsert: {
      Role& role = roles_[key];
      return role.dl.emplace(record.object, Entry{record.child, record.sp})
          .second;
    }
    case JournalOp::kDelete: {
      const auto role_it = roles_.find(key);
      if (role_it == roles_.end()) return false;
      return role_it->second.dl.erase(record.object) == 1;
    }
    case JournalOp::kSdlAdd:
      roles_[key].sdl[record.object].push_back(record.child);
      return true;
    case JournalOp::kSdlRemove: {
      const auto role_it = roles_.find(key);
      if (role_it == roles_.end()) return false;
      const auto sdl_it = role_it->second.sdl.find(record.object);
      if (sdl_it == role_it->second.sdl.end()) return false;
      auto& children = sdl_it->second;
      const auto child_it =
          std::find(children.begin(), children.end(), record.child);
      if (child_it == children.end()) return false;
      children.erase(child_it);
      if (children.empty()) role_it->second.sdl.erase(sdl_it);
      return true;
    }
    case JournalOp::kSplice: {
      const auto role_it = roles_.find(key);
      if (role_it == roles_.end()) return false;
      const auto dl_it = role_it->second.dl.find(record.object);
      if (dl_it == role_it->second.dl.end()) return false;
      dl_it->second.child = record.child;
      return true;
    }
    case JournalOp::kSpClear: {
      const auto role_it = roles_.find(key);
      if (role_it == roles_.end()) return false;
      const auto dl_it = role_it->second.dl.find(record.object);
      if (dl_it == role_it->second.dl.end()) return false;
      dl_it->second.sp.reset();
      return true;
    }
    case JournalOp::kWipeObject:
      for (auto& [role_key, role] : roles_) {
        role.dl.erase(record.object);
        role.sdl.erase(record.object);
      }
      return true;
    case JournalOp::kWipeRole:
      roles_.erase(key);
      return true;
    case JournalOp::kWipeNode: {
      auto it = roles_.lower_bound(
          {record.node, std::numeric_limits<int>::min()});
      while (it != roles_.end() && it->first.first == record.node) {
        it = roles_.erase(it);
      }
      return true;
    }
  }
  return false;
}

StateImage MutableState::to_image() const {
  StateImage image;
  for (const auto& [key, role] : roles_) {
    RoleImage out;
    out.role = OverlayNode{key.second, key.first};
    for (const auto& [object, entry] : role.dl) {
      out.dl.push_back({object, entry.child, entry.sp});
    }
    for (const auto& [object, children] : role.sdl) {
      if (children.empty()) continue;
      out.sdl.push_back({object, children});
    }
    if (out.dl.empty() && out.sdl.empty()) continue;  // canonical: no empties
    image.roles.push_back(std::move(out));
  }
  for (const auto& [object, node] : proxies_) {
    image.proxies.emplace_back(object, node);
  }
  for (const auto& [object, node] : physical_) {
    image.physical.emplace_back(object, node);
  }
  return image;
}

std::vector<std::uint8_t> encode_snapshot(
    std::uint64_t fingerprint, const DoublingHierarchy::State& hierarchy,
    const StateImage& image) {
  wire::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(kSnapshotFormatVersion));
  payload.field_varint(kFieldNumNodes, hierarchy.num_nodes);
  payload.field_fixed64(kFieldFingerprint, fingerprint);
  payload.field_bytes(kFieldHierarchy, encode_hierarchy(hierarchy));
  payload.field_bytes(kFieldImage, encode_image(image));

  std::vector<std::uint8_t> out(8 + payload.size());
  put_u32(out.data(), kSnapshotMagic);
  put_u32(out.data() + 4, crc32(payload.data()));
  std::copy(payload.data().begin(), payload.data().end(), out.begin() + 8);
  return out;
}

SnapshotDecodeResult decode_snapshot(std::span<const std::uint8_t> bytes) {
  SnapshotDecodeResult result;
  if (bytes.size() < 9) {  // magic + crc + at least the version byte
    result.error = RestoreError::kBadMagic;
    return result;
  }
  if (get_u32(bytes.data()) != kSnapshotMagic) {
    result.error = RestoreError::kBadMagic;
    return result;
  }
  const std::span<const std::uint8_t> payload = bytes.subspan(8);
  if (crc32(payload) != get_u32(bytes.data() + 4)) {
    result.error = RestoreError::kCrcMismatch;
    return result;
  }
  wire::ByteReader reader(payload);
  const unsigned version = reader.u8();
  if (version < kSnapshotFormatFloor || version > kSnapshotFormatVersion) {
    result.error = RestoreError::kBadVersion;
    return result;
  }
  bool have_nodes = false, have_fingerprint = false;
  bool have_hierarchy = false, have_image = false;
  std::uint64_t num_nodes = 0;
  std::uint32_t field_id = 0;
  wire::WireType type{};
  while (reader.next_field(&field_id, &type)) {
    switch (field_id) {
      case kFieldNumNodes:
        num_nodes = reader.varint();
        have_nodes = true;
        break;
      case kFieldFingerprint:
        result.fingerprint = reader.fixed64();
        have_fingerprint = true;
        break;
      case kFieldHierarchy: {
        const auto section = reader.length_delimited();
        if (!reader.ok()) break;
        if (!decode_hierarchy(section, &result.hierarchy)) {
          result.error = RestoreError::kBadRecord;
          return result;
        }
        have_hierarchy = true;
        break;
      }
      case kFieldImage: {
        const auto section = reader.length_delimited();
        if (!reader.ok()) break;
        if (!decode_image(section, &result.image)) {
          result.error = RestoreError::kBadRecord;
          return result;
        }
        have_image = true;
        break;
      }
      default:
        reader.skip(type);  // future field from a newer writer
        break;
    }
  }
  if (!reader.ok() || !have_nodes || !have_fingerprint || !have_hierarchy ||
      !have_image || result.hierarchy.num_nodes != num_nodes) {
    result.error = RestoreError::kBadRecord;
    return result;
  }
  return result;
}

bool write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    MOT_LOG_WARN("snapshot: open(%s) failed: errno=%d", tmp.c_str(), errno);
    return false;
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Best-effort directory fsync so the rename itself is durable.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

SnapshotDecodeResult read_snapshot_file(const std::string& path) {
  SnapshotDecodeResult result;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    result.error = errno == ENOENT ? RestoreError::kNoSnapshot
                                   : RestoreError::kIoError;
    return result;
  }
  std::vector<std::uint8_t> data;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      result.error = RestoreError::kIoError;
      return result;
    }
    if (n == 0) break;
    data.insert(data.end(), chunk.data(), chunk.data() + n);
  }
  ::close(fd);
  return decode_snapshot(data);
}

}  // namespace mot::durable
