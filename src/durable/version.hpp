// Snapshot format version, in its own dependency-free header so the
// bench telemetry layer (obs/run_record) can stamp run records with the
// format it was built against without pulling in the durable library.
#pragma once

namespace mot::durable {

// Bump when the snapshot payload grows fields old decoders must not
// silently misread. Decoders skip unknown tagged fields, so additive
// changes keep old snapshots loadable; the floor below is the oldest
// version the current decoder still understands.
inline constexpr unsigned kSnapshotFormatVersion = 1;
inline constexpr unsigned kSnapshotFormatFloor = 1;

// Journal file format version (header byte after the magic).
inline constexpr unsigned kJournalFormatVersion = 1;
inline constexpr unsigned kJournalFormatFloor = 1;

}  // namespace mot::durable
