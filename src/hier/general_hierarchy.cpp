#include "hier/general_hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

std::unique_ptr<GeneralHierarchy> GeneralHierarchy::build(
    const Graph& graph, const DistanceOracle& oracle, const Params& params) {
  MOT_EXPECTS(graph.num_nodes() >= 1);

  auto hierarchy = std::unique_ptr<GeneralHierarchy>(new GeneralHierarchy());
  hierarchy->graph_ = &graph;
  hierarchy->oracle_ = &oracle;

  const std::size_t n = graph.num_nodes();
  hierarchy->identity_.resize(n);
  for (NodeId v = 0; v < n; ++v) hierarchy->identity_[v] = v;

  // Build covers with radius 2^l until one cluster swallows the graph.
  for (int level = 1;; ++level) {
    MOT_CHECK(level <= 60);
    const Weight radius = std::ldexp(1.0, level);
    SparseCover cover =
        build_sparse_cover(graph, radius, params.growth_threshold);

    std::vector<std::vector<NodeId>> groups(n);
    std::vector<NodeId> leaders;
    for (NodeId v = 0; v < n; ++v) {
      for (const std::uint32_t label : cover.clusters_of[v]) {
        groups[v].push_back(cover.clusters[label].leader);
      }
      MOT_CHECK(!groups[v].empty());
    }
    std::unordered_map<NodeId, std::uint32_t> leader_map;
    for (std::uint32_t label = 0; label < cover.clusters.size(); ++label) {
      leaders.push_back(cover.clusters[label].leader);
      leader_map.emplace(cover.clusters[label].leader, label);
    }
    std::sort(leaders.begin(), leaders.end());
    leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());

    const bool is_top = cover.clusters.size() == 1;
    hierarchy->covers_.push_back(std::move(cover));
    hierarchy->groups_.push_back(std::move(groups));
    hierarchy->level_members_.push_back(std::move(leaders));
    hierarchy->leader_to_cluster_.push_back(std::move(leader_map));
    if (is_top) break;
  }

  MOT_LOG_DEBUG("GeneralHierarchy: n=%zu height=%d root=%u", n,
                hierarchy->height(), hierarchy->root());
  return hierarchy;
}

NodeId GeneralHierarchy::root() const {
  const SparseCover& top = covers_.back();
  MOT_CHECK(top.clusters.size() == 1);
  return top.clusters[0].leader;
}

std::span<const NodeId> GeneralHierarchy::group(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(u < graph_->num_nodes());
  if (level == 0) return {identity_.data() + u, 1};
  return groups_[level - 1][u];
}

std::span<const NodeId> GeneralHierarchy::members(int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  if (level == 0) return identity_;
  return level_members_[level - 1];
}

std::span<const NodeId> GeneralHierarchy::cluster(int level,
                                                  NodeId center) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  if (level == 0) {
    return {identity_.data() + center, 1};
  }
  const auto& map = leader_to_cluster_[level - 1];
  const auto it = map.find(center);
  MOT_EXPECTS(it != map.end());
  return covers_[level - 1].clusters[it->second].members;
}

const SparseCover& GeneralHierarchy::cover(int level) const {
  MOT_EXPECTS(level >= 1 && level <= height());
  return covers_[level - 1];
}

double GeneralHierarchy::average_overlap(int level) const {
  MOT_EXPECTS(level >= 1 && level <= height());
  return covers_[level - 1].average_overlap();
}

}  // namespace mot
