#include "hier/sparse_cover.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"

namespace mot {

double SparseCover::average_overlap() const {
  if (clusters_of.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : clusters_of) total += list.size();
  return static_cast<double>(total) /
         static_cast<double>(clusters_of.size());
}

std::size_t SparseCover::max_overlap() const {
  std::size_t worst = 0;
  for (const auto& list : clusters_of) worst = std::max(worst, list.size());
  return worst;
}

namespace {

// Multi-source Dijkstra bounded by `radius`: distances from the nearest
// node of `sources`.
std::vector<Weight> ball_of_set(const Graph& graph,
                                const std::vector<NodeId>& sources,
                                Weight radius) {
  std::vector<Weight> dist(graph.num_nodes(), kInfiniteDistance);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (const NodeId s : sources) {
    dist[s] = 0.0;
    queue.push({0.0, s});
  }
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    for (const Edge& e : graph.neighbors(node)) {
      const Weight candidate = d + e.weight;
      if (candidate > radius) continue;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        queue.push({candidate, e.to});
      }
    }
  }
  return dist;
}

}  // namespace

SparseCover build_sparse_cover(const Graph& graph, Weight radius,
                               double growth_threshold) {
  MOT_EXPECTS(graph.num_nodes() >= 1);
  MOT_EXPECTS(radius >= 0.0);
  MOT_EXPECTS(growth_threshold > 1.0);

  const std::size_t n = graph.num_nodes();
  SparseCover cover;
  cover.cover_radius = radius;
  cover.clusters_of.resize(n);

  // Nodes whose r-ball still needs a covering cluster, processed in ID
  // order for determinism.
  std::vector<bool> uncovered(n, true);
  std::size_t remaining = n;

  for (NodeId seed = 0; remaining > 0; ++seed) {
    MOT_CHECK(seed < n);
    if (!uncovered[seed]) continue;

    // Grow: core starts as {seed}; expand to the r-ball of the core while
    // the ball is more than growth_threshold times the core.
    std::vector<NodeId> core{seed};
    std::vector<NodeId> ball_members;
    while (true) {
      const std::vector<Weight> dist = ball_of_set(graph, core, radius);
      ball_members.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (dist[v] <= radius) ball_members.push_back(v);
      }
      if (static_cast<double>(ball_members.size()) >
          growth_threshold * static_cast<double>(core.size())) {
        core = ball_members;
      } else {
        break;
      }
    }

    Cluster cluster;
    cluster.leader = seed;
    cluster.members = ball_members;  // sorted (built in ID order)
    const ShortestPathTree from_leader = dijkstra(graph, seed);
    for (const NodeId v : cluster.members) {
      cluster.radius = std::max(cluster.radius, from_leader.distance[v]);
    }

    const auto label = static_cast<std::uint32_t>(cover.clusters.size());
    for (const NodeId v : cluster.members) {
      cover.clusters_of[v].push_back(label);
    }
    // Every core node's r-ball lies inside the cluster (the cluster is
    // exactly the r-ball of the final core), so the cores are now covered.
    for (const NodeId v : core) {
      if (uncovered[v]) {
        uncovered[v] = false;
        --remaining;
      }
    }
    cover.clusters.push_back(std::move(cluster));
  }

  return cover;
}

bool covers_all_balls(const Graph& graph, const SparseCover& cover) {
  const std::size_t n = graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const ShortestPathTree ball =
        dijkstra_bounded(graph, v, cover.cover_radius);
    bool found = false;
    for (const std::uint32_t label : cover.clusters_of[v]) {
      const auto& members = cover.clusters[label].members;
      bool contains_ball = true;
      for (NodeId w = 0; w < n && contains_ball; ++w) {
        if (ball.distance[w] <= cover.cover_radius &&
            !std::binary_search(members.begin(), members.end(), w)) {
          contains_ball = false;
        }
      }
      if (contains_ball) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace mot
