#include "hier/hierarchy.hpp"

#include "util/check.hpp"

namespace mot {

std::vector<OverlayNode> Hierarchy::detection_path(NodeId u) const {
  std::vector<OverlayNode> path;
  for (int level = 1; level <= height(); ++level) {
    for (const NodeId node : group(u, level)) {
      path.push_back({level, node});
    }
  }
  return path;
}

Weight Hierarchy::detection_path_length(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  const DistanceOracle& dist = oracle();
  Weight length = 0.0;
  NodeId previous = u;
  for (int l = 1; l <= level; ++l) {
    for (const NodeId node : group(u, l)) {
      length += dist.distance(previous, node);
      previous = node;
    }
  }
  return length;
}

}  // namespace mot
