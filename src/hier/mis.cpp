#include "hier/mis.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace mot {

MisResult luby_mis(const MisInstance& instance, Rng& rng) {
  const std::size_t n = instance.vertices.size();
  MOT_EXPECTS(instance.neighbors.size() == n);

  enum class State : std::uint8_t { kLive, kInMis, kRetired };
  std::vector<State> state(n, State::kLive);
  std::vector<std::uint64_t> priority(n);
  std::size_t live = n;

  MisResult result;
  while (live > 0) {
    ++result.rounds;
    // Round part 1: every live vertex draws a priority. Ties are broken by
    // vertex index so the round is total-ordered (matches the message-
    // passing algorithm where IDs break ties).
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] == State::kLive) priority[i] = rng();
    }
    // Round part 2: join if strictly best among live neighbors.
    std::vector<std::uint32_t> joined;
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] != State::kLive) continue;
      bool best = true;
      for (const std::uint32_t j : instance.neighbors[i]) {
        if (state[j] != State::kLive) continue;
        if (priority[j] > priority[i] ||
            (priority[j] == priority[i] && j < i)) {
          best = false;
          break;
        }
      }
      if (best) joined.push_back(static_cast<std::uint32_t>(i));
    }
    // Round part 3: winners enter the MIS; their live neighbors retire.
    for (const std::uint32_t i : joined) {
      if (state[i] != State::kLive) continue;  // retired by an earlier winner
      state[i] = State::kInMis;
      --live;
      for (const std::uint32_t j : instance.neighbors[i]) {
        if (state[j] == State::kLive) {
          state[j] = State::kRetired;
          --live;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == State::kInMis) {
      result.members.push_back(instance.vertices[i]);
    }
  }
  std::sort(result.members.begin(), result.members.end());
  return result;
}

bool is_maximal_independent_set(const MisInstance& instance,
                                const std::vector<NodeId>& members) {
  const std::size_t n = instance.vertices.size();
  std::unordered_set<NodeId> member_set(members.begin(), members.end());
  std::vector<bool> in_mis(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    in_mis[i] = member_set.count(instance.vertices[i]) > 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    bool has_mis_neighbor = false;
    for (const std::uint32_t j : instance.neighbors[i]) {
      if (in_mis[i] && in_mis[j]) return false;  // independence violated
      if (in_mis[j]) has_mis_neighbor = true;
    }
    if (!in_mis[i] && !has_mis_neighbor) return false;  // not maximal
  }
  return true;
}

}  // namespace mot
