// Sparse covers in the style of Awerbuch–Peleg (FOCS'90), the
// (O(log n), O(log n)) partition scheme the paper's Section 6 builds its
// general-network overlay from.
//
// For a cover radius r, the construction guarantees:
//   * coverage — every ball B(v, r) is fully contained in some cluster;
//   * bounded radius — every cluster has radius <= (ceil(log2 n) + 1) * r
//     from its leader (ball expansion doubles the core at most log2 n
//     times before the growth test fails);
//   * sparseness — empirically O(log n) clusters per node on the graph
//     families we evaluate (asserted by tests, reported by benches).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mot {

struct Cluster {
  NodeId leader = kInvalidNode;    // the growth center; hosts the leader role
  std::vector<NodeId> members;     // sorted by ID; contains leader
  Weight radius = 0.0;             // max distance leader -> member
};

struct SparseCover {
  Weight cover_radius = 0.0;       // the r whose balls are covered
  std::vector<Cluster> clusters;   // cluster label = index in this vector
  // clusters_of[v] = labels of clusters containing v, ascending.
  std::vector<std::vector<std::uint32_t>> clusters_of;

  double average_overlap() const;  // mean clusters per node
  std::size_t max_overlap() const;
};

// Builds a sparse cover of `graph` with cover radius `radius`.
// `growth_threshold` is the ball-expansion stop factor (2 corresponds to
// the classic n^{1/k} with k = log2 n).
SparseCover build_sparse_cover(const Graph& graph, Weight radius,
                               double growth_threshold = 2.0);

// Verification helper for tests: true iff every ball B(v, radius) is
// contained in at least one cluster of `cover`.
bool covers_all_balls(const Graph& graph, const SparseCover& cover);

}  // namespace mot
