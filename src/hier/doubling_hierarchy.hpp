// The constant-doubling overlay HS of Section 2.2.
//
// Levels are nested maximal independent sets: V_0 = V; V_{l+1} is a Luby
// MIS of the connectivity graph I_l = (V_l, E_l) where E_l joins members
// at graph distance < 2^{l+1}. The top level has a single node, the root.
//
// For each member w of V_l:
//   * its default parent home(w) is the nearest member of V_{l+1}
//     (guaranteed within 2^{l+1} by maximality);
//   * its parent set is every member of V_{l+1} within 4 * 2^{l+1},
//     sorted by node ID (the global visit order that avoids the
//     Section 3.1 race).
//
// The visit group of a bottom node u at level l is the parent set of
// home^{l-1}(u). Lemma 2.1 (detection paths of u and v meet by level
// ceil(log2 dist(u, v)) + 1) and Lemma 2.2 (path-length bound geometric
// in the level) hold by construction and are enforced by property tests.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "hier/hierarchy.hpp"
#include "hier/mis.hpp"
#include "util/rng.hpp"

namespace mot {

class DoublingHierarchy final : public Hierarchy {
 public:
  struct Params {
    std::uint64_t seed = 1;
    // Parent-set radius multiplier; the paper uses 4 (times 2^{l+1}).
    double parent_radius_factor = 4.0;
  };

  // Builds HS over `graph` (must be connected). `oracle` must outlive the
  // hierarchy and answer exact distances on `graph`.
  static std::unique_ptr<DoublingHierarchy> build(
      const Graph& graph, const DistanceOracle& oracle, const Params& params);

  // Value-typed image of the built overlay: exactly the per-level CSR
  // arrays (members, parent sets, default parents) that build() derives
  // from the MIS refinement — the expensive part of construction. The
  // derived indexes (membership bitmaps, dense slots, cluster cache) are
  // recomputed on restore. This is what the durable snapshot persists.
  struct LevelState {
    std::vector<NodeId> member_list;
    std::vector<std::size_t> parent_offsets;
    std::vector<NodeId> parent_data;
    std::vector<NodeId> default_parents;

    bool operator==(const LevelState&) const = default;
  };
  struct State {
    std::size_t num_nodes = 0;
    std::size_t total_mis_rounds = 0;
    std::vector<LevelState> levels;  // levels[0] = bottom

    bool operator==(const State&) const = default;
  };

  State export_state() const;

  // Reconstructs a hierarchy from an exported state without re-running
  // the MIS refinement. The state is untrusted (it crossed a disk):
  // structural validation failures return nullptr, never abort. `graph`
  // and `oracle` must describe the same network the state was exported
  // from (the durable layer checks a world fingerprint before calling).
  static std::unique_ptr<DoublingHierarchy> from_state(
      const Graph& graph, const DistanceOracle& oracle, const State& state);

  int height() const override { return static_cast<int>(levels_.size()) - 1; }
  NodeId root() const override;
  std::span<const NodeId> group(NodeId u, int level) const override;
  std::span<const NodeId> cluster(int level, NodeId center) const override;
  std::span<const NodeId> members(int level) const override;
  NodeId primary(NodeId u, int level) const override { return home(u, level); }
  const Graph& graph() const override { return *graph_; }
  const DistanceOracle& oracle() const override { return *oracle_; }

  // Default parent of `member` at `level` (a member of level + 1).
  NodeId default_parent(int level, NodeId member) const;

  // home^level(u): the canonical level-`level` ancestor of bottom node u.
  NodeId home(NodeId u, int level) const;

  bool is_member(int level, NodeId node) const;

  // Total MIS rounds across all levels (construction-cost reporting).
  std::size_t total_mis_rounds() const { return total_mis_rounds_; }

 private:
  // Parent/member tables are flat contiguous arrays: the climb inner
  // loop (home -> group -> span) is pure indexed loads with no hashing,
  // and — being immutable after build() — they are safe to share across
  // the parallel sweep engine's worker threads.
  struct Level {
    std::vector<NodeId> member_list;          // sorted
    std::vector<bool> membership;             // indexed by NodeId
    // Dense rank of each member within member_list, kNoSlot for
    // non-members. Indexed by NodeId.
    std::vector<std::uint32_t> slot;
    // Parent sets in CSR form, keyed by the dense slot of a member of
    // the level *below*: the parents of lower member with slot s are
    // parent_data[parent_offsets[s] .. parent_offsets[s + 1]), sorted by
    // ID and containing default_parents[s].
    std::vector<std::size_t> parent_offsets;
    std::vector<NodeId> parent_data;
    std::vector<NodeId> default_parents;      // by lower member slot
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  DoublingHierarchy() = default;

  const Graph* graph_ = nullptr;
  const DistanceOracle* oracle_ = nullptr;
  std::vector<Level> levels_;  // levels_[0] = bottom
  std::size_t total_mis_rounds_ = 0;

  // Lazy cache of load-balancing clusters (ball of radius 2^level), one
  // slot per (level, center). Readers do an acquire load of the slot;
  // the first thread to need an entry computes it under cluster_mutex_
  // and publishes the pointer with a release store. Entries are
  // immutable once published, so concurrent cluster() calls are safe.
  mutable std::vector<std::atomic<const std::vector<NodeId>*>>
      cluster_slots_;  // size (height + 1) * num_nodes
  mutable std::vector<std::unique_ptr<const std::vector<NodeId>>>
      cluster_owned_;  // guarded by cluster_mutex_
  mutable std::mutex cluster_mutex_;
};

}  // namespace mot
