// Abstract overlay hierarchy interface consumed by the MOT tracker.
//
// Both overlay constructions of the paper implement it:
//   * DoublingHierarchy (Section 2.2) — MIS-refinement levels with
//     default parents and parent sets, for constant-doubling graphs;
//   * GeneralHierarchy (Section 6) — sparse-cover cluster leaders, for
//     arbitrary topologies.
//
// The single concept MOT needs is the *visit group*: the ordered set of
// internal nodes a detection message from bottom node u visits at each
// level on its way to the root (parentset^l(u) in the doubling model,
// the leaders of the level-l clusters containing u in the general model).
// Visiting every group in a fixed global order (ID order) is what rules
// out the Section 3.1 race condition in concurrent executions.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace mot {

// An internal node of the overlay: a physical sensor playing its level-l
// role. The same sensor at two levels is two distinct overlay nodes.
struct OverlayNode {
  int level = 0;
  NodeId node = kInvalidNode;

  bool operator==(const OverlayNode&) const = default;
};

struct OverlayNodeHash {
  std::size_t operator()(const OverlayNode& v) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.level))
         << 32) |
        v.node);
  }
};

class Hierarchy {
 public:
  virtual ~Hierarchy() = default;

  // Root level index h. Levels run 0 (bottom, all sensors) .. h (root).
  virtual int height() const = 0;

  // The single top-level node.
  virtual NodeId root() const = 0;

  // Internal nodes a detection message from bottom node u visits at
  // `level`, in visit order (ascending ID / cluster label). group(u, 0)
  // is {u}; group(u, height()) is {root()}. Never empty for a connected
  // graph. The returned span stays valid for the hierarchy's lifetime.
  virtual std::span<const NodeId> group(NodeId u, int level) const = 0;

  // Load-balancing cluster around internal node `center` at `level`
  // (Section 5): the nodes that may host shares of center's detection
  // list. Always contains center. Sorted by ID.
  virtual std::span<const NodeId> cluster(int level, NodeId center) const = 0;

  // All distinct internal nodes at `level` (sorted). Level 0 = all sensors.
  virtual std::span<const NodeId> members(int level) const = 0;

  // The canonical single parent of u at `level` — the default parent
  // home^level(u) in the doubling model, the first-label cluster leader in
  // the general model. Always an element of group(u, level). Used by the
  // "default parents only" ablation (Section 3.1 discusses why probing the
  // whole parent set is better).
  virtual NodeId primary(NodeId u, int level) const = 0;

  virtual const Graph& graph() const = 0;
  virtual const DistanceOracle& oracle() const = 0;

  // Convenience: full detection path of u as (level, node) pairs in visit
  // order, bottom group excluded, root group included.
  std::vector<OverlayNode> detection_path(NodeId u) const;

  // Total length of the detection path of u up to and including `level`
  // (length(DPath_level(u)) in the paper): sum of distances between
  // consecutive visited overlay nodes starting at u.
  Weight detection_path_length(NodeId u, int level) const;
};

}  // namespace mot
