// Luby's randomized maximal independent set (STOC'85), simulated as the
// synchronous distributed algorithm the paper cites for constructing the
// overlay hierarchy levels (Section 2.2): in each round every live vertex
// draws a random priority, joins the MIS if its priority beats all live
// neighbors', and then MIS vertices and their neighbors retire.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mot {

// A lightweight adjacency view for MIS computation over *derived* graphs
// (the level-l connectivity graph I_l joins hierarchy members closer than
// 2^{l+1}, which is not the sensor graph itself).
struct MisInstance {
  // vertices[i] is an opaque label (e.g. the sensor NodeId) — returned in
  // the result but not interpreted.
  std::vector<NodeId> vertices;
  // neighbors[i] lists indices (into `vertices`) adjacent to vertex i.
  std::vector<std::vector<std::uint32_t>> neighbors;
};

struct MisResult {
  std::vector<NodeId> members;   // labels of MIS vertices, sorted
  std::size_t rounds = 0;        // synchronous rounds Luby needed
};

// Runs Luby's algorithm. Deterministic for a given rng state.
MisResult luby_mis(const MisInstance& instance, Rng& rng);

// Verification helper for tests: true iff `members` (labels) form a
// maximal independent set of `instance`.
bool is_maximal_independent_set(const MisInstance& instance,
                                const std::vector<NodeId>& members);

}  // namespace mot
