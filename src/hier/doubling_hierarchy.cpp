#include "hier/doubling_hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

namespace {

// Safety bound on hierarchy height: 2^64 exceeds any representable
// diameter, so the level loop must terminate long before this.
constexpr int kMaxLevels = 60;

}  // namespace

std::unique_ptr<DoublingHierarchy> DoublingHierarchy::build(
    const Graph& graph, const DistanceOracle& oracle, const Params& params) {
  MOT_EXPECTS(graph.num_nodes() >= 1);
  MOT_EXPECTS(params.parent_radius_factor >= 1.0);

  auto hierarchy = std::unique_ptr<DoublingHierarchy>(new DoublingHierarchy());
  hierarchy->graph_ = &graph;
  hierarchy->oracle_ = &oracle;

  Rng rng(params.seed);
  const std::size_t n = graph.num_nodes();

  // Level 0: every sensor.
  Level bottom;
  bottom.member_list.resize(n);
  for (NodeId v = 0; v < n; ++v) bottom.member_list[v] = v;
  bottom.membership.assign(n, true);
  hierarchy->levels_.push_back(std::move(bottom));

  // Refine: V_{l+1} = MIS of (V_l, {(u,v) : dist_G(u,v) < 2^{l+1}}).
  for (int level = 0; hierarchy->levels_[level].member_list.size() > 1;
       ++level) {
    MOT_CHECK(level < kMaxLevels);
    const auto& current = hierarchy->levels_[level].member_list;
    const Weight radius = std::ldexp(1.0, level + 1);  // 2^{l+1}

    MisInstance instance;
    instance.vertices = current;
    instance.neighbors.resize(current.size());
    for (std::uint32_t i = 0; i < current.size(); ++i) {
      const ShortestPathTree ball =
          dijkstra_bounded(graph, current[i], radius);
      for (std::uint32_t j = 0; j < current.size(); ++j) {
        if (j != i && ball.distance[current[j]] < radius) {
          instance.neighbors[i].push_back(j);
        }
      }
    }

    MisResult mis = luby_mis(instance, rng);
    hierarchy->total_mis_rounds_ += mis.rounds;

    Level next;
    next.member_list = std::move(mis.members);
    next.membership.assign(n, false);
    for (const NodeId v : next.member_list) next.membership[v] = true;
    hierarchy->levels_.push_back(std::move(next));
  }

  // Parent structure: for target level t, scan a bounded ball around each
  // V_t member and register it in the parent set of every V_{t-1} member
  // found (radius factor * 2^t, the paper's 4 * 2^{l+1}).
  for (int target = 1; target <= hierarchy->height(); ++target) {
    Level& upper = hierarchy->levels_[target];
    const Level& lower = hierarchy->levels_[target - 1];
    const Weight radius =
        params.parent_radius_factor * std::ldexp(1.0, target);

    // best (distance, parent) per lower member, for default parents.
    std::unordered_map<NodeId, std::pair<Weight, NodeId>> best;
    for (const NodeId parent : upper.member_list) {
      const ShortestPathTree ball = dijkstra_bounded(graph, parent, radius);
      for (const NodeId child : lower.member_list) {
        const Weight d = ball.distance[child];
        if (d > radius) continue;  // unreachable entries are +inf
        upper.parent_sets[child].push_back(parent);
        auto [it, inserted] = best.emplace(child, std::make_pair(d, parent));
        if (!inserted && (d < it->second.first ||
                          (d == it->second.first &&
                           parent < it->second.second))) {
          it->second = {d, parent};
        }
      }
    }
    for (auto& [child, parents] : upper.parent_sets) {
      std::sort(parents.begin(), parents.end());
    }
    for (const NodeId child : lower.member_list) {
      const auto it = best.find(child);
      // Maximality of the MIS guarantees a parent within 2^t < radius.
      MOT_CHECK(it != best.end());
      upper.default_parent.emplace(child, it->second.second);
    }
  }

  MOT_ENSURES(hierarchy->levels_.back().member_list.size() == 1);
  MOT_LOG_DEBUG("DoublingHierarchy: n=%zu height=%d root=%u mis_rounds=%zu",
                n, hierarchy->height(),
                hierarchy->levels_.back().member_list[0],
                hierarchy->total_mis_rounds_);
  return hierarchy;
}

NodeId DoublingHierarchy::root() const {
  MOT_CHECK(levels_.back().member_list.size() == 1);
  return levels_.back().member_list[0];
}

bool DoublingHierarchy::is_member(int level, NodeId node) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(node < graph_->num_nodes());
  return levels_[level].membership[node];
}

NodeId DoublingHierarchy::default_parent(int level, NodeId member) const {
  MOT_EXPECTS(level >= 0 && level < height());
  const auto& parents = levels_[level + 1].default_parent;
  const auto it = parents.find(member);
  MOT_EXPECTS(it != parents.end());
  return it->second;
}

NodeId DoublingHierarchy::home(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  NodeId at = u;
  for (int l = 1; l <= level; ++l) {
    at = default_parent(l - 1, at);
  }
  return at;
}

std::span<const NodeId> DoublingHierarchy::group(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(u < graph_->num_nodes());
  if (level == 0) {
    // The level-0 group is the node itself; alias into the bottom member
    // list, where member_list[u] == u.
    return {levels_[0].member_list.data() + u, 1};
  }
  const NodeId anchor = home(u, level - 1);
  const auto& sets = levels_[level].parent_sets;
  const auto it = sets.find(anchor);
  MOT_CHECK(it != sets.end());
  return it->second;
}

std::span<const NodeId> DoublingHierarchy::members(int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  return levels_[level].member_list;
}

std::span<const NodeId> DoublingHierarchy::cluster(int level,
                                                   NodeId center) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(center < graph_->num_nodes());
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level)) << 32) |
      center;
  auto it = cluster_cache_.find(key);
  if (it == cluster_cache_.end()) {
    const Weight radius = std::ldexp(1.0, level);  // 2^level
    const ShortestPathTree ball = dijkstra_bounded(*graph_, center, radius);
    std::vector<NodeId> members;
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      if (ball.distance[v] <= radius) members.push_back(v);
    }
    it = cluster_cache_.emplace(key, std::move(members)).first;
  }
  return it->second;
}

}  // namespace mot
