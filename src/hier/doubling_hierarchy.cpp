#include "hier/doubling_hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {

namespace {

// Safety bound on hierarchy height: 2^64 exceeds any representable
// diameter, so the level loop must terminate long before this.
constexpr int kMaxLevels = 60;

}  // namespace

std::unique_ptr<DoublingHierarchy> DoublingHierarchy::build(
    const Graph& graph, const DistanceOracle& oracle, const Params& params) {
  MOT_EXPECTS(graph.num_nodes() >= 1);
  MOT_EXPECTS(params.parent_radius_factor >= 1.0);

  auto hierarchy = std::unique_ptr<DoublingHierarchy>(new DoublingHierarchy());
  hierarchy->graph_ = &graph;
  hierarchy->oracle_ = &oracle;

  Rng rng(params.seed);
  const std::size_t n = graph.num_nodes();

  auto index_members = [n](Level& level) {
    level.membership.assign(n, false);
    level.slot.assign(n, kNoSlot);
    for (std::uint32_t i = 0; i < level.member_list.size(); ++i) {
      const NodeId v = level.member_list[i];
      level.membership[v] = true;
      level.slot[v] = i;
    }
  };

  // Level 0: every sensor.
  Level bottom;
  bottom.member_list.resize(n);
  for (NodeId v = 0; v < n; ++v) bottom.member_list[v] = v;
  index_members(bottom);
  hierarchy->levels_.push_back(std::move(bottom));

  // Refine: V_{l+1} = MIS of (V_l, {(u,v) : dist_G(u,v) < 2^{l+1}}).
  for (int level = 0; hierarchy->levels_[level].member_list.size() > 1;
       ++level) {
    MOT_CHECK(level < kMaxLevels);
    const auto& current = hierarchy->levels_[level].member_list;
    const Weight radius = std::ldexp(1.0, level + 1);  // 2^{l+1}

    MisInstance instance;
    instance.vertices = current;
    instance.neighbors.resize(current.size());
    for (std::uint32_t i = 0; i < current.size(); ++i) {
      const ShortestPathTree ball =
          dijkstra_bounded(graph, current[i], radius);
      for (std::uint32_t j = 0; j < current.size(); ++j) {
        if (j != i && ball.distance[current[j]] < radius) {
          instance.neighbors[i].push_back(j);
        }
      }
    }

    MisResult mis = luby_mis(instance, rng);
    hierarchy->total_mis_rounds_ += mis.rounds;

    Level next;
    next.member_list = std::move(mis.members);
    index_members(next);
    hierarchy->levels_.push_back(std::move(next));
  }

  // Parent structure: for target level t, scan a bounded ball around each
  // V_t member and register it in the parent set of every V_{t-1} member
  // found (radius factor * 2^t, the paper's 4 * 2^{l+1}). Accumulated
  // per-child, then flattened into the CSR arrays the climb loop reads.
  for (int target = 1; target <= hierarchy->height(); ++target) {
    Level& upper = hierarchy->levels_[target];
    const Level& lower = hierarchy->levels_[target - 1];
    const std::size_t lower_count = lower.member_list.size();
    const Weight radius =
        params.parent_radius_factor * std::ldexp(1.0, target);

    // Parent lists and best (distance, parent), per lower member slot.
    std::vector<std::vector<NodeId>> sets(lower_count);
    std::vector<std::pair<Weight, NodeId>> best(
        lower_count, {kInfiniteDistance, kInvalidNode});
    for (const NodeId parent : upper.member_list) {
      const ShortestPathTree ball = dijkstra_bounded(graph, parent, radius);
      for (std::uint32_t s = 0; s < lower_count; ++s) {
        const Weight d = ball.distance[lower.member_list[s]];
        if (d > radius) continue;  // unreachable entries are +inf
        sets[s].push_back(parent);
        if (d < best[s].first ||
            (d == best[s].first && parent < best[s].second)) {
          best[s] = {d, parent};
        }
      }
    }

    upper.parent_offsets.assign(lower_count + 1, 0);
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < lower_count; ++s) {
      upper.parent_offsets[s] = total;
      total += sets[s].size();
    }
    upper.parent_offsets[lower_count] = total;
    upper.parent_data.reserve(total);
    upper.default_parents.resize(lower_count);
    for (std::uint32_t s = 0; s < lower_count; ++s) {
      std::sort(sets[s].begin(), sets[s].end());
      upper.parent_data.insert(upper.parent_data.end(), sets[s].begin(),
                               sets[s].end());
      // Maximality of the MIS guarantees a parent within 2^t < radius.
      MOT_CHECK(best[s].second != kInvalidNode);
      upper.default_parents[s] = best[s].second;
    }
  }

  hierarchy->cluster_slots_ = std::vector<
      std::atomic<const std::vector<NodeId>*>>(
      static_cast<std::size_t>(hierarchy->height() + 1) * n);
  for (auto& slot : hierarchy->cluster_slots_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }

  MOT_ENSURES(hierarchy->levels_.back().member_list.size() == 1);
  MOT_LOG_DEBUG("DoublingHierarchy: n=%zu height=%d root=%u mis_rounds=%zu",
                n, hierarchy->height(),
                hierarchy->levels_.back().member_list[0],
                hierarchy->total_mis_rounds_);
  return hierarchy;
}

DoublingHierarchy::State DoublingHierarchy::export_state() const {
  State state;
  state.num_nodes = graph_->num_nodes();
  state.total_mis_rounds = total_mis_rounds_;
  state.levels.reserve(levels_.size());
  for (const Level& level : levels_) {
    LevelState out;
    out.member_list = level.member_list;
    out.parent_offsets = level.parent_offsets;
    out.parent_data = level.parent_data;
    out.default_parents = level.default_parents;
    state.levels.push_back(std::move(out));
  }
  return state;
}

std::unique_ptr<DoublingHierarchy> DoublingHierarchy::from_state(
    const Graph& graph, const DistanceOracle& oracle, const State& state) {
  const std::size_t n = graph.num_nodes();
  // Structural validation first; the state came off a disk and gets no
  // benefit of the doubt. Everything checked here is what group()/home()
  // index into without further bounds checks.
  if (n < 1 || state.num_nodes != n) return nullptr;
  if (state.levels.empty()) return nullptr;
  if (state.levels.back().member_list.size() != 1) return nullptr;
  for (std::size_t l = 0; l < state.levels.size(); ++l) {
    const LevelState& level = state.levels[l];
    if (level.member_list.empty()) return nullptr;
    if (!std::is_sorted(level.member_list.begin(), level.member_list.end())) {
      return nullptr;
    }
    for (const NodeId v : level.member_list) {
      if (v >= n) return nullptr;
    }
    if (l == 0) {
      // Bottom level must be the identity: group(u, 0) aliases slot u.
      if (level.member_list.size() != n) return nullptr;
      if (!level.parent_offsets.empty() || !level.parent_data.empty() ||
          !level.default_parents.empty()) {
        return nullptr;
      }
      continue;
    }
    const LevelState& lower = state.levels[l - 1];
    const std::size_t lower_count = lower.member_list.size();
    // Members of level l must be a subset of level l-1 (nested MIS).
    for (const NodeId v : level.member_list) {
      if (!std::binary_search(lower.member_list.begin(),
                              lower.member_list.end(), v)) {
        return nullptr;
      }
    }
    // CSR shape: one offset range and one default parent per lower slot;
    // every parent set non-empty, sorted, drawn from this level's
    // members, and containing the default parent.
    if (level.parent_offsets.size() != lower_count + 1) return nullptr;
    if (level.default_parents.size() != lower_count) return nullptr;
    if (level.parent_offsets.front() != 0 ||
        level.parent_offsets.back() != level.parent_data.size()) {
      return nullptr;
    }
    for (std::size_t s = 0; s < lower_count; ++s) {
      const std::size_t begin = level.parent_offsets[s];
      const std::size_t end = level.parent_offsets[s + 1];
      if (begin > end || end > level.parent_data.size()) return nullptr;
      if (begin == end) return nullptr;
      const auto first = level.parent_data.begin() + begin;
      const auto last = level.parent_data.begin() + end;
      if (!std::is_sorted(first, last)) return nullptr;
      for (auto it = first; it != last; ++it) {
        if (!std::binary_search(level.member_list.begin(),
                                level.member_list.end(), *it)) {
          return nullptr;
        }
      }
      if (!std::binary_search(first, last, level.default_parents[s])) {
        return nullptr;
      }
    }
  }

  auto hierarchy = std::unique_ptr<DoublingHierarchy>(new DoublingHierarchy());
  hierarchy->graph_ = &graph;
  hierarchy->oracle_ = &oracle;
  hierarchy->total_mis_rounds_ = state.total_mis_rounds;
  hierarchy->levels_.reserve(state.levels.size());
  for (const LevelState& in : state.levels) {
    Level level;
    level.member_list = in.member_list;
    level.parent_offsets = in.parent_offsets;
    level.parent_data = in.parent_data;
    level.default_parents = in.default_parents;
    level.membership.assign(n, false);
    level.slot.assign(n, kNoSlot);
    for (std::uint32_t i = 0; i < level.member_list.size(); ++i) {
      const NodeId v = level.member_list[i];
      level.membership[v] = true;
      level.slot[v] = i;
    }
    hierarchy->levels_.push_back(std::move(level));
  }
  hierarchy->cluster_slots_ = std::vector<
      std::atomic<const std::vector<NodeId>*>>(
      static_cast<std::size_t>(hierarchy->height() + 1) * n);
  for (auto& slot : hierarchy->cluster_slots_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
  return hierarchy;
}

NodeId DoublingHierarchy::root() const {
  MOT_CHECK(levels_.back().member_list.size() == 1);
  return levels_.back().member_list[0];
}

bool DoublingHierarchy::is_member(int level, NodeId node) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(node < graph_->num_nodes());
  return levels_[level].membership[node];
}

NodeId DoublingHierarchy::default_parent(int level, NodeId member) const {
  MOT_EXPECTS(level >= 0 && level < height());
  const std::uint32_t slot = levels_[level].slot[member];
  MOT_EXPECTS(slot != kNoSlot);
  return levels_[level + 1].default_parents[slot];
}

NodeId DoublingHierarchy::home(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  NodeId at = u;
  for (int l = 1; l <= level; ++l) {
    at = default_parent(l - 1, at);
  }
  return at;
}

std::span<const NodeId> DoublingHierarchy::group(NodeId u, int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(u < graph_->num_nodes());
  if (level == 0) {
    // The level-0 group is the node itself; alias into the bottom member
    // list, where member_list[u] == u.
    return {levels_[0].member_list.data() + u, 1};
  }
  const NodeId anchor = home(u, level - 1);
  const Level& lower = levels_[level - 1];
  const Level& upper = levels_[level];
  const std::uint32_t slot = lower.slot[anchor];
  MOT_CHECK(slot != kNoSlot);
  const std::size_t begin = upper.parent_offsets[slot];
  const std::size_t end = upper.parent_offsets[slot + 1];
  return {upper.parent_data.data() + begin, end - begin};
}

std::span<const NodeId> DoublingHierarchy::members(int level) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  return levels_[level].member_list;
}

std::span<const NodeId> DoublingHierarchy::cluster(int level,
                                                   NodeId center) const {
  MOT_EXPECTS(level >= 0 && level <= height());
  MOT_EXPECTS(center < graph_->num_nodes());
  auto& slot =
      cluster_slots_[static_cast<std::size_t>(level) * graph_->num_nodes() +
                     center];
  const std::vector<NodeId>* cached = slot.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;

  std::lock_guard<std::mutex> lock(cluster_mutex_);
  cached = slot.load(std::memory_order_relaxed);  // lost the race?
  if (cached == nullptr) {
    const Weight radius = std::ldexp(1.0, level);  // 2^level
    const ShortestPathTree ball = dijkstra_bounded(*graph_, center, radius);
    std::vector<NodeId> members;
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      if (ball.distance[v] <= radius) members.push_back(v);
    }
    cluster_owned_.push_back(
        std::make_unique<const std::vector<NodeId>>(std::move(members)));
    cached = cluster_owned_.back().get();
    slot.store(cached, std::memory_order_release);
  }
  return *cached;
}

}  // namespace mot
