// The general-network overlay of Section 6: one sparse cover per level
// with cover radius 2^l; the visit group of a bottom node u at level l is
// the set of leaders of the level-l clusters containing u, visited in
// ascending cluster label order. The top level is a single cluster
// containing every node, whose leader is the root.
//
// Meet property (Lemma 6.1): if dist(u, v) <= 2^l then v lies inside
// B(u, 2^l), which some level-l cluster contains entirely, so u's and v's
// level-l groups share that cluster's leader.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "hier/hierarchy.hpp"
#include "hier/sparse_cover.hpp"

namespace mot {

class GeneralHierarchy final : public Hierarchy {
 public:
  struct Params {
    // Ball-expansion stop factor for the sparse-cover construction.
    double growth_threshold = 2.0;
  };

  static std::unique_ptr<GeneralHierarchy> build(
      const Graph& graph, const DistanceOracle& oracle, const Params& params);

  int height() const override { return static_cast<int>(covers_.size()); }
  NodeId root() const override;
  std::span<const NodeId> group(NodeId u, int level) const override;
  std::span<const NodeId> cluster(int level, NodeId center) const override;
  std::span<const NodeId> members(int level) const override;
  NodeId primary(NodeId u, int level) const override {
    return group(u, level).front();
  }
  const Graph& graph() const override { return *graph_; }
  const DistanceOracle& oracle() const override { return *oracle_; }

  // The sparse cover backing level `level` (1-based; level 0 has no cover).
  const SparseCover& cover(int level) const;

  // Mean/max number of clusters a node belongs to at `level`.
  double average_overlap(int level) const;

 private:
  GeneralHierarchy() = default;

  const Graph* graph_ = nullptr;
  const DistanceOracle* oracle_ = nullptr;

  // covers_[l - 1] backs level l (levels 1 .. height()).
  std::vector<SparseCover> covers_;
  // groups_[l - 1][u]: leaders of clusters containing u at level l,
  // in cluster-label order.
  std::vector<std::vector<std::vector<NodeId>>> groups_;
  // members_[l - 1]: distinct leaders at level l, sorted.
  std::vector<std::vector<NodeId>> level_members_;
  std::vector<NodeId> identity_;  // identity_[v] == v, for level-0 groups
  // leader -> cluster label per level, for cluster() lookups.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> leader_to_cluster_;
};

}  // namespace mot
