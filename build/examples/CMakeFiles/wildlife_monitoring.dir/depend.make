# Empty dependencies file for wildlife_monitoring.
# This may be replaced when dependencies are built.
