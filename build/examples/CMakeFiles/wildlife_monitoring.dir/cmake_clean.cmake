file(REMOVE_RECURSE
  "CMakeFiles/wildlife_monitoring.dir/wildlife_monitoring.cpp.o"
  "CMakeFiles/wildlife_monitoring.dir/wildlife_monitoring.cpp.o.d"
  "wildlife_monitoring"
  "wildlife_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildlife_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
