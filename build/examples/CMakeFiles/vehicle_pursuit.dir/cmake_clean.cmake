file(REMOVE_RECURSE
  "CMakeFiles/vehicle_pursuit.dir/vehicle_pursuit.cpp.o"
  "CMakeFiles/vehicle_pursuit.dir/vehicle_pursuit.cpp.o.d"
  "vehicle_pursuit"
  "vehicle_pursuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_pursuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
