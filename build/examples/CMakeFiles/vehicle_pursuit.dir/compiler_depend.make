# Empty compiler generated dependencies file for vehicle_pursuit.
# This may be replaced when dependencies are built.
