file(REMOVE_RECURSE
  "libmot_graph.a"
)
