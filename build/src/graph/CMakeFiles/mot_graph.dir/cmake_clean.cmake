file(REMOVE_RECURSE
  "CMakeFiles/mot_graph.dir/distance_oracle.cpp.o"
  "CMakeFiles/mot_graph.dir/distance_oracle.cpp.o.d"
  "CMakeFiles/mot_graph.dir/generators.cpp.o"
  "CMakeFiles/mot_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mot_graph.dir/graph.cpp.o"
  "CMakeFiles/mot_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mot_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/mot_graph.dir/shortest_path.cpp.o.d"
  "libmot_graph.a"
  "libmot_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
