# Empty compiler generated dependencies file for mot_graph.
# This may be replaced when dependencies are built.
