file(REMOVE_RECURSE
  "libmot_metrics.a"
)
