# Empty compiler generated dependencies file for mot_metrics.
# This may be replaced when dependencies are built.
