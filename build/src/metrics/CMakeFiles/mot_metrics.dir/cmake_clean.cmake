file(REMOVE_RECURSE
  "CMakeFiles/mot_metrics.dir/metrics.cpp.o"
  "CMakeFiles/mot_metrics.dir/metrics.cpp.o.d"
  "libmot_metrics.a"
  "libmot_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
