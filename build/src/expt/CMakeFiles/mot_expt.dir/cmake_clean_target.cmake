file(REMOVE_RECURSE
  "libmot_expt.a"
)
