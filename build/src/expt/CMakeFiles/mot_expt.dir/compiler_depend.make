# Empty compiler generated dependencies file for mot_expt.
# This may be replaced when dependencies are built.
