file(REMOVE_RECURSE
  "CMakeFiles/mot_expt.dir/experiment.cpp.o"
  "CMakeFiles/mot_expt.dir/experiment.cpp.o.d"
  "CMakeFiles/mot_expt.dir/fig_runners.cpp.o"
  "CMakeFiles/mot_expt.dir/fig_runners.cpp.o.d"
  "libmot_expt.a"
  "libmot_expt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_expt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
