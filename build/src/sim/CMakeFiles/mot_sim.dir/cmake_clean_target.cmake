file(REMOVE_RECURSE
  "libmot_sim.a"
)
