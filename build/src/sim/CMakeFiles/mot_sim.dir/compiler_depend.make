# Empty compiler generated dependencies file for mot_sim.
# This may be replaced when dependencies are built.
