file(REMOVE_RECURSE
  "CMakeFiles/mot_sim.dir/event_sim.cpp.o"
  "CMakeFiles/mot_sim.dir/event_sim.cpp.o.d"
  "libmot_sim.a"
  "libmot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
