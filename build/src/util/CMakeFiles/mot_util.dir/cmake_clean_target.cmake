file(REMOVE_RECURSE
  "libmot_util.a"
)
