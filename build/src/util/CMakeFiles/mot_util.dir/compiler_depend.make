# Empty compiler generated dependencies file for mot_util.
# This may be replaced when dependencies are built.
