file(REMOVE_RECURSE
  "CMakeFiles/mot_util.dir/flags.cpp.o"
  "CMakeFiles/mot_util.dir/flags.cpp.o.d"
  "CMakeFiles/mot_util.dir/log.cpp.o"
  "CMakeFiles/mot_util.dir/log.cpp.o.d"
  "CMakeFiles/mot_util.dir/rng.cpp.o"
  "CMakeFiles/mot_util.dir/rng.cpp.o.d"
  "CMakeFiles/mot_util.dir/stats.cpp.o"
  "CMakeFiles/mot_util.dir/stats.cpp.o.d"
  "CMakeFiles/mot_util.dir/table.cpp.o"
  "CMakeFiles/mot_util.dir/table.cpp.o.d"
  "libmot_util.a"
  "libmot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
