file(REMOVE_RECURSE
  "CMakeFiles/mot_tracking.dir/chain_tracker.cpp.o"
  "CMakeFiles/mot_tracking.dir/chain_tracker.cpp.o.d"
  "libmot_tracking.a"
  "libmot_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
