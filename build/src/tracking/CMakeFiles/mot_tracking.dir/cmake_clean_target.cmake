file(REMOVE_RECURSE
  "libmot_tracking.a"
)
