
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracking/chain_tracker.cpp" "src/tracking/CMakeFiles/mot_tracking.dir/chain_tracker.cpp.o" "gcc" "src/tracking/CMakeFiles/mot_tracking.dir/chain_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hier/CMakeFiles/mot_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
