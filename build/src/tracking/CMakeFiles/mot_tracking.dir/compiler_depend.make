# Empty compiler generated dependencies file for mot_tracking.
# This may be replaced when dependencies are built.
