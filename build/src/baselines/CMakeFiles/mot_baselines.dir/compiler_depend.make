# Empty compiler generated dependencies file for mot_baselines.
# This may be replaced when dependencies are built.
