file(REMOVE_RECURSE
  "libmot_baselines.a"
)
