file(REMOVE_RECURSE
  "CMakeFiles/mot_baselines.dir/spanning_tree.cpp.o"
  "CMakeFiles/mot_baselines.dir/spanning_tree.cpp.o.d"
  "CMakeFiles/mot_baselines.dir/tree_tracker.cpp.o"
  "CMakeFiles/mot_baselines.dir/tree_tracker.cpp.o.d"
  "libmot_baselines.a"
  "libmot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
