file(REMOVE_RECURSE
  "CMakeFiles/mot_net.dir/router.cpp.o"
  "CMakeFiles/mot_net.dir/router.cpp.o.d"
  "libmot_net.a"
  "libmot_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
