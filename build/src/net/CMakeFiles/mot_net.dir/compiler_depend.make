# Empty compiler generated dependencies file for mot_net.
# This may be replaced when dependencies are built.
