file(REMOVE_RECURSE
  "libmot_net.a"
)
