file(REMOVE_RECURSE
  "libmot_hier.a"
)
