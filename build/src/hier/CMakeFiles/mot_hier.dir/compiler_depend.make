# Empty compiler generated dependencies file for mot_hier.
# This may be replaced when dependencies are built.
