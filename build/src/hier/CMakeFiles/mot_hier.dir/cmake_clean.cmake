file(REMOVE_RECURSE
  "CMakeFiles/mot_hier.dir/doubling_hierarchy.cpp.o"
  "CMakeFiles/mot_hier.dir/doubling_hierarchy.cpp.o.d"
  "CMakeFiles/mot_hier.dir/general_hierarchy.cpp.o"
  "CMakeFiles/mot_hier.dir/general_hierarchy.cpp.o.d"
  "CMakeFiles/mot_hier.dir/hierarchy.cpp.o"
  "CMakeFiles/mot_hier.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mot_hier.dir/mis.cpp.o"
  "CMakeFiles/mot_hier.dir/mis.cpp.o.d"
  "CMakeFiles/mot_hier.dir/sparse_cover.cpp.o"
  "CMakeFiles/mot_hier.dir/sparse_cover.cpp.o.d"
  "libmot_hier.a"
  "libmot_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
