
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hier/doubling_hierarchy.cpp" "src/hier/CMakeFiles/mot_hier.dir/doubling_hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/mot_hier.dir/doubling_hierarchy.cpp.o.d"
  "/root/repo/src/hier/general_hierarchy.cpp" "src/hier/CMakeFiles/mot_hier.dir/general_hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/mot_hier.dir/general_hierarchy.cpp.o.d"
  "/root/repo/src/hier/hierarchy.cpp" "src/hier/CMakeFiles/mot_hier.dir/hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/mot_hier.dir/hierarchy.cpp.o.d"
  "/root/repo/src/hier/mis.cpp" "src/hier/CMakeFiles/mot_hier.dir/mis.cpp.o" "gcc" "src/hier/CMakeFiles/mot_hier.dir/mis.cpp.o.d"
  "/root/repo/src/hier/sparse_cover.cpp" "src/hier/CMakeFiles/mot_hier.dir/sparse_cover.cpp.o" "gcc" "src/hier/CMakeFiles/mot_hier.dir/sparse_cover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
