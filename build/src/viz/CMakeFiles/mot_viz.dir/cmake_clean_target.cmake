file(REMOVE_RECURSE
  "libmot_viz.a"
)
