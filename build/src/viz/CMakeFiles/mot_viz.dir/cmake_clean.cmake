file(REMOVE_RECURSE
  "CMakeFiles/mot_viz.dir/dot_export.cpp.o"
  "CMakeFiles/mot_viz.dir/dot_export.cpp.o.d"
  "libmot_viz.a"
  "libmot_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
