# Empty compiler generated dependencies file for mot_viz.
# This may be replaced when dependencies are built.
