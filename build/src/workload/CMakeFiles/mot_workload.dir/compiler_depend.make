# Empty compiler generated dependencies file for mot_workload.
# This may be replaced when dependencies are built.
