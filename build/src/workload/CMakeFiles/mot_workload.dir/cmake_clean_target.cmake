file(REMOVE_RECURSE
  "libmot_workload.a"
)
