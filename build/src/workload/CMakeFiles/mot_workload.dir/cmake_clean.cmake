file(REMOVE_RECURSE
  "CMakeFiles/mot_workload.dir/mobility.cpp.o"
  "CMakeFiles/mot_workload.dir/mobility.cpp.o.d"
  "CMakeFiles/mot_workload.dir/trace_io.cpp.o"
  "CMakeFiles/mot_workload.dir/trace_io.cpp.o.d"
  "libmot_workload.a"
  "libmot_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
