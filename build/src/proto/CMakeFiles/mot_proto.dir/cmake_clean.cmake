file(REMOVE_RECURSE
  "CMakeFiles/mot_proto.dir/distributed_mot.cpp.o"
  "CMakeFiles/mot_proto.dir/distributed_mot.cpp.o.d"
  "libmot_proto.a"
  "libmot_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
