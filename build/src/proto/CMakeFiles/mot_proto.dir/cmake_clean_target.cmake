file(REMOVE_RECURSE
  "libmot_proto.a"
)
