# Empty compiler generated dependencies file for mot_proto.
# This may be replaced when dependencies are built.
