# Empty dependencies file for mot_debruijn.
# This may be replaced when dependencies are built.
