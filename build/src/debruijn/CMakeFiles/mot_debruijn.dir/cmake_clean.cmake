file(REMOVE_RECURSE
  "CMakeFiles/mot_debruijn.dir/debruijn.cpp.o"
  "CMakeFiles/mot_debruijn.dir/debruijn.cpp.o.d"
  "libmot_debruijn.a"
  "libmot_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
