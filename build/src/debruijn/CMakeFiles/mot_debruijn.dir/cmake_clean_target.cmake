file(REMOVE_RECURSE
  "libmot_debruijn.a"
)
