file(REMOVE_RECURSE
  "CMakeFiles/mot_core.dir/concurrent.cpp.o"
  "CMakeFiles/mot_core.dir/concurrent.cpp.o.d"
  "CMakeFiles/mot_core.dir/dynamic.cpp.o"
  "CMakeFiles/mot_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/mot_core.dir/mot.cpp.o"
  "CMakeFiles/mot_core.dir/mot.cpp.o.d"
  "libmot_core.a"
  "libmot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
