# Empty dependencies file for mot_core.
# This may be replaced when dependencies are built.
