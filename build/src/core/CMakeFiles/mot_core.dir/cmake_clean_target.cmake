file(REMOVE_RECURSE
  "libmot_core.a"
)
