file(REMOVE_RECURSE
  "CMakeFiles/tbl_protocol.dir/tbl_protocol.cpp.o"
  "CMakeFiles/tbl_protocol.dir/tbl_protocol.cpp.o.d"
  "tbl_protocol"
  "tbl_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
