# Empty dependencies file for tbl_protocol.
# This may be replaced when dependencies are built.
