# Empty dependencies file for tbl_maint_scaling.
# This may be replaced when dependencies are built.
