file(REMOVE_RECURSE
  "CMakeFiles/tbl_maint_scaling.dir/tbl_maint_scaling.cpp.o"
  "CMakeFiles/tbl_maint_scaling.dir/tbl_maint_scaling.cpp.o.d"
  "tbl_maint_scaling"
  "tbl_maint_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_maint_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
