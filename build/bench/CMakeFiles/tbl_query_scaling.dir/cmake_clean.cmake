file(REMOVE_RECURSE
  "CMakeFiles/tbl_query_scaling.dir/tbl_query_scaling.cpp.o"
  "CMakeFiles/tbl_query_scaling.dir/tbl_query_scaling.cpp.o.d"
  "tbl_query_scaling"
  "tbl_query_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_query_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
