# Empty dependencies file for tbl_query_scaling.
# This may be replaced when dependencies are built.
