file(REMOVE_RECURSE
  "CMakeFiles/fig05_maint_1000.dir/fig05_maint_1000.cpp.o"
  "CMakeFiles/fig05_maint_1000.dir/fig05_maint_1000.cpp.o.d"
  "fig05_maint_1000"
  "fig05_maint_1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_maint_1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
