# Empty compiler generated dependencies file for fig05_maint_1000.
# This may be replaced when dependencies are built.
