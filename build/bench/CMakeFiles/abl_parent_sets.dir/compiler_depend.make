# Empty compiler generated dependencies file for abl_parent_sets.
# This may be replaced when dependencies are built.
