file(REMOVE_RECURSE
  "CMakeFiles/abl_parent_sets.dir/abl_parent_sets.cpp.o"
  "CMakeFiles/abl_parent_sets.dir/abl_parent_sets.cpp.o.d"
  "abl_parent_sets"
  "abl_parent_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_parent_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
