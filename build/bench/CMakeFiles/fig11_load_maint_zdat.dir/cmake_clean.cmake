file(REMOVE_RECURSE
  "CMakeFiles/fig11_load_maint_zdat.dir/fig11_load_maint_zdat.cpp.o"
  "CMakeFiles/fig11_load_maint_zdat.dir/fig11_load_maint_zdat.cpp.o.d"
  "fig11_load_maint_zdat"
  "fig11_load_maint_zdat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_load_maint_zdat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
