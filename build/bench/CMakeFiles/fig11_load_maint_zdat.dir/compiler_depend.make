# Empty compiler generated dependencies file for fig11_load_maint_zdat.
# This may be replaced when dependencies are built.
