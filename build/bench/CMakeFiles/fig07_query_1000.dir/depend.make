# Empty dependencies file for fig07_query_1000.
# This may be replaced when dependencies are built.
