file(REMOVE_RECURSE
  "CMakeFiles/fig07_query_1000.dir/fig07_query_1000.cpp.o"
  "CMakeFiles/fig07_query_1000.dir/fig07_query_1000.cpp.o.d"
  "fig07_query_1000"
  "fig07_query_1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_query_1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
