file(REMOVE_RECURSE
  "CMakeFiles/fig14_query_conc_100.dir/fig14_query_conc_100.cpp.o"
  "CMakeFiles/fig14_query_conc_100.dir/fig14_query_conc_100.cpp.o.d"
  "fig14_query_conc_100"
  "fig14_query_conc_100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_query_conc_100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
