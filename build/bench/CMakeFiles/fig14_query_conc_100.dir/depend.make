# Empty dependencies file for fig14_query_conc_100.
# This may be replaced when dependencies are built.
