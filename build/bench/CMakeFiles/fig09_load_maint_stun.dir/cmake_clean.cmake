file(REMOVE_RECURSE
  "CMakeFiles/fig09_load_maint_stun.dir/fig09_load_maint_stun.cpp.o"
  "CMakeFiles/fig09_load_maint_stun.dir/fig09_load_maint_stun.cpp.o.d"
  "fig09_load_maint_stun"
  "fig09_load_maint_stun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_load_maint_stun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
