# Empty compiler generated dependencies file for fig09_load_maint_stun.
# This may be replaced when dependencies are built.
