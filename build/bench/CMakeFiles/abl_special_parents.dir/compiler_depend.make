# Empty compiler generated dependencies file for abl_special_parents.
# This may be replaced when dependencies are built.
