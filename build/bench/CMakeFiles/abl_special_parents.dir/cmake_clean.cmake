file(REMOVE_RECURSE
  "CMakeFiles/abl_special_parents.dir/abl_special_parents.cpp.o"
  "CMakeFiles/abl_special_parents.dir/abl_special_parents.cpp.o.d"
  "abl_special_parents"
  "abl_special_parents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_special_parents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
