file(REMOVE_RECURSE
  "CMakeFiles/tbl_general_graphs.dir/tbl_general_graphs.cpp.o"
  "CMakeFiles/tbl_general_graphs.dir/tbl_general_graphs.cpp.o.d"
  "tbl_general_graphs"
  "tbl_general_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_general_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
