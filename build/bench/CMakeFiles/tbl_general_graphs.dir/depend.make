# Empty dependencies file for tbl_general_graphs.
# This may be replaced when dependencies are built.
