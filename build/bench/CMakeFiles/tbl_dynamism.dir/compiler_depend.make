# Empty compiler generated dependencies file for tbl_dynamism.
# This may be replaced when dependencies are built.
