file(REMOVE_RECURSE
  "CMakeFiles/tbl_dynamism.dir/tbl_dynamism.cpp.o"
  "CMakeFiles/tbl_dynamism.dir/tbl_dynamism.cpp.o.d"
  "tbl_dynamism"
  "tbl_dynamism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
