# Empty compiler generated dependencies file for fig13_maint_conc_1000.
# This may be replaced when dependencies are built.
