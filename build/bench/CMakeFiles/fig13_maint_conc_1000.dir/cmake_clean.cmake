file(REMOVE_RECURSE
  "CMakeFiles/fig13_maint_conc_1000.dir/fig13_maint_conc_1000.cpp.o"
  "CMakeFiles/fig13_maint_conc_1000.dir/fig13_maint_conc_1000.cpp.o.d"
  "fig13_maint_conc_1000"
  "fig13_maint_conc_1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_maint_conc_1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
