# Empty compiler generated dependencies file for micro_hierarchy.
# This may be replaced when dependencies are built.
