file(REMOVE_RECURSE
  "CMakeFiles/micro_hierarchy.dir/micro_hierarchy.cpp.o"
  "CMakeFiles/micro_hierarchy.dir/micro_hierarchy.cpp.o.d"
  "micro_hierarchy"
  "micro_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
