file(REMOVE_RECURSE
  "CMakeFiles/tbl_load_ratio.dir/tbl_load_ratio.cpp.o"
  "CMakeFiles/tbl_load_ratio.dir/tbl_load_ratio.cpp.o.d"
  "tbl_load_ratio"
  "tbl_load_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_load_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
