# Empty compiler generated dependencies file for tbl_load_ratio.
# This may be replaced when dependencies are built.
