# Empty dependencies file for fig15_query_conc_1000.
# This may be replaced when dependencies are built.
