file(REMOVE_RECURSE
  "CMakeFiles/fig15_query_conc_1000.dir/fig15_query_conc_1000.cpp.o"
  "CMakeFiles/fig15_query_conc_1000.dir/fig15_query_conc_1000.cpp.o.d"
  "fig15_query_conc_1000"
  "fig15_query_conc_1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_query_conc_1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
