file(REMOVE_RECURSE
  "CMakeFiles/fig06_query_100.dir/fig06_query_100.cpp.o"
  "CMakeFiles/fig06_query_100.dir/fig06_query_100.cpp.o.d"
  "fig06_query_100"
  "fig06_query_100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_query_100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
