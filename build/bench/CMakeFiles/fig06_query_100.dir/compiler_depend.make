# Empty compiler generated dependencies file for fig06_query_100.
# This may be replaced when dependencies are built.
