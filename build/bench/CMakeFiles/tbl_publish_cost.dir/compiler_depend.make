# Empty compiler generated dependencies file for tbl_publish_cost.
# This may be replaced when dependencies are built.
