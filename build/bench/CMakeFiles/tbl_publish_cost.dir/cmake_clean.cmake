file(REMOVE_RECURSE
  "CMakeFiles/tbl_publish_cost.dir/tbl_publish_cost.cpp.o"
  "CMakeFiles/tbl_publish_cost.dir/tbl_publish_cost.cpp.o.d"
  "tbl_publish_cost"
  "tbl_publish_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_publish_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
