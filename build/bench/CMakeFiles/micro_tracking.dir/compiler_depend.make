# Empty compiler generated dependencies file for micro_tracking.
# This may be replaced when dependencies are built.
