file(REMOVE_RECURSE
  "CMakeFiles/micro_tracking.dir/micro_tracking.cpp.o"
  "CMakeFiles/micro_tracking.dir/micro_tracking.cpp.o.d"
  "micro_tracking"
  "micro_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
