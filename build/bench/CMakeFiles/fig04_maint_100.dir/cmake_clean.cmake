file(REMOVE_RECURSE
  "CMakeFiles/fig04_maint_100.dir/fig04_maint_100.cpp.o"
  "CMakeFiles/fig04_maint_100.dir/fig04_maint_100.cpp.o.d"
  "fig04_maint_100"
  "fig04_maint_100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_maint_100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
