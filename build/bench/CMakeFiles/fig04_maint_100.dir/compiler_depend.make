# Empty compiler generated dependencies file for fig04_maint_100.
# This may be replaced when dependencies are built.
