# Empty compiler generated dependencies file for fig08_load_init_stun.
# This may be replaced when dependencies are built.
