file(REMOVE_RECURSE
  "CMakeFiles/fig08_load_init_stun.dir/fig08_load_init_stun.cpp.o"
  "CMakeFiles/fig08_load_init_stun.dir/fig08_load_init_stun.cpp.o.d"
  "fig08_load_init_stun"
  "fig08_load_init_stun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_load_init_stun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
