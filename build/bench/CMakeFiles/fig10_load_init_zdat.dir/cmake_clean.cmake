file(REMOVE_RECURSE
  "CMakeFiles/fig10_load_init_zdat.dir/fig10_load_init_zdat.cpp.o"
  "CMakeFiles/fig10_load_init_zdat.dir/fig10_load_init_zdat.cpp.o.d"
  "fig10_load_init_zdat"
  "fig10_load_init_zdat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load_init_zdat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
