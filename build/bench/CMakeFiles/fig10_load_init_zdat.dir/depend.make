# Empty dependencies file for fig10_load_init_zdat.
# This may be replaced when dependencies are built.
