file(REMOVE_RECURSE
  "CMakeFiles/tbl_routing.dir/tbl_routing.cpp.o"
  "CMakeFiles/tbl_routing.dir/tbl_routing.cpp.o.d"
  "tbl_routing"
  "tbl_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
