# Empty dependencies file for tbl_routing.
# This may be replaced when dependencies are built.
