# Empty compiler generated dependencies file for abl_forwarding.
# This may be replaced when dependencies are built.
