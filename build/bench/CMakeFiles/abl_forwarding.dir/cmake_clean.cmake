file(REMOVE_RECURSE
  "CMakeFiles/abl_forwarding.dir/abl_forwarding.cpp.o"
  "CMakeFiles/abl_forwarding.dir/abl_forwarding.cpp.o.d"
  "abl_forwarding"
  "abl_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
