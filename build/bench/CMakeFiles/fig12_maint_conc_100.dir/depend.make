# Empty dependencies file for fig12_maint_conc_100.
# This may be replaced when dependencies are built.
