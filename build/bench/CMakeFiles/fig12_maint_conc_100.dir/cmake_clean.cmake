file(REMOVE_RECURSE
  "CMakeFiles/fig12_maint_conc_100.dir/fig12_maint_conc_100.cpp.o"
  "CMakeFiles/fig12_maint_conc_100.dir/fig12_maint_conc_100.cpp.o.d"
  "fig12_maint_conc_100"
  "fig12_maint_conc_100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_maint_conc_100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
