
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_debruijn.cpp" "bench/CMakeFiles/abl_debruijn.dir/abl_debruijn.cpp.o" "gcc" "bench/CMakeFiles/abl_debruijn.dir/abl_debruijn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expt/CMakeFiles/mot_expt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mot_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mot_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mot_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mot_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/mot_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/mot_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/mot_debruijn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
