# Empty compiler generated dependencies file for abl_debruijn.
# This may be replaced when dependencies are built.
