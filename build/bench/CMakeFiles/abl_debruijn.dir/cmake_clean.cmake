file(REMOVE_RECURSE
  "CMakeFiles/abl_debruijn.dir/abl_debruijn.cpp.o"
  "CMakeFiles/abl_debruijn.dir/abl_debruijn.cpp.o.d"
  "abl_debruijn"
  "abl_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
