
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/mot_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_chain_tracker.cpp" "tests/CMakeFiles/mot_tests.dir/test_chain_tracker.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_chain_tracker.cpp.o.d"
  "/root/repo/tests/test_concurrent.cpp" "tests/CMakeFiles/mot_tests.dir/test_concurrent.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_concurrent.cpp.o.d"
  "/root/repo/tests/test_contracts.cpp" "tests/CMakeFiles/mot_tests.dir/test_contracts.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_contracts.cpp.o.d"
  "/root/repo/tests/test_debruijn.cpp" "tests/CMakeFiles/mot_tests.dir/test_debruijn.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_debruijn.cpp.o.d"
  "/root/repo/tests/test_distance_oracle.cpp" "tests/CMakeFiles/mot_tests.dir/test_distance_oracle.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_distance_oracle.cpp.o.d"
  "/root/repo/tests/test_doubling_hierarchy.cpp" "tests/CMakeFiles/mot_tests.dir/test_doubling_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_doubling_hierarchy.cpp.o.d"
  "/root/repo/tests/test_dynamic.cpp" "tests/CMakeFiles/mot_tests.dir/test_dynamic.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_dynamic.cpp.o.d"
  "/root/repo/tests/test_evacuation.cpp" "tests/CMakeFiles/mot_tests.dir/test_evacuation.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_evacuation.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/mot_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/mot_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/mot_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/mot_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_general_hierarchy.cpp" "tests/CMakeFiles/mot_tests.dir/test_general_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_general_hierarchy.cpp.o.d"
  "/root/repo/tests/test_general_mot.cpp" "tests/CMakeFiles/mot_tests.dir/test_general_mot.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_general_mot.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/mot_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/mot_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hierarchy_properties.cpp" "tests/CMakeFiles/mot_tests.dir/test_hierarchy_properties.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_hierarchy_properties.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/mot_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mis.cpp" "tests/CMakeFiles/mot_tests.dir/test_mis.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_mis.cpp.o.d"
  "/root/repo/tests/test_mot.cpp" "tests/CMakeFiles/mot_tests.dir/test_mot.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_mot.cpp.o.d"
  "/root/repo/tests/test_proto.cpp" "tests/CMakeFiles/mot_tests.dir/test_proto.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_proto.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mot_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/mot_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_shortest_path.cpp" "tests/CMakeFiles/mot_tests.dir/test_shortest_path.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_shortest_path.cpp.o.d"
  "/root/repo/tests/test_sparse_cover.cpp" "tests/CMakeFiles/mot_tests.dir/test_sparse_cover.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_sparse_cover.cpp.o.d"
  "/root/repo/tests/test_special_parents.cpp" "tests/CMakeFiles/mot_tests.dir/test_special_parents.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_special_parents.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mot_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mot_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/mot_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_tracker_contract.cpp" "tests/CMakeFiles/mot_tests.dir/test_tracker_contract.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_tracker_contract.cpp.o.d"
  "/root/repo/tests/test_viz.cpp" "tests/CMakeFiles/mot_tests.dir/test_viz.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_viz.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/mot_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/mot_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expt/CMakeFiles/mot_expt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mot_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mot_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mot_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mot_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/mot_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/mot_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/mot_debruijn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
