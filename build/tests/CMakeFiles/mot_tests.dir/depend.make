# Empty dependencies file for mot_tests.
# This may be replaced when dependencies are built.
