// Dynamic sensor network (Section 7): sensors run out of battery and are
// replaced while the load-balancing clusters adapt their de Bruijn
// embeddings, with O(1) amortized member updates per cluster.
//
//   $ ./dynamic_network [--events N] [--seed S]
#include <cstdio>

#include "core/dynamic.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  std::uint64_t events = 400;
  std::uint64_t seed = 11;
  Flags flags("Dynamic network example: cluster adaptation under churn");
  flags.register_flag("events", &events, "join/leave events to simulate");
  flags.register_flag("seed", &seed, "experiment seed");
  std::string log_level = "info";
  flags.register_flag("log-level", &log_level,
                      "stderr log level: debug|info|warn|error");
  if (!flags.parse(argc, argv)) return 1;
  const std::optional<mot::LogLevel> level = mot::parse_log_level(log_level);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s'\n", log_level.c_str());
    return 1;
  }
  mot::set_log_level(*level);

  const Graph field = make_grid(16, 16);
  const auto oracle = make_distance_oracle(field);
  DoublingHierarchy::Params hier_params;
  hier_params.seed = seed;
  const auto hierarchy = DoublingHierarchy::build(field, *oracle, hier_params);

  DynamicClusterSet clusters(*hierarchy, {seed, 2.0});
  std::printf("field: %s\n", field.summary().c_str());
  std::printf("load-balancing clusters: %zu (levels 1..%d)\n",
              clusters.num_clusters(), hierarchy->height());

  Rng rng(seed);
  std::vector<NodeId> depleted;
  std::size_t handoffs = 0;
  std::size_t broadcasts = 0;
  for (std::uint64_t e = 0; e < events; ++e) {
    if (!depleted.empty() && rng.chance(0.5)) {
      // A battery got replaced: the sensor rejoins its clusters.
      const std::size_t pick = rng.below(depleted.size());
      clusters.node_joins(depleted[pick]);
      depleted.erase(depleted.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // A sensor announces its battery is dying and leaves gracefully
      // (the paper's assumption: failures are announced).
      const auto victim = static_cast<NodeId>(rng.below(field.num_nodes()));
      if (std::find(depleted.begin(), depleted.end(), victim) !=
          depleted.end()) {
        continue;
      }
      const AdaptabilityReport report = clusters.node_leaves(victim);
      handoffs += report.leader_handoffs;
      broadcasts += report.handoff_broadcasts;
      depleted.push_back(victim);
    }
  }

  std::printf("after %llu churn events:\n",
              static_cast<unsigned long long>(events));
  std::printf("  amortized relabel updates per event:   %.2f\n",
              clusters.amortized_updates());
  std::printf("  amortized updates per affected cluster: %.2f (Section 7: "
              "O(1))\n",
              clusters.amortized_updates_per_cluster());
  std::printf("  leader handoffs: %zu (announced to %zu members)\n",
              handoffs, broadcasts);
  std::printf("  cluster rebuilds past drift threshold: %zu\n",
              clusters.rebuilds());
  return 0;
}
