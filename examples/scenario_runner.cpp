// Scenario runner: a small CLI over the whole library. Generates (or
// loads) a movement trace, runs any tracking algorithm on any built-in
// topology, and reports cost ratios and load — with optional trace and
// Graphviz exports for inspection.
//
//   $ ./scenario_runner --topology grid --nodes 256 --algo mot \
//        --objects 50 --moves 100 --queries 100 --seed 9 \
//        --save-trace /tmp/run.trace --dot /tmp/overlay.dot
//   $ ./scenario_runner --load-trace /tmp/run.trace --algo stun
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "expt/experiment.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "viz/dot_export.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace mot;

Graph build_topology(const std::string& name, std::size_t nodes,
                     std::uint64_t seed) {
  if (name == "grid") {
    const auto side = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(nodes))));
    return make_grid(side, side);
  }
  if (name == "ring") return make_ring(nodes);
  if (name == "torus") {
    const auto side = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(nodes))));
    return make_torus(side, side);
  }
  if (name == "geometric") {
    Rng rng(SeedTree(seed).seed_for("deploy"));
    const double side = std::sqrt(static_cast<double>(nodes));
    return make_random_geometric(nodes, side, 1.8, rng, 64, 0.4);
  }
  std::fprintf(stderr, "unknown topology '%s' (grid|ring|torus|geometric)\n",
               name.c_str());
  std::exit(1);
}

std::optional<Algo> parse_algo(const std::string& name) {
  if (name == "mot") return Algo::kMot;
  if (name == "mot-lb") return Algo::kMotLoadBalanced;
  if (name == "stun") return Algo::kStun;
  if (name == "dat") return Algo::kDat;
  if (name == "zdat") return Algo::kZdat;
  if (name == "zdat-sc") return Algo::kZdatShortcuts;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology = "grid";
  std::string algo_name_flag = "mot";
  std::string mobility = "walk";
  std::string save_trace;
  std::string load_trace;
  std::string dot_path;
  std::uint64_t nodes = 256;
  std::uint64_t objects = 50;
  std::uint64_t moves = 100;
  std::uint64_t queries = 100;
  std::uint64_t seed = 1;

  Flags flags("Run a custom tracking scenario end to end");
  flags.register_flag("topology", &topology,
                      "grid | ring | torus | geometric");
  flags.register_flag("nodes", &nodes, "approximate sensor count");
  flags.register_flag("algo", &algo_name_flag,
                      "mot | mot-lb | stun | dat | zdat | zdat-sc");
  flags.register_flag("mobility", &mobility, "walk | waypoint | levy");
  flags.register_flag("objects", &objects, "number of mobile objects");
  flags.register_flag("moves", &moves, "maintenance operations per object");
  flags.register_flag("queries", &queries, "query operations to issue");
  flags.register_flag("seed", &seed, "experiment seed");
  std::string log_level = "warn";
  flags.register_flag("log-level", &log_level,
                      "stderr log level: debug|info|warn|error");
  flags.register_flag("save-trace", &save_trace,
                      "write the generated trace to this file");
  flags.register_flag("load-trace", &load_trace,
                      "replay a previously saved trace instead");
  flags.register_flag("dot", &dot_path,
                      "write the overlay hierarchy as Graphviz DOT");
  if (!flags.parse(argc, argv)) return 1;
  const std::optional<mot::LogLevel> level = mot::parse_log_level(log_level);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s'\n", log_level.c_str());
    return 1;
  }
  mot::set_log_level(*level);

  const auto algo = parse_algo(algo_name_flag);
  if (!algo) {
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 algo_name_flag.c_str());
    return 1;
  }

  const Network network =
      build_network(build_topology(topology, nodes, seed), seed);
  std::printf("network: %s (sink %u, hierarchy height %d)\n",
              network.graph().summary().c_str(), network.sink,
              network.hierarchy->height());

  MovementTrace trace;
  if (!load_trace.empty()) {
    std::ifstream in(load_trace);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", load_trace.c_str());
      return 1;
    }
    std::string error;
    const auto parsed = read_trace(in, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad trace: %s\n", error.c_str());
      return 1;
    }
    trace = *parsed;
    std::printf("replaying %zu moves of %zu objects from %s\n",
                trace.moves.size(), trace.num_objects(),
                load_trace.c_str());
  } else {
    TraceParams tp;
    tp.num_objects = objects;
    tp.moves_per_object = moves;
    tp.model = mobility == "waypoint" ? MobilityModel::kRandomWaypoint
               : mobility == "levy"   ? MobilityModel::kLevyWalk
                                      : MobilityModel::kRandomWalk;
    Rng rng(SeedTree(seed).seed_for("trace"));
    trace = generate_trace(network.graph(), tp, rng);
  }
  if (!save_trace.empty()) {
    write_text_file(save_trace, trace_to_string(trace));
    std::printf("trace saved to %s\n", save_trace.c_str());
  }
  if (!dot_path.empty()) {
    write_text_file(dot_path, viz::hierarchy_to_dot(*network.hierarchy));
    std::printf("overlay DOT saved to %s\n", dot_path.c_str());
  }

  const EdgeRates rates = trace.estimate_rates();
  AlgoInstance instance = make_algo(*algo, network, rates, seed);
  publish_all(*instance.tracker, trace);
  const CostRatioAccumulator maintenance =
      run_moves(*instance.tracker, *network.oracle, trace.moves);

  Rng qrng(SeedTree(seed).seed_for("queries"));
  const auto query_ops = generate_queries(
      network.num_nodes(), trace.num_objects(), queries, qrng);
  const CostRatioAccumulator query_result =
      run_queries(*instance.tracker, *network.oracle, query_ops);

  const LoadSummary load = summarize_load(instance.tracker->load_per_node());
  std::printf("\nalgorithm: %s\n", instance.name.c_str());
  std::printf("maintenance: %zu ops, cost ratio %.3f\n",
              maintenance.count(), maintenance.aggregate_ratio());
  std::printf("queries: %zu ops, cost ratio %.3f\n", query_result.count(),
              query_result.aggregate_ratio());
  std::printf("load: mean %.2f, max %zu, imbalance %.1f, %zu nodes > 10\n",
              load.mean, load.max, load.imbalance,
              load.nodes_above_threshold);
  return 0;
}
