// Quickstart: build a sensor grid, construct the MOT overlay, track a
// handful of objects through moves and queries, and print the costs.
//
//   $ ./quickstart
#include <cstdio>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

int main() {
  using namespace mot;

  // 1. The sensor network: a 16 x 16 grid (256 sensors, unit spacing).
  const Graph network = make_grid(16, 16);
  const auto oracle = make_distance_oracle(network);
  std::printf("network: %s\n", network.summary().c_str());

  // 2. The MOT overlay hierarchy (Section 2.2 of the paper).
  DoublingHierarchy::Params hier_params;
  hier_params.seed = 7;
  const auto hierarchy =
      DoublingHierarchy::build(network, *oracle, hier_params);
  std::printf("hierarchy: %d levels, root sensor %u\n", hierarchy->height(),
              hierarchy->root());

  // 3. The tracker. Defaults: parent sets + special parents on.
  MotOptions options;
  options.seed = 7;
  MotTracker tracker(*hierarchy, options);

  // 4. Publish three objects at their initial proxies (one-time).
  tracker.publish(/*object=*/0, /*proxy=*/0);     // top-left corner
  tracker.publish(/*object=*/1, /*proxy=*/255);   // bottom-right corner
  tracker.publish(/*object=*/2, /*proxy=*/120);   // middle

  // 5. Objects move; the structure is updated by maintenance operations.
  const MoveResult hop = tracker.move(0, 1);      // one grid step
  std::printf("move object 0 by one hop: cost %.1f (optimal 1.0)\n",
              hop.cost);
  const MoveResult leap = tracker.move(1, 16);    // across the grid
  std::printf("move object 1 across the grid: cost %.1f (optimal %.1f)\n",
              leap.cost, oracle->distance(255, 16));

  // 6. Any sensor can query any object.
  const QueryResult nearby = tracker.query(/*from=*/2, /*object=*/0);
  std::printf("query object 0 from sensor 2: proxy %u, cost %.1f "
              "(optimal %.1f)\n",
              nearby.proxy, nearby.cost, oracle->distance(2, nearby.proxy));
  const QueryResult far = tracker.query(/*from=*/240, /*object=*/2);
  std::printf("query object 2 from sensor 240: proxy %u, cost %.1f "
              "(optimal %.1f)\n",
              far.proxy, far.cost, oracle->distance(240, far.proxy));

  // 7. Total communication cost charged so far.
  std::printf("total messages: %llu, total distance: %.1f\n",
              static_cast<unsigned long long>(
                  tracker.meter().total_messages()),
              tracker.meter().total_distance());
  return 0;
}
