// Vehicle pursuit (the paper's vehicular-network motivation), in the
// concurrent execution model: a vehicle keeps moving through a city grid
// while a pursuer repeatedly queries its position — queries genuinely
// overlap maintenance, exercising the Section 3 wait-for-delete protocol.
//
//   $ ./vehicle_pursuit [--blocks N] [--seed S]
#include <cstdio>

#include "core/concurrent.hpp"
#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  std::uint64_t blocks = 20;
  std::uint64_t seed = 7;
  Flags flags("Vehicle pursuit example: concurrent queries during motion");
  flags.register_flag("blocks", &blocks, "city grid side length");
  flags.register_flag("seed", &seed, "experiment seed");
  std::string log_level = "info";
  flags.register_flag("log-level", &log_level,
                      "stderr log level: debug|info|warn|error");
  if (!flags.parse(argc, argv)) return 1;
  const std::optional<mot::LogLevel> level = mot::parse_log_level(log_level);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s'\n", log_level.c_str());
    return 1;
  }
  mot::set_log_level(*level);

  const Graph city = make_grid(blocks, blocks);
  const auto oracle = make_distance_oracle(city);
  DoublingHierarchy::Params hier_params;
  hier_params.seed = seed;
  const auto hierarchy = DoublingHierarchy::build(city, *oracle, hier_params);
  std::printf("city: %s\n", city.summary().c_str());

  MotOptions options;
  options.use_parent_sets = false;
  options.seed = seed;
  const MotPathProvider provider(*hierarchy, options);

  Simulator sim;
  ConcurrentEngine engine(provider, sim, make_mot_chain_options(options));

  // The vehicle starts at the north-west corner; checkpoints are sensor
  // handoffs along its route through the city.
  const ObjectId vehicle = 0;
  engine.publish(vehicle, 0);

  Rng rng(seed);
  NodeId at = 0;
  int sightings = 0;
  Weight query_cost_total = 0.0;

  // Drive: every few handoffs, the pursuer (at the south-east precinct)
  // asks the network where the vehicle is *while it is still moving*.
  const auto precinct = static_cast<NodeId>(city.num_nodes() - 1);
  for (int leg = 0; leg < 30; ++leg) {
    for (int step = 0; step < 4; ++step) {
      const auto neighbors = city.neighbors(at);
      at = neighbors[rng.below(neighbors.size())].to;
      engine.start_move(vehicle, at, {});
    }
    engine.start_query(precinct, vehicle, [&](const QueryResult& r) {
      ++sightings;
      query_cost_total += r.cost;
    });
    // Let the city network process a slice of simulated time.
    sim.run_until(sim.now() + 10.0);
  }
  sim.run();  // drain everything
  engine.validate_quiescent();

  const ConcurrentStats& stats = engine.stats();
  std::printf("vehicle made %llu handoffs; final position sensor %u\n",
              static_cast<unsigned long long>(stats.moves_completed),
              engine.physical_position(vehicle));
  std::printf("pursuer got %d sightings, mean query cost %.1f\n", sightings,
              sightings > 0 ? query_cost_total / sightings : 0.0);
  std::printf(
      "concurrency effects: %llu queries waited at a stale sensor, %llu "
      "were forwarded by delete messages, %llu re-climbed\n",
      static_cast<unsigned long long>(stats.query_waits),
      static_cast<unsigned long long>(stats.query_forwards),
      static_cast<unsigned long long>(stats.query_restarts));
  return 0;
}
