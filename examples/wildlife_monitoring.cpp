// Wildlife monitoring (the paper's habitat-monitoring motivation):
// a sensor field deployed as a random geometric graph tracks a herd of
// animals moving by random waypoints; ranger stations at the field's
// corners periodically locate individual animals.
//
//   $ ./wildlife_monitoring [--animals N] [--steps N] [--seed S]
#include <cstdio>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "metrics/metrics.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "workload/mobility.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  std::uint64_t animals = 40;
  std::uint64_t steps = 200;
  std::uint64_t seed = 2026;
  Flags flags("Wildlife monitoring example: MOT on a geometric sensor field");
  flags.register_flag("animals", &animals, "number of tracked animals");
  flags.register_flag("steps", &steps, "movement steps per animal");
  flags.register_flag("seed", &seed, "experiment seed");
  std::string log_level = "info";
  flags.register_flag("log-level", &log_level,
                      "stderr log level: debug|info|warn|error");
  if (!flags.parse(argc, argv)) return 1;
  const std::optional<mot::LogLevel> level = mot::parse_log_level(log_level);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s'\n", log_level.c_str());
    return 1;
  }
  mot::set_log_level(*level);

  // 1. Deploy 300 sensors over a 20 x 20 km reserve, at least 0.6 km
  //    apart (deployments avoid redundant coverage); sensors within
  //    2.2 km hear each other.
  const SeedTree seeds(seed);
  Rng deploy_rng = seeds.stream("deploy");
  const Graph field =
      make_random_geometric(300, 20.0, 2.2, deploy_rng, 64, 0.6);
  const auto oracle = make_distance_oracle(field);
  std::printf("sensor field: %s\n", field.summary().c_str());

  // 2. Build the MOT overlay with load balancing: detection lists are
  //    hashed across cluster members so no sensor's memory fills up.
  DoublingHierarchy::Params hier_params;
  hier_params.seed = seeds.seed_for("hierarchy");
  const auto hierarchy =
      DoublingHierarchy::build(field, *oracle, hier_params);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = seeds.seed_for("tracker");
  MotTracker tracker(*hierarchy, options);
  // A second tracker with Section 5 load balancing, to show the
  // storage-vs-cost trade of Corollary 5.2 side by side.
  MotOptions lb_options = options;
  lb_options.load_balance = true;
  MotTracker balanced(*hierarchy, lb_options);

  // 3. The herd roams by random waypoints (walk to a destination, pick a
  //    new one). Each detection handoff is one maintenance operation.
  TraceParams trace_params;
  trace_params.num_objects = animals;
  trace_params.moves_per_object = steps;
  trace_params.model = MobilityModel::kRandomWaypoint;
  Rng herd_rng = seeds.stream("herd");
  const MovementTrace herd = generate_trace(field, trace_params, herd_rng);

  for (ObjectId animal = 0; animal < animals; ++animal) {
    tracker.publish(animal, herd.initial_proxy[animal]);
    balanced.publish(animal, herd.initial_proxy[animal]);
  }
  CostRatioAccumulator maintenance;
  CostRatioAccumulator lb_maintenance;
  for (const MoveOp& op : herd.moves) {
    const Weight optimal = oracle->distance(op.from, op.to);
    maintenance.add(tracker.move(op.object, op.to).cost, optimal);
    lb_maintenance.add(balanced.move(op.object, op.to).cost, optimal);
  }
  std::printf("maintenance: %zu handoffs, cost ratio %.2f vs optimal "
              "(%.2f with load balancing)\n",
              herd.moves.size(), maintenance.aggregate_ratio(),
              lb_maintenance.aggregate_ratio());

  // 4. Rangers at the corner stations locate animals.
  Rng ranger_rng = seeds.stream("rangers");
  const NodeId stations[4] = {
      0, static_cast<NodeId>(field.num_nodes() / 3),
      static_cast<NodeId>(2 * field.num_nodes() / 3),
      static_cast<NodeId>(field.num_nodes() - 1)};
  CostRatioAccumulator queries;
  for (int i = 0; i < 100; ++i) {
    const NodeId station = stations[ranger_rng.below(4)];
    const auto animal = static_cast<ObjectId>(ranger_rng.below(animals));
    const NodeId proxy = tracker.proxy_of(animal);
    const QueryResult result = tracker.query(station, animal);
    queries.add(result.cost, oracle->distance(station, proxy));
  }
  std::printf("queries: 100 lookups, cost ratio %.2f vs optimal\n",
              queries.aggregate_ratio());

  // 5. Memory pressure per sensor — the reason load balancing exists:
  //    hashing detection lists across clusters flattens the hot sensors
  //    near the root at a constant-factor cost increase (Cor. 5.2).
  const LoadSummary plain_load = summarize_load(tracker.load_per_node());
  const LoadSummary lb_load = summarize_load(balanced.load_per_node());
  std::printf(
      "per-sensor storage without balancing: mean %.1f, max %zu, %zu "
      "sensors above 10 entries\n",
      plain_load.mean, plain_load.max, plain_load.nodes_above_threshold);
  std::printf(
      "per-sensor storage with balancing:    mean %.1f, max %zu, %zu "
      "sensors above 10 entries\n",
      lb_load.mean, lb_load.max, lb_load.nodes_above_threshold);
  return 0;
}
