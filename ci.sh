#!/usr/bin/env bash
# Local CI: the tier-1 verify (build + full test suite), a parallel-engine
# determinism smoke, plus separate AddressSanitizer/UBSan and
# ThreadSanitizer builds of the test binary. Run from the repo root.
#
#   ./ci.sh           # tier-1 + smokes + asan + tsan
#   ./ci.sh --fast    # tier-1 + smokes only
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== telemetry smoke: --emit-json / --trace-jsonl =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
./build/bench/tbl_publish_cost --seeds 1 \
  --emit-json "${SMOKE_DIR}/BENCH_tbl_publish_cost.json" > /dev/null
./build/bench/tbl_routing --log-level error \
  --emit-json "${SMOKE_DIR}/BENCH_tbl_routing.json" > /dev/null
./build/bench/tbl_faults --seeds 1 \
  --emit-json "${SMOKE_DIR}/BENCH_tbl_faults.json" \
  --trace-jsonl "${SMOKE_DIR}/trace.jsonl" > /dev/null 2> /dev/null
python3 - "${SMOKE_DIR}" <<'PYEOF'
import json, sys, glob, os
smoke_dir = sys.argv[1]
records = sorted(glob.glob(os.path.join(smoke_dir, "BENCH_*.json")))
assert len(records) == 3, f"expected 3 run records, got {records}"
for path in records:
    with open(path) as f:
        doc = json.load(f)
    for key in ("schema", "bench", "git_rev", "snapshot_format", "config",
                "tables", "phases"):
        assert key in doc, f"{path}: missing key {key!r}"
    assert doc["tables"], f"{path}: no tables recorded"
    if doc["bench"] in ("tbl_publish_cost", "tbl_faults"):
        assert any(p["name"] == "hierarchy_build" for p in doc["phases"]), \
            f"{path}: no hierarchy_build phase timing"
trace_path = os.path.join(smoke_dir, "trace.jsonl")
events = [json.loads(line) for line in open(trace_path)]
assert events, "trace.jsonl is empty"
assert all("ev" in e and "i" in e for e in events)
kinds = {e["ev"] for e in events}
assert "climb_hop" in kinds or "msg_send" in kinds, kinds
print(f"telemetry smoke ok: {len(records)} run records, "
      f"{len(events)} trace events, kinds={len(kinds)}")
PYEOF

echo "== parallel smoke: fig04 --threads 1 vs --threads 4 =="
PAR_ARGS=(--sizes 16,64 --seeds 2 --moves 20 --log-level error)
./build/bench/fig04_maint_100 --threads 1 "${PAR_ARGS[@]}" \
  --csv "${SMOKE_DIR}/fig04_t1.csv" > /dev/null
./build/bench/fig04_maint_100 --threads 4 "${PAR_ARGS[@]}" \
  --csv "${SMOKE_DIR}/fig04_t4.csv" > /dev/null
diff "${SMOKE_DIR}/fig04_t1.csv" "${SMOKE_DIR}/fig04_t4.csv" \
  || { echo "fig04 output differs between 1 and 4 threads"; exit 1; }
echo "parallel smoke ok: fig04 CSV byte-identical at 1 and 4 threads"

echo "== throughput: batched >= unbatched + worker-count byte-identity =="
# Short sustained run; the bench exits nonzero if the batched engine is
# slower than the unbatched baseline, if batching changes any locate
# answer (digest parity), or if the per-shard figure table differs
# across 1/2/4 workers. The committed BENCH_throughput.json tracks the
# full-size figure; this stage only guards the direction of the win.
THROUGHPUT_LOG="${SMOKE_DIR}/throughput.log"
if ! ./build/bench/micro_throughput --objects 32 --moves 40 --seeds 5 \
    --assert-speedup 1.0 --log-level error \
    > "${THROUGHPUT_LOG}" 2>&1; then
  echo "throughput stage failed:"
  cat "${THROUGHPUT_LOG}"
  exit 1
fi
echo "throughput ok: batched >= unbatched, shard tables worker-count invariant"

echo "== cluster: 4-process loopback parity + mixed-version interop =="
# cluster_runner forks four shard processes, serves the seeded move/query
# workload over loopback TCP, and exits nonzero unless every answer,
# per-node load, and meter matches the single-process simulator.
./build/bench/cluster_runner --shards 4 --log-level error \
  > "${SMOKE_DIR}/cluster.log" 2>&1 \
  || { cat "${SMOKE_DIR}/cluster.log"; exit 1; }
# Interop smoke: odd shards encode at kWireVersionFuture; current peers
# must skip the unknown fields and parity must still hold.
./build/bench/cluster_runner --shards 4 --future-shard --log-level error \
  > "${SMOKE_DIR}/cluster_mixed.log" 2>&1 \
  || { cat "${SMOKE_DIR}/cluster_mixed.log"; exit 1; }
echo "cluster ok: 4-process parity exact, mixed-version interop exact"

echo "== observability: traced cluster -> trace_analyze + flight smoke =="
# A traced 4-shard run leaves per-shard span streams plus a merged
# telemetry registry; trace_analyze exits nonzero if any span tree is
# disconnected, a wire frame vanished between shards, or the span-summed
# cost disagrees with the meter recorded in the status JSON.
OBS_DIR="${SMOKE_DIR}/obs"
mkdir -p "${OBS_DIR}"
./build/bench/cluster_runner --shards 4 --steps 25 --log-level error \
  --trace-dir "${OBS_DIR}" --status-json "${OBS_DIR}/status.json" \
  > "${SMOKE_DIR}/cluster_traced.log" 2>&1 \
  || { cat "${SMOKE_DIR}/cluster_traced.log"; exit 1; }
./build/bench/trace_analyze --status-json "${OBS_DIR}/status.json" \
  "${OBS_DIR}"/shard-*.jsonl \
  || { echo "trace_analyze rejected the traced cluster run"; exit 1; }
# Flight-recorder smoke: SIGTERM one shard mid-run; the runner verifies
# the graceful degradation and the handler's dump, python verifies the
# dump file decodes as trace JSONL with the flight_dump header first.
FLIGHT_DIR="${SMOKE_DIR}/flight"
mkdir -p "${FLIGHT_DIR}"
./build/bench/cluster_runner --shards 3 --kill-shard 1 --log-level error \
  --trace-dir "${FLIGHT_DIR}" > "${SMOKE_DIR}/kill_shard.log" 2>&1 \
  || { cat "${SMOKE_DIR}/kill_shard.log"; exit 1; }
python3 - "${FLIGHT_DIR}/flight-1.jsonl" <<'PYEOF'
import json, sys
events = [json.loads(line) for line in open(sys.argv[1])]
assert events, "flight dump is empty"
head = events[0]
assert head["ev"] == "flight_dump" and head["label"] == "sigterm", head
assert head["aux"] == len(events) - 1, (head["aux"], len(events))
print(f"flight dump ok: {len(events) - 1} events preserved at sigterm")
PYEOF
echo "observability ok: span trees connected, cost reconciled, flight dump decodable"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer stages (--fast) =="
  exit 0
fi

echo "== sanitizers: asan+ubsan mot_tests =="
cmake -B build-asan -S . -DMOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug > /dev/null
cmake --build build-asan -j "${JOBS}" --target mot_tests
# halt_on_error so UBSan findings fail the run rather than scroll past.
# The full binary includes the wire hardening suites (truncation,
# corruption, garbage decoding), so every typed-error path runs under
# asan+ubsan here.
UBSAN_OPTIONS=halt_on_error=1 ./build-asan/tests/mot_tests --gtest_brief=1

echo "== chaos: bounded schedule exploration under asan =="
cmake --build build-asan -j "${JOBS}" --target chaos_runner
CHAOS_LOG="${SMOKE_DIR}/chaos.log"
# Fixed seeds, all acceptance topologies, plus the churn driver. On a
# violation the log already holds the shrunk repro and the exact replay
# command — surface it whole.
if ! ./build-asan/bench/chaos_runner --seeds 0..19 --topology all \
    --churn > "${CHAOS_LOG}" 2>&1; then
  echo "chaos explorer found a violation; shrunk repro + replay command:"
  cat "${CHAOS_LOG}"
  exit 1
fi
# Self-check: the explorer must still catch a deliberately broken
# recovery path and shrink it to a small deterministic schedule.
if ! ./build-asan/bench/chaos_runner --seeds 0..9 --topology grid \
    --events 12 --inject-bug > "${CHAOS_LOG}" 2>&1; then
  echo "chaos explorer failed to catch the injected recovery defect:"
  cat "${CHAOS_LOG}"
  exit 1
fi
echo "chaos ok: 60 green schedules + churn; injected defect caught + shrunk"

echo "== durability: crash-restart-replay audit under asan =="
DURABLE_LOG="${SMOKE_DIR}/durable.log"
DURABLE_DIR="${SMOKE_DIR}/durable_store"
# Every seed runs twice on the identical schedule: once durable (kRestart
# tears the runtime down and restores snapshot + journal from disk) and
# once as the reference. The runner exits nonzero on any invariant
# violation, any restart that failed to restore, or any answer-digest
# divergence between the durable run and its uninterrupted reference.
if ! ./build-asan/bench/chaos_runner --durability --seeds 0..9 \
    --topology all --snapshot-dir "${DURABLE_DIR}" \
    > "${DURABLE_LOG}" 2>&1; then
  echo "durability audit failed:"
  cat "${DURABLE_LOG}"
  exit 1
fi
# Self-check: a bit flipped in a journal payload must be caught by the
# per-record CRC and force the typed fallback-to-rebuild path — if no
# restore falls back, the corruption detection is broken.
if ! ./build-asan/bench/chaos_runner --durability --inject-corruption \
    --seeds 0..4 --topology grid --snapshot-dir "${DURABLE_DIR}" \
    > "${DURABLE_LOG}" 2>&1; then
  echo "durability corruption self-check failed:"
  cat "${DURABLE_LOG}"
  exit 1
fi
echo "durability ok: restores byte-identical to reference; corruption falls back typed"

echo "== overload: tbl_overload sweep under asan =="
cmake --build build-asan -j "${JOBS}" --target tbl_overload
OVERLOAD_LOG="${SMOKE_DIR}/overload.log"
# The sweep drives the 256-node grid at 1x..8x capacity; the bench exits
# non-zero if any conservation ledger fails to reconcile, any query fails
# to terminate, or goodput at 4x collapses below 60% of the 1x baseline.
if ! ./build-asan/bench/tbl_overload --log-level error \
    > "${OVERLOAD_LOG}" 2>&1; then
  echo "overload sweep failed:"
  cat "${OVERLOAD_LOG}"
  exit 1
fi
echo "overload ok: 4x offered load shed/degraded with ledgers balanced"

echo "== adaptive: controller suites + correlated chaos under asan =="
# The tbl_overload run above already enforces the moving-saturation
# gates (adaptive goodput >= the static operating point at 4x and 8x,
# and the hotspot-migration divert drop). This stage adds the controller
# unit/integration suites — including the oscillation self-check, where
# an injected alternating gradient must be caught by the hysteresis
# guard (tuner_freezes > 0) and snapped back to the static base — plus
# the correlated burst+crash+partition schedules with the overload-aware
# oracle armed.
UBSAN_OPTIONS=halt_on_error=1 ./build-asan/tests/mot_tests --gtest_brief=1 \
  --gtest_filter='Adaptive*'
ADAPT_LOG="${SMOKE_DIR}/adaptive.log"
if ! ./build-asan/bench/chaos_runner --adaptive --correlated-events 2 \
    --seeds 0..9 --topology all > "${ADAPT_LOG}" 2>&1; then
  echo "adaptive chaos run found a violation:"
  cat "${ADAPT_LOG}"
  exit 1
fi
echo "adaptive ok: controller suites green; correlated chaos oracles green"

echo "== sanitizers: tsan pool/oracle/sweep tests =="
cmake -B build-tsan -S . -DMOT_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug \
  > /dev/null
cmake --build build-tsan -j "${JOBS}" --target mot_tests
# The concurrency-bearing suites (plus the overload suites, whose bench
# runs on the worker pool, and the batching/flat-map suites, whose
# worker-count test fans batched shards across the pool); the rest of
# mot_tests is single-threaded and already covered by the asan stage.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/mot_tests --gtest_brief=1 \
  --gtest_filter='ThreadPool.*:ShardedOracle.*:ParallelSweep.*:Overload*:Batch*:FlatMap*:Durable*:Journal*:Snapshot*:Adaptive*'

echo "== ci green =="
