#!/usr/bin/env bash
# Local CI: the tier-1 verify (build + full test suite) plus a separate
# AddressSanitizer/UBSan build of the test binary. Run from the repo root.
#
#   ./ci.sh           # tier-1 + sanitized mot_tests
#   ./ci.sh --fast    # tier-1 only
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer stage (--fast) =="
  exit 0
fi

echo "== sanitizers: asan+ubsan mot_tests =="
cmake -B build-asan -S . -DMOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug > /dev/null
cmake --build build-asan -j "${JOBS}" --target mot_tests
# halt_on_error so UBSan findings fail the run rather than scroll past.
UBSAN_OPTIONS=halt_on_error=1 ./build-asan/tests/mot_tests --gtest_brief=1

echo "== ci green =="
