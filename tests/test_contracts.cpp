// Death tests for the contract layer (check.hpp) and the most important
// precondition guards across the library: misuse must fail loudly at the
// call site, not corrupt tracking state.
#include <gtest/gtest.h>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace mot {
namespace {

struct ContractsDeathTest : public ::testing::Test {
  ContractsDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(ContractsDeathTest, ExpectsAborts) {
  EXPECT_DEATH(MOT_EXPECTS(1 == 2), "Precondition");
}

TEST_F(ContractsDeathTest, EnsuresAborts) {
  EXPECT_DEATH(MOT_ENSURES(false), "Postcondition");
}

TEST_F(ContractsDeathTest, CheckAborts) {
  EXPECT_DEATH(MOT_CHECK(false), "Invariant");
}

TEST_F(ContractsDeathTest, PassingChecksAreSilent) {
  MOT_EXPECTS(true);
  MOT_ENSURES(2 > 1);
  MOT_CHECK(1 + 1 == 2);
}

struct TrackerGuards : public ::testing::Test {
  TrackerGuards() : graph(make_grid(4, 4)) {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    oracle = make_distance_oracle(graph);
    DoublingHierarchy::Params params;
    params.seed = 1;
    hierarchy = DoublingHierarchy::build(graph, *oracle, params);
  }
  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

TEST_F(TrackerGuards, DoublePublishAborts) {
  MotTracker tracker(*hierarchy, {});
  tracker.publish(0, 3);
  EXPECT_DEATH(tracker.publish(0, 4), "Precondition");
}

TEST_F(TrackerGuards, MoveOfUnpublishedObjectAborts) {
  MotTracker tracker(*hierarchy, {});
  EXPECT_DEATH(tracker.move(7, 3), "Precondition");
}

TEST_F(TrackerGuards, QueryOfUnpublishedObjectAborts) {
  MotTracker tracker(*hierarchy, {});
  EXPECT_DEATH(tracker.query(0, 7), "Precondition");
}

TEST_F(TrackerGuards, OutOfRangeProxyAborts) {
  MotTracker tracker(*hierarchy, {});
  EXPECT_DEATH(tracker.publish(0, 999), "Precondition");
}

TEST_F(TrackerGuards, ProxyOfUnknownObjectAborts) {
  MotTracker tracker(*hierarchy, {});
  EXPECT_DEATH(tracker.proxy_of(3), "Precondition");
}

TEST(LogLevels, FilteringAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Filtered-out levels must not crash (output goes to stderr if at all).
  MOT_LOG_DEBUG("invisible %d", 1);
  MOT_LOG_INFO("invisible %s", "too");
  MOT_LOG_ERROR("visible %d", 2);
  set_log_level(before);
}

}  // namespace
}  // namespace mot
