#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace mot {
namespace {

Graph triangle() {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 2, 2.0);
  builder.add_edge(0, 2, 3.0);
  return std::move(builder).build();
}

TEST(GraphBuilder, BuildsCsr) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(GraphBuilder, RejectsDuplicatesAndSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.add_edge(0, 1));
  EXPECT_FALSE(builder.add_edge(0, 1));
  EXPECT_FALSE(builder.add_edge(1, 0));  // same undirected edge
  EXPECT_FALSE(builder.add_edge(2, 2));  // self loop
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, NeighborsSortedById) {
  GraphBuilder builder(4);
  builder.add_edge(0, 3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  const Graph g = std::move(builder).build();
  const auto neighbors = g.neighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].to, 1u);
  EXPECT_EQ(neighbors[1].to, 2u);
  EXPECT_EQ(neighbors[2].to, 3u);
}

TEST(Graph, EdgeWeightLookup) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 1), 2.0);
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  const Graph h = std::move(builder).build();
  EXPECT_EQ(h.edge_weight(0, 2), kInfiniteDistance);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(triangle().is_connected());
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  EXPECT_FALSE(std::move(builder).build().is_connected());
}

TEST(Graph, SingleNodeIsConnected) {
  GraphBuilder builder(1);
  EXPECT_TRUE(std::move(builder).build().is_connected());
}

TEST(Graph, WeightExtremes) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.min_edge_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_edge_weight(), 3.0);
}

TEST(GraphBuilder, NormalizeScalesMinWeightToOne) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 0.5);
  builder.add_edge(1, 2, 2.0);
  builder.normalize();
  const Graph g = std::move(builder).build();
  EXPECT_DOUBLE_EQ(g.min_edge_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_edge_weight(), 4.0);  // proportions preserved
}

TEST(GraphBuilder, NormalizeNoOpWhenAlreadyOne) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 1.0);
  builder.normalize();
  const Graph g = std::move(builder).build();
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(Graph, PositionsRoundTrip) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.set_position(0, {1.5, 2.5});
  builder.set_position(1, {3.0, 4.0});
  const Graph g = std::move(builder).build();
  ASSERT_TRUE(g.has_positions());
  EXPECT_DOUBLE_EQ(g.position(0).x, 1.5);
  EXPECT_DOUBLE_EQ(g.position(1).y, 4.0);
}

TEST(Graph, NoPositionsByDefault) {
  const Graph g = triangle();
  EXPECT_FALSE(g.has_positions());
}

TEST(Graph, SummaryMentionsCounts) {
  const std::string summary = triangle().summary();
  EXPECT_NE(summary.find("n=3"), std::string::npos);
  EXPECT_NE(summary.find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace mot
