#include "hier/sparse_cover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"

namespace mot {
namespace {

class SparseCoverParamTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SparseCoverParamTest, CoverageOnGrid) {
  const auto [side, radius] = GetParam();
  const Graph graph = make_grid(side, side);
  const SparseCover cover = build_sparse_cover(graph, radius);
  EXPECT_TRUE(covers_all_balls(graph, cover));
}

INSTANTIATE_TEST_SUITE_P(
    GridRadii, SparseCoverParamTest,
    ::testing::Combine(::testing::Values(4, 6, 8),
                       ::testing::Values(1.0, 2.0, 4.0, 8.0)));

TEST(SparseCover, ClusterRadiusBounded) {
  const Graph graph = make_grid(8, 8);
  for (const Weight radius : {1.0, 2.0, 4.0}) {
    const SparseCover cover = build_sparse_cover(graph, radius);
    const double bound =
        (std::ceil(std::log2(static_cast<double>(graph.num_nodes()))) +
         1.0) *
        radius;
    for (const Cluster& cluster : cover.clusters) {
      EXPECT_LE(cluster.radius, bound);
    }
  }
}

TEST(SparseCover, MembersSortedAndContainLeader) {
  const Graph graph = make_grid(6, 6);
  const SparseCover cover = build_sparse_cover(graph, 2.0);
  for (const Cluster& cluster : cover.clusters) {
    EXPECT_TRUE(std::is_sorted(cluster.members.begin(),
                               cluster.members.end()));
    EXPECT_TRUE(std::binary_search(cluster.members.begin(),
                                   cluster.members.end(), cluster.leader));
  }
}

TEST(SparseCover, EveryNodeInSomeCluster) {
  const Graph graph = make_ring(30);
  const SparseCover cover = build_sparse_cover(graph, 2.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_FALSE(cover.clusters_of[v].empty());
  }
}

TEST(SparseCover, OverlapModestOnGrids) {
  const Graph graph = make_grid(10, 10);
  const SparseCover cover = build_sparse_cover(graph, 2.0);
  // (O(log n), O(log n)) scheme: log2(100) ~ 6.6; allow constant slack.
  EXPECT_LE(cover.average_overlap(), 14.0);
  EXPECT_GE(cover.average_overlap(), 1.0);
  EXPECT_LE(cover.max_overlap(), 40u);
}

TEST(SparseCover, HugeRadiusGivesOneCluster) {
  const Graph graph = make_grid(5, 5);
  const SparseCover cover = build_sparse_cover(graph, 100.0);
  ASSERT_EQ(cover.clusters.size(), 1u);
  EXPECT_EQ(cover.clusters[0].members.size(), graph.num_nodes());
}

TEST(SparseCover, ZeroRadiusIsSingletons) {
  const Graph graph = make_path(6);
  const SparseCover cover = build_sparse_cover(graph, 0.0);
  EXPECT_EQ(cover.clusters.size(), 6u);
  for (const Cluster& cluster : cover.clusters) {
    EXPECT_EQ(cluster.members.size(), 1u);
  }
}

TEST(SparseCover, WorksOnNonDoublingTopologies) {
  const Graph star = make_star(64);
  const SparseCover cover = build_sparse_cover(star, 2.0);
  EXPECT_TRUE(covers_all_balls(star, cover));

  const Graph lollipop = make_lollipop(10, 20);
  const SparseCover cover2 = build_sparse_cover(lollipop, 4.0);
  EXPECT_TRUE(covers_all_balls(lollipop, cover2));
}

TEST(SparseCover, DeterministicConstruction) {
  const Graph graph = make_grid(6, 6);
  const SparseCover a = build_sparse_cover(graph, 2.0);
  const SparseCover b = build_sparse_cover(graph, 2.0);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].leader, b.clusters[i].leader);
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
  }
}

}  // namespace
}  // namespace mot
