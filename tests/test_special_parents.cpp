// The special-parent mechanism (Definition 3 / Fig. 2 of the paper),
// reproduced deterministically: after fragmentation, a query whose upward
// sequence misses the live chain at low levels still finds the object
// through the SDL record its insert registered *above* the meet on the
// new proxy's own path.
#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot {
namespace {

// Node roles in the scenario (ids into a path graph used for distances):
constexpr NodeId kRoot = 0;
constexpr NodeId kU1 = 1;   // level-1 meet node shared by A's and B's paths
constexpr NodeId kU2 = 2;   // level-2 node of B's (old) path
constexpr NodeId kM2 = 3;   // level-2 node of A's path — SDL lands here
constexpr NodeId kA = 4;    // new proxy
constexpr NodeId kB = 5;    // old proxy
constexpr NodeId kQ = 6;    // querier
constexpr NodeId kQ1 = 7;   // level-1 node of Q's path (off everyone else's)

// Hand-authored upward sequences realizing Fig. 2's geometry.
class ScriptedProvider final : public PathProvider {
 public:
  ScriptedProvider() : graph_(make_path(8)), oracle_(graph_) {
    auto seq = [](std::initializer_list<std::pair<int, NodeId>> stops) {
      std::vector<PathStop> sequence;
      std::uint32_t rank = 0;
      for (const auto& [level, node] : stops) {
        sequence.push_back({{level, node}, rank++});
      }
      return sequence;
    };
    sequences_[kA] = seq({{0, kA}, {1, kU1}, {2, kM2}, {3, kRoot}});
    sequences_[kB] = seq({{0, kB}, {1, kU1}, {2, kU2}, {3, kRoot}});
    sequences_[kQ] = seq({{0, kQ}, {1, kQ1}, {2, kM2}, {3, kRoot}});
    for (NodeId v = 0; v < 8; ++v) {
      if (sequences_.count(v) == 0) {
        sequences_[v] = seq({{0, v}, {3, kRoot}});
      }
    }
  }

  std::span<const PathStop> upward_sequence(NodeId u) const override {
    return sequences_.at(u);
  }
  // Definition 3 with offset 2 sequence positions (~levels here).
  std::optional<OverlayNode> special_parent(
      NodeId u, std::size_t index) const override {
    const auto& sequence = sequences_.at(u);
    if (index + 2 >= sequence.size()) return std::nullopt;
    return sequence[index + 2].node;
  }
  DelegateAccess delegate(OverlayNode owner, ObjectId) const override {
    return {owner.node, 0.0};
  }
  OverlayNode root_stop() const override { return {3, kRoot}; }
  const DistanceOracle& oracle() const override { return oracle_; }
  std::size_t num_nodes() const override { return 8; }

 private:
  Graph graph_;
  CachedDistanceOracle oracle_;
  std::map<NodeId, std::vector<PathStop>> sequences_;
};

ChainOptions with_sdl(bool on) {
  ChainOptions options;
  options.use_special_lists = on;
  return options;
}

TEST(SpecialParents, QueryRescuedBySdlBelowTheChainMeet) {
  ScriptedProvider provider;
  ChainTracker tracker("mot", provider, with_sdl(true));

  // Publish at B, then the object moves to A. A's insert meets the chain
  // at u1 (level 1), so nothing above u1 on A's own path carries a DL —
  // but A's bottom entry registered its SDL at m2 (two positions up).
  tracker.publish(0, kB);
  tracker.move(0, kA);
  tracker.validate(0);
  ASSERT_FALSE(tracker.node_has_dl({2, kM2}, 0));  // m2 is off the chain

  // Q's path misses the live chain until the root — except that it passes
  // m2 at level 2, where the SDL points straight at the proxy.
  const QueryResult result = tracker.query(kQ, 0);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, kA);
  EXPECT_EQ(result.found_level, 2);  // found at m2, below the root
  EXPECT_EQ(tracker.query_stats().sdl_hits, 1u);
  EXPECT_EQ(tracker.query_stats().dl_hits, 0u);
}

TEST(SpecialParents, WithoutSdlTheSameQueryClimbsToTheRoot) {
  ScriptedProvider provider;
  ChainTracker tracker("mot-no-sdl", provider, with_sdl(false));
  tracker.publish(0, kB);
  tracker.move(0, kA);

  const QueryResult result = tracker.query(kQ, 0);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, kA);
  EXPECT_EQ(result.found_level, 3);  // only the root still knows
}

TEST(SpecialParents, SdlQueryIsCheaperThanRootDetour) {
  ScriptedProvider provider;
  ChainTracker with("with", provider, with_sdl(true));
  ChainTracker without("without", provider, with_sdl(false));
  for (ChainTracker* tracker : {&with, &without}) {
    tracker->publish(0, kB);
    tracker->move(0, kA);
  }
  const QueryResult rescued = with.query(kQ, 0);
  const QueryResult detoured = without.query(kQ, 0);
  EXPECT_LT(rescued.cost, detoured.cost);
}

TEST(SpecialParents, SdlRecordRemovedWhenFragmentDies) {
  ScriptedProvider provider;
  ChainTracker tracker("mot", provider, with_sdl(true));
  tracker.publish(0, kB);
  tracker.move(0, kA);
  ASSERT_GT(tracker.sdl_entries(0), 0u);
  // Move back to B: A's fragment (and its SDL registrations) must be
  // cleaned up, or queries would chase a dead pointer.
  tracker.move(0, kB);
  tracker.validate(0);
  const QueryResult result = tracker.query(kQ, 0);
  EXPECT_EQ(result.proxy, kB);
}

TEST(SpecialParents, DlWinsOverSdlAtTheSameStop) {
  ScriptedProvider provider;
  ChainTracker tracker("mot", provider, with_sdl(true));
  tracker.publish(0, kA);  // chain passes m2 directly (publish, no meet)
  const QueryResult result = tracker.query(kQ, 0);
  EXPECT_EQ(result.proxy, kA);
  EXPECT_GE(tracker.query_stats().dl_hits, 1u);
}

}  // namespace
}  // namespace mot
