#include "workload/mobility.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace mot {
namespace {

TEST(GenerateTrace, CountsAndContinuity) {
  const Graph g = make_grid(6, 6);
  TraceParams params;
  params.num_objects = 5;
  params.moves_per_object = 40;
  Rng rng(3);
  const MovementTrace trace = generate_trace(g, params, rng);
  EXPECT_EQ(trace.num_objects(), 5u);
  EXPECT_EQ(trace.moves.size(), 200u);

  // Per-object continuity: each move starts where the previous ended.
  std::vector<NodeId> at = trace.initial_proxy;
  std::vector<std::size_t> count(5, 0);
  for (const MoveOp& op : trace.moves) {
    EXPECT_EQ(op.from, at[op.object]);
    at[op.object] = op.to;
    ++count[op.object];
  }
  for (const auto c : count) EXPECT_EQ(c, 40u);
}

TEST(GenerateTrace, RandomWalkMovesToNeighbors) {
  const Graph g = make_grid(5, 5);
  TraceParams params;
  params.num_objects = 3;
  params.moves_per_object = 50;
  params.model = MobilityModel::kRandomWalk;
  Rng rng(7);
  const MovementTrace trace = generate_trace(g, params, rng);
  for (const MoveOp& op : trace.moves) {
    EXPECT_DOUBLE_EQ(g.edge_weight(op.from, op.to), 1.0);
  }
}

TEST(GenerateTrace, WaypointFollowsShortestPathSteps) {
  const Graph g = make_grid(6, 6);
  TraceParams params;
  params.num_objects = 2;
  params.moves_per_object = 60;
  params.model = MobilityModel::kRandomWaypoint;
  Rng rng(11);
  const MovementTrace trace = generate_trace(g, params, rng);
  for (const MoveOp& op : trace.moves) {
    // Steps are always single edges.
    EXPECT_NE(g.edge_weight(op.from, op.to), kInfiniteDistance);
  }
}

TEST(GenerateTrace, LevyWalkAlsoSteppedOnEdges) {
  const Graph g = make_grid(6, 6);
  TraceParams params;
  params.num_objects = 2;
  params.moves_per_object = 60;
  params.model = MobilityModel::kLevyWalk;
  Rng rng(13);
  const MovementTrace trace = generate_trace(g, params, rng);
  for (const MoveOp& op : trace.moves) {
    EXPECT_NE(g.edge_weight(op.from, op.to), kInfiniteDistance);
  }
}

TEST(GenerateTrace, DeterministicForSeed) {
  const Graph g = make_grid(5, 5);
  TraceParams params;
  params.num_objects = 4;
  params.moves_per_object = 20;
  Rng a(17);
  Rng b(17);
  const MovementTrace ta = generate_trace(g, params, a);
  const MovementTrace tb = generate_trace(g, params, b);
  EXPECT_EQ(ta.initial_proxy, tb.initial_proxy);
  ASSERT_EQ(ta.moves.size(), tb.moves.size());
  for (std::size_t i = 0; i < ta.moves.size(); ++i) {
    EXPECT_EQ(ta.moves[i].object, tb.moves[i].object);
    EXPECT_EQ(ta.moves[i].from, tb.moves[i].from);
    EXPECT_EQ(ta.moves[i].to, tb.moves[i].to);
  }
}

TEST(GenerateTrace, ZeroMovesStillPlacesObjects) {
  const Graph g = make_grid(4, 4);
  TraceParams params;
  params.num_objects = 6;
  params.moves_per_object = 0;
  Rng rng(19);
  const MovementTrace trace = generate_trace(g, params, rng);
  EXPECT_EQ(trace.num_objects(), 6u);
  EXPECT_TRUE(trace.moves.empty());
}

TEST(GenerateTrace, RandomOrderInterleavesObjects) {
  const Graph g = make_grid(6, 6);
  TraceParams params;
  params.num_objects = 4;
  params.moves_per_object = 50;
  Rng rng(23);
  const MovementTrace trace = generate_trace(g, params, rng);
  // The stream should not be sorted by object (that would mean the
  // "random order" shuffling failed).
  bool interleaved = false;
  for (std::size_t i = 1; i < trace.moves.size(); ++i) {
    if (trace.moves[i].object < trace.moves[i - 1].object) {
      interleaved = true;
      break;
    }
  }
  EXPECT_TRUE(interleaved);
}

TEST(MovementTrace, OptimalCostSumsDistances) {
  const Graph g = make_path(10);
  const CachedDistanceOracle oracle(g);
  MovementTrace trace;
  trace.initial_proxy = {0};
  trace.moves = {{0, 0, 3}, {0, 3, 1}, {0, 1, 9}};
  EXPECT_DOUBLE_EQ(trace.optimal_cost(oracle), 3.0 + 2.0 + 8.0);
}

TEST(MovementTrace, EstimateRatesCountsTransitions) {
  MovementTrace trace;
  trace.initial_proxy = {0, 5};
  trace.moves = {{0, 0, 1}, {0, 1, 0}, {1, 5, 6}, {0, 0, 1}};
  const EdgeRates rates = trace.estimate_rates();
  EXPECT_DOUBLE_EQ(rates.rate(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(rates.rate(5, 6), 1.0);
  EXPECT_DOUBLE_EQ(rates.rate(2, 3), 0.0);
}

TEST(GenerateQueries, BoundsAndDeterminism) {
  Rng a(29);
  Rng b(29);
  const auto qa = generate_queries(100, 10, 50, a);
  const auto qb = generate_queries(100, 10, 50, b);
  ASSERT_EQ(qa.size(), 50u);
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_LT(qa[i].from, 100u);
    EXPECT_LT(qa[i].object, 10u);
    EXPECT_EQ(qa[i].from, qb[i].from);
    EXPECT_EQ(qa[i].object, qb[i].object);
  }
}

}  // namespace
}  // namespace mot
