// The observability layer's contract: tracing is zero-cost and lossless
// when disabled (bit-identical CostMeter totals), deterministic when
// enabled (same seed => identical event stream), and reconcilable (the
// sum of `charged` over a trace equals CostMeter::total_distance()).
// Plus the metrics registry, phase timers, run records, and the export
// bridges that project legacy counters into the registry.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/mot.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "metrics/metrics.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/phase_timer.hpp"
#include "obs/run_record.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/cost_meter.hpp"
#include "tracking/chain_tracker.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mot {
namespace {

using obs::Ev;
using obs::RingBufferSink;
using obs::TraceEvent;

// RAII sink installation so a failing test never leaks a dangling sink
// into the rest of the suite.
struct SinkGuard {
  explicit SinkGuard(obs::TraceSink* sink)
      : previous(obs::install_trace_sink(sink)) {}
  ~SinkGuard() { obs::install_trace_sink(previous); }
  obs::TraceSink* previous;
};

// ---------------------------------------------------------------------------
// TraceSink plumbing
// ---------------------------------------------------------------------------

TEST(TraceSink, EmitIsNoOpWithoutSink) {
  ASSERT_FALSE(obs::tracing());
  obs::emit({.type = Ev::kClimbHop, .dist = 1.0});  // must not crash
}

TEST(TraceSink, InstallReturnsPrevious) {
  RingBufferSink a(4);
  RingBufferSink b(4);
  obs::TraceSink* before = obs::install_trace_sink(&a);
  EXPECT_EQ(obs::install_trace_sink(&b), &a);
  EXPECT_EQ(obs::install_trace_sink(before), &b);
  EXPECT_FALSE(obs::tracing());
}

TEST(RingBufferSink, KeepsMostRecentAndCountsDropped) {
  RingBufferSink sink(3);
  SinkGuard guard(&sink);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::emit({.type = Ev::kClimbHop, .aux = i});
  }
  EXPECT_EQ(sink.total_events(), 5u);
  EXPECT_EQ(sink.dropped(), 2u);
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].aux, 2u);  // oldest retained
  EXPECT_EQ(events[2].aux, 4u);  // newest
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.total_events(), 0u);
}

TEST(ScopedSpan, EmitsBeginAndEnd) {
  RingBufferSink sink(8);
  SinkGuard guard(&sink);
  {
    MOT_SPAN("unit_test", 7);
    obs::emit({.type = Ev::kClimbHop, .object = 7});
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, Ev::kSpanBegin);
  EXPECT_STREQ(events[0].label, "unit_test");
  EXPECT_EQ(events[0].object, 7u);
  EXPECT_EQ(events[2].type, Ev::kSpanEnd);
}

TEST(EventToJson, OmitsDefaultsAndEscapesNothingStable) {
  const TraceEvent minimal{.type = Ev::kSplice};
  EXPECT_EQ(obs::event_to_json(minimal, 0), R"({"i":0,"ev":"splice"})");

  const TraceEvent full{.type = Ev::kMsgSend,
                        .t = 2.5,
                        .object = 3,
                        .from = 1,
                        .to = 2,
                        .level = 4,
                        .dist = 1.5,
                        .charged = 1.5,
                        .aux = 9,
                        .label = "data"};
  const std::string json = obs::event_to_json(full, 12);
  EXPECT_EQ(json,
            R"({"i":12,"ev":"msg_send","t":2.5,"obj":3,"from":1,"to":2,)"
            R"("level":4,"dist":1.5,"charged":1.5,"aux":9,"label":"data"})");
}

TEST(JsonlFileSink, WritesOneParseableLinePerEvent) {
  const std::string path = ::testing::TempDir() + "mot_trace_test.jsonl";
  {
    obs::JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    SinkGuard guard(&sink);
    obs::emit({.type = Ev::kClimbHop, .from = 0, .to = 1, .dist = 1.0});
    obs::emit({.type = Ev::kAck, .aux = 42});
    sink.flush();
    EXPECT_EQ(sink.events_written(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ev\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Determinism, parity, reconciliation on a 64-node grid
// ---------------------------------------------------------------------------

struct GridFixture {
  explicit GridFixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// Runs a fixed publish/move/query workload; returns the meter total.
double run_chain_workload(const GridFixture& fx) {
  ChainTracker tracker("t", *fx.provider, fx.chain_options);
  Rng rng(11);
  for (ObjectId o = 0; o < 5; ++o) {
    tracker.publish(o, rng.below(fx.graph.num_nodes()));
  }
  for (int i = 0; i < 40; ++i) {
    const auto object = static_cast<ObjectId>(rng.below(5));
    const auto neighbors = fx.graph.neighbors(tracker.proxy_of(object));
    tracker.move(object, neighbors[rng.below(neighbors.size())].to);
    tracker.query(rng.below(fx.graph.num_nodes()), object);
  }
  return tracker.meter().total_distance();
}

TEST(TraceDeterminism, SameSeedYieldsIdenticalEventStream) {
  const GridFixture fx;
  RingBufferSink first(1u << 16);
  {
    SinkGuard guard(&first);
    run_chain_workload(fx);
  }
  RingBufferSink second(1u << 16);
  {
    SinkGuard guard(&second);
    run_chain_workload(fx);
  }
  ASSERT_GT(first.total_events(), 0u);
  EXPECT_EQ(first.dropped(), 0u);
  EXPECT_EQ(first.total_events(), second.total_events());
  EXPECT_EQ(first.events(), second.events());
}

TEST(TraceParity, CostIsBitIdenticalWithAndWithoutSink) {
  const GridFixture fx;
  ASSERT_FALSE(obs::tracing());
  const double untraced = run_chain_workload(fx);
  RingBufferSink sink(1u << 16);
  double traced = 0.0;
  {
    SinkGuard guard(&sink);
    traced = run_chain_workload(fx);
  }
  EXPECT_EQ(traced, untraced);  // bit-identical, not just close
  EXPECT_GT(sink.total_events(), 0u);
}

double sum_charged(const std::vector<TraceEvent>& events) {
  double total = 0.0;
  for (const TraceEvent& event : events) total += event.charged;
  return total;
}

TEST(TraceReconciliation, ChainTrackerChargesMatchMeter) {
  const GridFixture fx;
  RingBufferSink sink(1u << 18);
  SinkGuard guard(&sink);
  const double metered = run_chain_workload(fx);
  ASSERT_EQ(sink.dropped(), 0u);
  EXPECT_GT(metered, 0.0);
  EXPECT_NEAR(sum_charged(sink.events()), metered, 1e-6 * metered);
}

TEST(TraceReconciliation, DistributedProtocolChargesMatchMeter) {
  // 64-node grid over a lossy channel: climbs, routed sends, ACKs and
  // retransmissions must all reconcile against the runtime's meter.
  const GridFixture fx;
  faults::FaultPlan plan;
  faults::LinkFaults lossy;
  lossy.drop = 0.15;
  lossy.duplicate = 0.10;
  lossy.delay = 0.3;
  lossy.max_extra_delay = 6.0;
  plan.set_default_faults(lossy);
  faults::UnreliableChannel channel(plan, 99);

  Simulator sim;
  proto::DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  RingBufferSink sink(1u << 18);
  SinkGuard guard(&sink);
  Rng rng(3);
  for (ObjectId o = 0; o < 3; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
    sim.run();
  }
  for (int i = 0; i < 30; ++i) {
    const auto object = static_cast<ObjectId>(rng.below(3));
    const auto neighbors = fx.graph.neighbors(dist.proxy_of(object));
    dist.move(object, neighbors[rng.below(neighbors.size())].to);
    sim.run();
    bool found = false;
    dist.query(rng.below(fx.graph.num_nodes()), object,
               [&](const QueryResult& r) { found = r.found; });
    sim.run();
    ASSERT_TRUE(found);
  }
  dist.validate_quiescent();
  ASSERT_EQ(sink.dropped(), 0u);
  EXPECT_GT(dist.stats().retransmissions, 0u);
  const double metered = dist.meter().total_distance();
  EXPECT_GT(metered, 0.0);
  EXPECT_NEAR(sum_charged(sink.events()), metered, 1e-6 * metered);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndLabelsAreDistinct) {
  obs::MetricsRegistry registry;
  registry.counter("ops").increment(3);
  registry.counter("ops", {{"kind", "move"}}).increment(5);
  registry.gauge("ratio").set(1.5);
  EXPECT_EQ(registry.counter("ops").value(), 3u);
  EXPECT_EQ(registry.counter("ops", {{"kind", "move"}}).value(), 5u);
  EXPECT_DOUBLE_EQ(registry.gauge("ratio").value(), 1.5);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossGrowth) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i)).increment();
  }
  first.increment(7);
  EXPECT_EQ(registry.counter("first").value(), 7u);
}

TEST(FixedHistogram, BucketsBySampleValue) {
  obs::FixedHistogram histogram({1.0, 5.0, 10.0});
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (bound is inclusive)
  histogram.observe(3.0);   // <= 5
  histogram.observe(100.0); // overflow
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 104.5);
  const auto& counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricsRegistry, JsonExportContainsAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("mot_ops_total", {{"kind", "move"}}).increment(2);
  registry.gauge("mot_ratio").set(2.25);
  registry.histogram("mot_load", {1.0, 10.0}).observe(3.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"mot_ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"move\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"mot_ratio\""), std::string::npos);
  EXPECT_NE(json.find("2.25"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistry, PrometheusExportHasTypedSeries) {
  obs::MetricsRegistry registry;
  registry.counter("mot_ops_total", {{"kind", "move"}}).increment(2);
  registry.histogram("mot_load", {1.0, 10.0}).observe(3.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE mot_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("mot_ops_total{kind=\"move\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mot_load histogram"), std::string::npos);
  EXPECT_NE(text.find("mot_load_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mot_load_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Export bridges
// ---------------------------------------------------------------------------

TEST(ExportBridges, CostMeterExportIsIdempotent) {
  obs::MetricsRegistry registry;
  CostMeter meter;
  meter.charge(3.5, 2);
  export_cost_meter(meter, registry);
  export_cost_meter(meter, registry);  // must not double-count
  EXPECT_DOUBLE_EQ(registry.gauge("mot_cost_distance_total").value(), 3.5);
  EXPECT_EQ(registry.counter("mot_cost_messages_total").value(), 2u);
}

TEST(ExportBridges, LoadExportProjectsSummary) {
  obs::MetricsRegistry registry;
  const std::vector<std::size_t> load = {0, 1, 2, 3, 14};
  export_load(load, registry, {{"algo", "mot"}});
  const obs::Labels labels = {{"algo", "mot"}};
  EXPECT_DOUBLE_EQ(registry.gauge("mot_load_mean", labels).value(), 4.0);
  EXPECT_DOUBLE_EQ(registry.gauge("mot_load_max", labels).value(), 14.0);
  EXPECT_EQ(registry.counter("mot_load_entries_total", labels).value(),
            20u);
  EXPECT_EQ(
      registry.counter("mot_load_nodes_above_threshold", labels).value(),
      1u);
  EXPECT_EQ(registry.histogram("mot_load_per_node", {}, labels).count(),
            5u);
}

TEST(ExportBridges, ReliabilityExportProjectsRatesAndCounters) {
  obs::MetricsRegistry registry;
  ReliabilityInputs in;
  in.data_sent = 100;
  in.retransmissions = 10;
  in.acks_sent = 100;
  in.duplicates_suppressed = 5;
  in.useful_distance = 200.0;
  in.transport_distance = 40.0;
  export_reliability(in, registry);
  export_reliability(in, registry);  // idempotent
  EXPECT_EQ(registry.counter("mot_data_sent_total").value(), 100u);
  EXPECT_EQ(registry.counter("mot_retransmissions_total").value(), 10u);
  EXPECT_DOUBLE_EQ(registry.gauge("mot_retransmission_rate").value(), 0.1);
  EXPECT_DOUBLE_EQ(registry.gauge("mot_transport_overhead").value(), 0.2);
}

TEST(ExportBridges, ProtocolStatsExportCoversRecoveryCounters) {
  obs::MetricsRegistry registry;
  proto::ProtocolStats stats;
  stats.messages_sent = 12;
  stats.crash_recoveries = 1;
  stats.objects_rebuilt = 2;
  stats.recovery_distance = 9.5;
  proto::export_protocol_stats(stats, registry);
  proto::export_protocol_stats(stats, registry);  // idempotent
  EXPECT_EQ(registry.counter("mot_proto_messages_sent_total").value(),
            12u);
  EXPECT_EQ(registry.counter("mot_proto_crash_recoveries_total").value(),
            1u);
  EXPECT_EQ(registry.counter("mot_proto_objects_rebuilt_total").value(),
            2u);
  EXPECT_DOUBLE_EQ(registry.gauge("mot_proto_recovery_distance").value(),
                   9.5);
}

// ---------------------------------------------------------------------------
// Phase timers and run records
// ---------------------------------------------------------------------------

TEST(PhaseTimers, MergesByNameInFirstUseOrder) {
  obs::PhaseTimers timers;
  timers.record("build", 1.0);
  timers.record("ops", 2.0);
  timers.record("build", 0.5);
  ASSERT_EQ(timers.phases().size(), 2u);
  EXPECT_EQ(timers.phases()[0].name, "build");
  EXPECT_DOUBLE_EQ(timers.phases()[0].seconds, 1.5);
  EXPECT_EQ(timers.phases()[0].count, 2u);
  EXPECT_EQ(timers.phases()[1].name, "ops");
}

TEST(PhaseTimers, ScopeFeedsGlobalTimers) {
  obs::PhaseTimers::global().clear();
  { MOT_PHASE("scoped_phase"); }
  const auto& phases = obs::PhaseTimers::global().phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "scoped_phase");
  EXPECT_GE(phases[0].seconds, 0.0);
  obs::PhaseTimers::global().clear();
}

TEST(RunRecord, JsonHasRequiredKeys) {
  obs::RunRecord record;
  record.set_bench("unit_bench");
  record.set_description("unit test record");
  record.add_config("seed", std::uint64_t{42});
  record.add_config("full", false);
  Table table({"n", "ratio"});
  table.begin_row().cell(std::uint64_t{64}).cell(1.25, 2);
  record.add_table("results", table);
  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"config\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"full\":false"), std::string::npos);
  EXPECT_NE(json.find("\"tables\""), std::string::npos);
  EXPECT_NE(json.find("\"results\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\""), std::string::npos);
}

TEST(RunRecord, WritesToDisk) {
  obs::RunRecord record;
  record.set_bench("disk_bench");
  const std::string path = ::testing::TempDir() + "mot_run_record.json";
  ASSERT_TRUE(record.write(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"disk_bench\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mot
